"""Certificate-lifetime policy analysis (paper Section 6).

Simulates a world, measures third-party staleness, and evaluates the
45/90/215-day maximum-lifetime proposals via both estimators the paper uses:
survival analysis (how many stale certificates would be eliminated) and the
staleness-days capping experiment (how much exposure time disappears).

    python examples/lifetime_policy_analysis.py [scale]
"""

import sys

from repro import (
    LifetimePolicySimulator,
    MeasurementPipeline,
    StalenessClass,
    WorldConfig,
    simulate_world,
)
from repro.analysis.report import render_table
from repro.core.lifetime import survival_elimination_estimates

CLASSES = (
    StalenessClass.KEY_COMPROMISE,
    StalenessClass.REGISTRANT_CHANGE,
    StalenessClass.MANAGED_TLS_DEPARTURE,
)


def main(scale: float = 0.15) -> None:
    world = simulate_world(WorldConfig().scaled(scale))
    result = MeasurementPipeline(
        world.to_bundle(),
        revocation_cutoff_day=world.config.timeline.revocation_cutoff,
    ).run()
    findings = result.findings

    print("Survival analysis (Figure 8): share of stale certificates whose")
    print("invalidation event occurs more than N days after issuance -- the")
    print("optimistic upper bound on elimination under an N-day lifetime:\n")
    estimates = survival_elimination_estimates(findings, caps=(45, 90, 215))
    rows = []
    for cls in CLASSES:
        row = [cls.value]
        for cap in (45, 90, 215):
            value = estimates.get((cls, cap))
            row.append(f"{100 * value:.1f}%" if value is not None else "-")
        rows.append(row)
    print(render_table(["Class", "45d cap", "90d cap", "215d cap"], rows))

    print("\nStaleness-days capping experiment (Figure 9): pull expirations in")
    print("so no certificate lives longer than the cap, and re-measure:\n")
    simulator = LifetimePolicySimulator(findings)
    rows = []
    for cls in CLASSES:
        if not findings.of_class(cls):
            continue
        for cap_result in simulator.sweep(cls, (45, 90, 215)):
            rows.append(
                (
                    cls.value,
                    cap_result.cap_days,
                    f"{cap_result.baseline_staleness_days:,}",
                    f"{cap_result.capped_staleness_days:,}",
                    f"{100 * cap_result.staleness_days_reduction:.1f}%",
                )
            )
    print(
        render_table(
            ["Class", "Cap", "Baseline stale-days", "Capped stale-days", "Reduction"],
            rows,
        )
    )

    print("\nHeadline (paper abstract: 90-day maximum -> ~75% decrease):")
    for cap in (45, 90, 215):
        overall = simulator.overall_staleness_reduction(cap)
        print(f"  {cap:>3}-day maximum lifetime -> {100 * overall:5.1f}% "
              "fewer precarious staleness-days")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.15)
