"""Certificate Transparency monitoring with cryptographic auditing.

Demonstrates the CT substrate end to end: ACME issuance submits
precertificates to temporally-sharded logs, a monitor ingests entries while
verifying inclusion and consistency proofs, and the corpus dedups
precertificates against final certificates — exactly the collection stage of
the paper's methodology (Section 4).

    python examples/ct_monitor_audit.py
"""

from repro.ct.client import AuditFailure, CtMonitor
from repro.ct.log import CtLog, LogShardingPolicy
from repro.ct.loglist import LogList, TrustOperator
from repro.ct.merkle import verify_inclusion
from repro.dns.zone import ZoneStore
from repro.pki.acme import AcmeClient, AcmeServer
from repro.pki.ca import CertificateAuthority, IssuancePolicy
from repro.pki.keys import KeyStore
from repro.pki.validation import DvValidator
from repro.util.dates import day, day_to_iso


def main() -> None:
    today = day(2022, 3, 1)

    # -- infrastructure ------------------------------------------------------
    key_store = KeyStore()
    zones = ZoneStore()
    zones.create("alpha.com")
    zones.create("beta.net")
    validator = DvValidator(zones, ca_domain="exampleca.org")
    ca = CertificateAuthority(
        "Example DV CA",
        key_store,
        policy=IssuancePolicy(max_lifetime_days=90, default_lifetime_days=90),
    )
    acme = AcmeServer(ca, validator)

    shard = CtLog("argon2022", "Google", LogShardingPolicy.for_year(2022))
    log_list = LogList()
    log_list.add_log(shard)
    log_list.trust("argon2022", TrustOperator.CHROME, day(2020, 1, 1))
    log_list.trust("argon2022", TrustOperator.APPLE, day(2020, 6, 1))

    # -- issuance with CT logging ---------------------------------------------
    print("Issuing certificates via ACME and logging to CT ...")
    for apex in ("alpha.com", "beta.net"):
        account = acme.register_account(f"admin@{apex}", today)
        client = AcmeClient(acme, account, zones, key_store, owner_id=f"owner:{apex}")
        certificate = client.obtain([apex, f"www.{apex}"], today)
        precert = certificate.as_precertificate()
        sct = shard.submit(precert, today)
        final = certificate.with_scts([sct.token()])
        shard.submit(final, today)
        print(f"  {apex}: serial={certificate.serial}, SCT={sct.token()[:16]}...")

    print(f"\nLog 'argon2022' tree size: {shard.tree_size}")

    # -- monitoring with proof verification ------------------------------------
    monitor = CtMonitor(log_list, audit=True)
    fetched = monitor.poll_all()
    corpus = monitor.finalize_corpus()
    print(f"Monitor fetched {fetched} entries -> {len(corpus)} unique certificates "
          f"({corpus.stats.duplicates_collapsed} precert/final pairs collapsed)")

    # Manually spot-check an inclusion proof, like an auditor would.
    entry = shard.get_entries(0, 0)[0]
    proof = shard.inclusion_proof(0)
    ok = verify_inclusion(entry.leaf_bytes(), 0, shard.tree_size, proof, shard.root_hash())
    print(f"Inclusion proof for entry 0 verifies: {ok}")

    # -- what auditing catches ---------------------------------------------------
    print("\nSimulating a log that rolls back its tree ...")
    monitor.state_of("argon2022").last_tree_size = shard.tree_size + 10
    try:
        monitor.poll_log(shard)
    except AuditFailure as exc:
        print(f"  AuditFailure raised, as it should be: {exc}")


if __name__ == "__main__":
    main()
