"""The Section 5.3 scenario, end to end, by hand.

Builds the exact situation of paper Figure 3: a customer delegates
``shop.example.com``'s apex to a Cloudflare-style CDN, the CDN issues a
managed certificate (holding the private key), the customer later migrates
to new infrastructure — and the daily DNS scan plus the managed-TLS detector
catch the CDN's lingering valid key.

    python examples/cloudflare_departure_scan.py
"""

from repro.core.detectors.managed_tls import ManagedTlsDetector
from repro.core.stale import StalenessClass
from repro.ct.dedup import CertificateCorpus
from repro.dns.records import RecordType
from repro.dns.scanner import ActiveScanner
from repro.dns.zone import ZoneStore
from repro.ecosystem.cas import build_standard_cas
from repro.ecosystem.cdn import CloudflareService
from repro.ecosystem.timeline import DEFAULT_TIMELINE
from repro.pki.keys import KeyStore
from repro.util.dates import day, day_to_iso
from repro.util.rng import RngStream


def main() -> None:
    key_store = KeyStore()
    zones = ZoneStore()
    registry = build_standard_cas(key_store, established=day(2013, 3, 1))
    cdn = CloudflareService(
        registry, key_store, zones, DEFAULT_TIMELINE, RngStream(7, "example")
    )

    enroll_day = day(2022, 6, 1)
    print(f"[{day_to_iso(enroll_day)}] example.com enrolls in managed TLS")
    (certificate,) = cdn.enroll("example.com", enroll_day)
    print(f"  CDN-issued certificate: {certificate}")
    print(f"  SANs: {', '.join(certificate.san_dns_names)}")
    holders = key_store.holders_on(certificate.subject_key, enroll_day)
    print(f"  private key holders: {sorted(holders)}  <- only the CDN!")

    # The paper's corpus comes from CT; here we ingest directly.
    corpus = CertificateCorpus()
    corpus.ingest([certificate])

    # Daily active scans straddle the migration.
    scanner = ActiveScanner(zones)
    depart_day = day(2022, 9, 15)
    for scan_day in range(depart_day - 2, depart_day):
        scanner.scan_day(scan_day)
    print(f"\n[{day_to_iso(depart_day)}] example.com migrates to new-hosting.net")
    cdn.depart("example.com", depart_day, "new-hosting.net")
    scanner.scan_day(depart_day)

    ns_before = scanner.store.get(depart_day - 1).get("example.com").get(RecordType.NS)
    ns_after = scanner.store.get(depart_day).get("example.com").get(RecordType.NS)
    print(f"  NS day before: {sorted(ns_before)}")
    print(f"  NS day after:  {sorted(ns_after)}")

    findings = ManagedTlsDetector(corpus).detect(scanner.store)
    print("\nDetector output:")
    for finding in findings.of_class(StalenessClass.MANAGED_TLS_DEPARTURE):
        print(
            f"  STALE: {finding.affected_domain} - the former CDN holds a valid "
            f"key until {day_to_iso(finding.stale_until)} "
            f"({finding.staleness_days} days of third-party access)"
        )
    assert len(findings) > 0


if __name__ == "__main__":
    main()
