"""Key-compromise forensics and the revocation threat model.

Walks through a GoDaddy-style provisioning breach (paper Section 5.1):
keys provisioned during the exposure window leak, the CA mass-revokes with
reason keyCompromise, the revocations surface in CRLs — and then shows why
revocation gives so little recourse (Section 2.4): clients that skip
checking, or soft-fail, still accept interception with the stolen key;
only expiration reliably ends the exposure.

    python examples/breach_forensics.py
"""

from repro.pki.ca import CertificateAuthority, IssuancePolicy
from repro.pki.keys import KeyStore
from repro.revocation.checking import (
    RevocationChecker,
    RevocationPolicy,
    interception_succeeds,
)
from repro.revocation.ocsp import OcspResponder
from repro.revocation.publisher import CaCrlPublisher
from repro.revocation.reasons import RevocationReason
from repro.util.dates import day, day_to_iso


def main() -> None:
    key_store = KeyStore()
    ca = CertificateAuthority(
        "Hosting Provider CA",
        key_store,
        policy=IssuancePolicy(require_validation=False, default_lifetime_days=395),
    )
    publisher = CaCrlPublisher(ca)
    responder = OcspResponder(publisher)

    exposure_start = day(2021, 9, 6)
    disclosure = day(2021, 11, 17)

    # Customers provision managed sites (and keys) throughout the exposure.
    victims = []
    for index in range(6):
        issued_on = exposure_start + index * 12
        key = key_store.generate(f"customer-{index}", issued_on)
        certificate = ca.issue([f"shop{index}.example.com"], key, issued_on)
        victims.append(certificate)

    # The intruder had provisioning-system access the whole window.
    print(f"Breach disclosed {day_to_iso(disclosure)}; keys provisioned since "
          f"{day_to_iso(exposure_start)} are exposed:")
    for certificate in victims:
        key_store.grant(certificate.subject_key, "intruder", disclosure, reason="breach")
        holders = sorted(key_store.holders_on(certificate.subject_key, disclosure))
        print(f"  {certificate.subject_cn}: key holders = {holders}")

    # CA responds: mass revocation with reason keyCompromise.
    for offset, certificate in enumerate(victims):
        publisher.revoke(certificate, disclosure + offset, RevocationReason.KEY_COMPROMISE)
    crl = publisher.publish(disclosure + 10)
    kc_entries = crl.entries_with_reason(RevocationReason.KEY_COMPROMISE)
    print(f"\nCRL published {day_to_iso(disclosure + 10)}: "
          f"{len(kc_entries)} keyCompromise entries")

    # The threat-model punchline: does revocation stop interception?
    victim = victims[0]
    check_day = disclosure + 30
    clients = {
        "Chrome/Edge/curl (no checking)": RevocationChecker(RevocationPolicy.NONE),
        "Firefox/Safari (soft-fail)": RevocationChecker(RevocationPolicy.SOFT_FAIL, responder),
        "hypothetical hard-fail client": RevocationChecker(RevocationPolicy.HARD_FAIL, responder),
    }
    print(f"\nCan the intruder intercept {victim.subject_cn} on "
          f"{day_to_iso(check_day)} (cert REVOKED, still unexpired)?")
    for label, checker in clients.items():
        outcome = interception_succeeds(checker, victim, check_day, revoked=True)
        print(f"  {label:35s} -> {'INTERCEPTED' if outcome else 'blocked'}")

    after_expiry = victim.not_after + 1
    chrome = clients["Chrome/Edge/curl (no checking)"]
    outcome = interception_succeeds(chrome, victim, after_expiry, revoked=True)
    print(f"\nAnd on {day_to_iso(after_expiry)}, one day past expiration?")
    print(f"  any client -> {'INTERCEPTED' if outcome else 'blocked'}  "
          "(expiration is the only reliable backstop)")


if __name__ == "__main__":
    main()
