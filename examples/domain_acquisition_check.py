"""Pre-acquisition due diligence (BygoneSSL-style, paper §8 / §3.1).

Simulates a world, picks a domain that actually changed hands, and runs the
:class:`~repro.core.advisory.StaleCertificateAdvisor` the way a prospective
buyer (or their registrar) would: enumerate every unexpired certificate the
previous owner or their CDN still holds keys for, and report when exposure
truly ends.

    python examples/domain_acquisition_check.py
"""

from repro import MeasurementPipeline, StalenessClass, WorldConfig, simulate_world
from repro.core.advisory import StaleCertificateAdvisor
from repro.util.dates import day_to_iso


def main() -> None:
    world = simulate_world(WorldConfig(seed=11).scaled(0.1))
    result = MeasurementPipeline(
        world.to_bundle(),
        revocation_cutoff_day=world.config.timeline.revocation_cutoff,
    ).run()

    findings = result.findings.of_class(StalenessClass.REGISTRANT_CHANGE)
    if not findings:
        print("No registrant-change staleness in this world; re-run with a bigger scale.")
        return
    # Pick the re-registered domain with the longest lingering exposure.
    finding = max(findings, key=lambda f: f.staleness_days)
    domain = finding.affected_domain
    acquired = finding.invalidation_day

    print(f"Due diligence for acquiring {domain} on {day_to_iso(acquired)}\n")
    advisor = StaleCertificateAdvisor(world.corpus)
    report = advisor.check_acquisition(domain, acquired)
    print(report.summary())
    for exposure in report.exposures:
        print(f"  - {exposure.describe()}")

    print(
        f"\nTotal lingering exposure: {report.total_exposure_days} certificate-days "
        f"across {len(report.exposures)} certificate(s)."
    )
    print(
        "Remember (paper §2.4): requesting revocation only protects clients\n"
        "that check revocation and are not being actively intercepted —\n"
        f"guaranteed safety arrives {day_to_iso(report.exposure_ends)} when the last "
        "certificate expires."
    )

    # Post-acquisition: watch CT for certificates you did not request.
    new_certs = advisor.monitor_new_issuance(domain, acquired)
    print(f"\nPost-acquisition CT monitoring: {len(new_certs)} certificate(s) issued "
          f"for {domain} after the acquisition date.")
    for certificate in new_certs[:5]:
        print(f"  - {certificate}")


if __name__ == "__main__":
    main()
