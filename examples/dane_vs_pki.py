"""DANE vs web PKI staleness windows (paper §7.2).

The paper's systemic fix for stale certificates is aligning keys with the
authoritative name source: DANE's hours-scale TTLs versus the web PKI's
up-to-398-day certificate lifetimes. This example deploys both for the same
service, rotates the key, and measures how long each system keeps accepting
the *old* key.

    python examples/dane_vs_pki.py
"""

from repro.dns.dane import DaneDeployment, TlsaRecord, compare_staleness_windows
from repro.dns.zone import ZoneStore
from repro.pki.ca import CertificateAuthority, IssuancePolicy
from repro.pki.keys import KeyStore
from repro.util.dates import day, day_to_iso


def main() -> None:
    key_store = KeyStore()
    zones = ZoneStore()
    zones.create("example.com")
    ca = CertificateAuthority(
        "Example CA", key_store, policy=IssuancePolicy(require_validation=False)
    )
    dane = DaneDeployment(zones)

    deploy_day = day(2022, 1, 1)
    old_key = key_store.generate("owner", deploy_day)
    old_cert = ca.issue(["example.com"], old_key, deploy_day, lifetime_days=365)
    dane.publish("example.com", TlsaRecord.for_key(old_key))
    print(f"[{day_to_iso(deploy_day)}] deployed: cert {old_cert.serial} "
          f"(valid to {day_to_iso(old_cert.not_after)}) + TLSA binding")

    rotate_day = day(2022, 3, 1)
    new_key = key_store.generate("owner", rotate_day)
    new_cert = ca.issue(["example.com"], new_key, rotate_day, lifetime_days=365)
    dane.publish("example.com", TlsaRecord.for_key(new_key))
    print(f"[{day_to_iso(rotate_day)}] key rotated: cert {new_cert.serial} issued, "
          "TLSA binding replaced")

    check_day = rotate_day + 30
    pki_accepts_old = old_cert.is_valid_on(check_day)
    dane_accepts_old = dane.verify("example.com", old_cert)
    print(f"\n[{day_to_iso(check_day)}] does each system still accept the OLD key?")
    print(f"  web PKI (certificate validity): {'YES - stale!' if pki_accepts_old else 'no'}")
    print(f"  DANE (TLSA binding):            {'YES' if dane_accepts_old else 'no - binding replaced'}")

    comparison = compare_staleness_windows(old_cert, rotate_day)
    print("\nStaleness windows after the key change:")
    print(f"  DANE:    <= {comparison.dane_stale_seconds} seconds (one TTL)")
    print(f"  web PKI: {comparison.pki_stale_days} days (until notAfter)")
    print(f"  ratio:   {comparison.pki_to_dane_ratio:,.0f}x longer under the web PKI")
    print("\nThis is the paper's point: certificates are an authentication cache")
    print("with a months-scale eviction policy, DNS is an hours-scale one.")


if __name__ == "__main__":
    main()
