"""Quickstart: simulate a decade of web PKI, detect stale certificates.

Runs the full measurement pipeline of the paper on a small simulated world
and prints the Table 4 analogue plus the headline lifetime-policy numbers.

    python examples/quickstart.py [scale]

``scale`` (default 0.1) multiplies the default world size.
"""

import sys

from repro import (
    LifetimePolicySimulator,
    MeasurementPipeline,
    StalenessClass,
    WorldConfig,
    simulate_world,
)
from repro.analysis.aggregate import build_table4
from repro.analysis.report import render_table


def main(scale: float = 0.1) -> None:
    print(f"Simulating the 2013-2023 web PKI at scale {scale} ...")
    world = simulate_world(WorldConfig().scaled(scale))
    summary = world.dataset_summary()
    print(
        f"  {summary['ct_unique_certificates']:,} unique certificates in CT, "
        f"{summary['registered_domains']:,} domains, "
        f"{summary['crls_collected']:,} CRLs, "
        f"{summary['dns_scan_days']} daily DNS scans"
    )

    print("\nRunning the three stale-certificate detectors (paper Section 4) ...")
    pipeline = MeasurementPipeline(
        world.to_bundle(),
        revocation_cutoff_day=world.config.timeline.revocation_cutoff,
    )
    result = pipeline.run()

    rows = build_table4(result)
    print()
    print(
        render_table(
            ["Method", "Daily certs", "Total certs", "Daily e2LDs", "Total e2LDs"],
            [
                (r.method, round(r.daily_certs, 2), r.total_certs,
                 round(r.daily_e2lds, 2), r.total_e2lds)
                for r in rows
            ],
            title="Stale certificate detection (Table 4 analogue)",
        )
    )

    print("\nLifetime policy (paper Section 6):")
    simulator = LifetimePolicySimulator(result.findings)
    for cap in (45, 90, 215):
        reduction = simulator.overall_staleness_reduction(cap)
        print(f"  max lifetime {cap:>3}d -> {100 * reduction:5.1f}% fewer staleness-days")

    for cls in (
        StalenessClass.KEY_COMPROMISE,
        StalenessClass.REGISTRANT_CHANGE,
        StalenessClass.MANAGED_TLS_DEPARTURE,
    ):
        items = result.findings.of_class(cls)
        if items:
            ecdf = result.findings.staleness_ecdf(cls)
            print(
                f"  {cls.value:25s} n={len(items):5d} "
                f"median staleness {ecdf.median_value:5.0f}d"
            )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.1)
