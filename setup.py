"""Setup shim; all metadata lives in setup.cfg.

The project intentionally ships no pyproject.toml: the evaluation
environment is offline and lacks the ``wheel`` package that PEP 517/660
editable installs require, whereas the legacy path pip uses for
pyproject-less projects (``setup.py develop``) works without network.
"""

from setuptools import setup

setup()
