"""Table schemas: how bundle objects map onto columnar segments.

One schema per dataset of paper Table 3 — certificates, revocation
entries, WHOIS creation pairs, DNS snapshot observations. Each schema
declares its column kinds (``i64`` / ``str`` / ``json``), the interval
columns its day-range queries sweep, and the row↔object codecs the
:class:`~repro.data.dataset.Dataset` tables use for hydration.

Hydration goes through the same constructors
(:class:`~repro.pki.certificate.Certificate`,
:class:`~repro.revocation.crl.CrlEntry`, ...) the legacy JSONL loader
uses, so a certificate read from a segment is value-identical — same
dedup fingerprint, same normalization — to one read from
``corpus.jsonl.gz``.

The certificates table carries one *derived* column, ``e2lds`` (the
sorted registered-domain list per certificate), so the shard
partitioner and the e2LD secondary index never have to hydrate a
``Certificate`` just to learn its routing keys.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.pki.certificate import Certificate, ExtendedKeyUsage, KeyUsage
from repro.pki.keys import KeyAlgorithm, KeyPair
from repro.revocation.crl import CrlEntry
from repro.revocation.reasons import RevocationReason

CERTS_TABLE = "certs"
REVOCATIONS_TABLE = "revocations"
WHOIS_TABLE = "whois"
DNS_TABLE = "dns"

TABLE_NAMES = (CERTS_TABLE, REVOCATIONS_TABLE, WHOIS_TABLE, DNS_TABLE)

#: (start column, end column) swept by each table's ``interval_query``.
INTERVAL_COLUMNS: Dict[str, Tuple[str, str]] = {
    CERTS_TABLE: ("not_before", "not_after"),
    REVOCATIONS_TABLE: ("revocation_day", "revocation_day"),
    WHOIS_TABLE: ("creation_day", "creation_day"),
    DNS_TABLE: ("day", "day"),
}

#: column name -> kind, per table, in written order.
COLUMNS: Dict[str, Tuple[Tuple[str, str], ...]] = {
    CERTS_TABLE: (
        ("subject_cn", "str"),
        ("san_dns_names", "json"),
        ("key_id", "i64"),
        ("key_algorithm", "str"),
        ("key_owner_id", "str"),
        ("is_ca", "i64"),
        ("key_usage", "i64"),
        ("extended_key_usage", "json"),
        ("issuer_name", "str"),
        ("authority_key_id", "str"),
        ("crl_url", "json"),
        ("ocsp_url", "json"),
        ("certificate_policy", "str"),
        ("serial", "i64"),
        ("is_precertificate", "i64"),
        ("scts", "json"),
        ("not_before", "i64"),
        ("not_after", "i64"),
        ("e2lds", "json"),  # derived: sorted registered domains
    ),
    REVOCATIONS_TABLE: (
        ("issuer_name", "str"),
        ("authority_key_id", "str"),
        ("serial", "i64"),
        ("revocation_day", "i64"),
        ("reason", "str"),
    ),
    WHOIS_TABLE: (
        ("domain", "str"),
        ("creation_day", "i64"),
    ),
    DNS_TABLE: (
        ("day", "i64"),
        ("apex", "str"),
        ("records", "json"),  # record-type value -> sorted rdata list
    ),
}


# ---------------------------------------------------------------------------
# certificates
# ---------------------------------------------------------------------------


def certificate_column_values(
    certificates: Sequence[Certificate],
) -> Dict[str, List[Any]]:
    """Struct-of-arrays projection of *certificates*, in COLUMNS order."""
    values: Dict[str, List[Any]] = {name: [] for name, _ in COLUMNS[CERTS_TABLE]}
    for certificate in certificates:
        values["subject_cn"].append(certificate.subject_cn)
        values["san_dns_names"].append(list(certificate.san_dns_names))
        values["key_id"].append(certificate.subject_key.key_id)
        values["key_algorithm"].append(certificate.subject_key.algorithm.value)
        values["key_owner_id"].append(certificate.subject_key.owner_id)
        values["is_ca"].append(int(certificate.is_ca))
        values["key_usage"].append(certificate.key_usage.value)
        values["extended_key_usage"].append(
            [e.value for e in certificate.extended_key_usage]
        )
        values["issuer_name"].append(certificate.issuer_name)
        values["authority_key_id"].append(certificate.authority_key_id)
        values["crl_url"].append(certificate.crl_url)
        values["ocsp_url"].append(certificate.ocsp_url)
        values["certificate_policy"].append(certificate.certificate_policy)
        values["serial"].append(certificate.serial)
        values["is_precertificate"].append(int(certificate.is_precertificate))
        values["scts"].append(list(certificate.scts))
        values["not_before"].append(certificate.not_before)
        values["not_after"].append(certificate.not_after)
        values["e2lds"].append(sorted(certificate.e2lds()))
    return values


def certificate_at(columns: Mapping[str, Sequence], row: int) -> Certificate:
    """Hydrate one certificate from column views (lazy cell reads only)."""
    key = KeyPair(
        key_id=columns["key_id"][row],
        algorithm=KeyAlgorithm(columns["key_algorithm"][row]),
        owner_id=columns["key_owner_id"][row],
    )
    return Certificate(
        subject_cn=columns["subject_cn"][row],
        san_dns_names=tuple(columns["san_dns_names"][row]),
        subject_key=key,
        is_ca=bool(columns["is_ca"][row]),
        key_usage=KeyUsage(columns["key_usage"][row]),
        extended_key_usage=tuple(
            ExtendedKeyUsage(value) for value in columns["extended_key_usage"][row]
        ),
        issuer_name=columns["issuer_name"][row],
        authority_key_id=columns["authority_key_id"][row],
        crl_url=columns["crl_url"][row],
        ocsp_url=columns["ocsp_url"][row],
        certificate_policy=columns["certificate_policy"][row],
        serial=columns["serial"][row],
        is_precertificate=bool(columns["is_precertificate"][row]),
        scts=tuple(columns["scts"][row]),
        not_before=columns["not_before"][row],
        not_after=columns["not_after"][row],
    )


# ---------------------------------------------------------------------------
# revocations
# ---------------------------------------------------------------------------


def revocation_column_values(
    rows: Sequence[Tuple[str, str, int, int, str]],
) -> Dict[str, List[Any]]:
    """Columns from (issuer, akid, serial, day, reason-name) tuples."""
    return {
        "issuer_name": [row[0] for row in rows],
        "authority_key_id": [row[1] for row in rows],
        "serial": [row[2] for row in rows],
        "revocation_day": [row[3] for row in rows],
        "reason": [row[4] for row in rows],
    }


def revocation_entry_at(columns: Mapping[str, Sequence], row: int) -> CrlEntry:
    return CrlEntry(
        serial=columns["serial"][row],
        revocation_day=columns["revocation_day"][row],
        reason=RevocationReason[columns["reason"][row]],
    )
