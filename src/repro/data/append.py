"""Append-oriented segment writing: bounded-memory RSEG production.

:class:`~repro.data.segment.SegmentWriter` takes whole columns at once,
so writing a table costs O(table) resident memory. The streaming world
generator (:mod:`repro.ecosystem.streamgen`) emits worlds far larger
than RAM, so this module provides the append-shaped counterparts:

* :class:`AppendSegmentWriter` — accepts rows one at a time, encodes
  each cell immediately into per-blob buffers that spill to anonymous
  temporary files past a threshold, and emits a segment file that is
  **byte-identical** to what ``SegmentWriter`` would have produced for
  the same rows (same preamble, header JSON, alignment padding, blob
  order, and zone maps). The equivalence tests in
  ``tests/test_data_append.py`` compare raw bytes.
* :class:`ExternalSorter` — sorts an unbounded stream of tuples with
  bounded memory (sorted runs spilled to temp files, heap-merged on
  read), producing exactly the order ``sorted()`` would. Secondary
  indexes and the generator's day-ordered DNS rows are built with it.

Peak memory is O(spill threshold x open blobs), not O(rows).
"""

from __future__ import annotations

import heapq
import json
import os
import pickle
import shutil
import sys
import tempfile
from array import array
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.data.segment import I64_MAX, I64_MIN, MAGIC, VERSION, _align, _PREAMBLE

#: Per-blob bytes held in memory before spilling to a temporary file.
DEFAULT_SPILL_BYTES = 8 * 1024 * 1024

#: Encoded i64 values buffered per column before packing into the blob.
_PACK_BATCH = 2048


class _SpillBuffer:
    """An append-only byte blob: in-memory chunks, then a temp file.

    Small blobs (the common case: one 64Ki-row table segment) never
    touch the filesystem; index blobs for million-row tables spill.
    """

    def __init__(self, spill_bytes: int) -> None:
        self._spill_bytes = spill_bytes
        self._chunks: List[bytes] = []
        self._file = None
        self.size = 0

    def write(self, data: bytes) -> None:
        if not data:
            return
        self.size += len(data)
        if self._file is None:
            self._chunks.append(data)
            if self.size > self._spill_bytes:
                self._file = tempfile.TemporaryFile()
                for chunk in self._chunks:
                    self._file.write(chunk)
                self._chunks = []
        else:
            self._file.write(data)

    def copy_into(self, handle) -> None:
        if self._file is None:
            for chunk in self._chunks:
                handle.write(chunk)
        else:
            self._file.flush()
            self._file.seek(0)
            shutil.copyfileobj(self._file, handle)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        self._chunks = []


class _I64Column:
    """One i64 column: a single ``array('q')`` blob plus min/max."""

    kind = "i64"

    def __init__(self, name: str, spill_bytes: int) -> None:
        self.name = name
        self._pending: List[int] = []
        self._blob = _SpillBuffer(spill_bytes)
        self._min: Optional[int] = None
        self._max: Optional[int] = None

    def append(self, value: Any) -> None:
        if not (I64_MIN <= value <= I64_MAX):
            raise ValueError(
                f"column {self.name!r}: value {value} does not fit in int64"
            )
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        self._pending.append(value)
        if len(self._pending) >= _PACK_BATCH:
            self._flush()

    def _flush(self) -> None:
        if self._pending:
            self._blob.write(array("q", self._pending).tobytes())
            self._pending = []

    def zonemap(self) -> Optional[Dict[str, Any]]:
        if self._min is None:
            return None
        return {"min": self._min, "max": self._max}

    def blobs(self) -> List[_SpillBuffer]:
        self._flush()
        return [self._blob]

    def close(self) -> None:
        self._blob.close()


class _OffsetsColumn:
    """A str/json column: i64 offsets blob plus concatenated payload."""

    def __init__(
        self,
        name: str,
        kind: str,
        encode: Callable[[Any], bytes],
        track_zonemap: bool,
        spill_bytes: int,
    ) -> None:
        self.name = name
        self.kind = kind
        self._encode = encode
        self._track_zonemap = track_zonemap
        self._offsets_pending: List[int] = [0]
        self._position = 0
        self._offsets_blob = _SpillBuffer(spill_bytes)
        self._data_blob = _SpillBuffer(spill_bytes)
        self._min: Optional[str] = None
        self._max: Optional[str] = None

    def append(self, value: Any) -> None:
        if self._track_zonemap:
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
        encoded = self._encode(value)
        self._position += len(encoded)
        self._data_blob.write(encoded)
        self._offsets_pending.append(self._position)
        if len(self._offsets_pending) >= _PACK_BATCH:
            self._flush()

    def _flush(self) -> None:
        if self._offsets_pending:
            self._offsets_blob.write(array("q", self._offsets_pending).tobytes())
            self._offsets_pending = []

    def zonemap(self) -> Optional[Dict[str, Any]]:
        if not self._track_zonemap or self._min is None:
            return None
        return {"min": self._min, "max": self._max}

    def blobs(self) -> List[_SpillBuffer]:
        self._flush()
        return [self._offsets_blob, self._data_blob]

    def close(self) -> None:
        self._offsets_blob.close()
        self._data_blob.close()


def _encode_str(value: str) -> bytes:
    return value.encode("utf-8")


def _encode_json(value: Any) -> bytes:
    return json.dumps(value, sort_keys=True, separators=(",", ":")).encode("utf-8")


class AppendSegmentWriter:
    """Row-at-a-time segment writer with bounded resident memory.

    The column layout is declared up front (``(name, kind)`` pairs in
    written order, kinds ``i64`` / ``str`` / ``json``); each
    :meth:`append_row` call encodes one value per column. :meth:`write`
    emits a file byte-identical to ``SegmentWriter`` fed the same data.
    """

    def __init__(
        self,
        table: str,
        columns: Sequence[Tuple[str, str]],
        meta: Optional[Dict[str, Any]] = None,
        spill_bytes: int = DEFAULT_SPILL_BYTES,
    ) -> None:
        self._table = table
        self._meta = dict(meta or {})
        self._rows = 0
        self._columns: List[Any] = []
        seen = set()
        for name, kind in columns:
            if name in seen:
                raise ValueError(f"duplicate column {name!r} in table {table!r}")
            seen.add(name)
            if kind == "i64":
                self._columns.append(_I64Column(name, spill_bytes))
            elif kind == "str":
                self._columns.append(
                    _OffsetsColumn(name, "str", _encode_str, True, spill_bytes)
                )
            elif kind == "json":
                self._columns.append(
                    _OffsetsColumn(name, "json", _encode_json, False, spill_bytes)
                )
            else:
                raise ValueError(f"unknown column kind {kind!r}")

    @property
    def rows(self) -> int:
        return self._rows

    def append_row(self, row: Sequence[Any]) -> None:
        if len(row) != len(self._columns):
            raise ValueError(
                f"table {self._table!r}: row has {len(row)} cells, "
                f"schema has {len(self._columns)} columns"
            )
        for column, value in zip(self._columns, row):
            column.append(value)
        self._rows += 1

    def zonemap(self) -> Dict[str, Dict[str, Any]]:
        """Per-column min/max, matching ``SegmentWriter._zonemap``."""
        result: Dict[str, Dict[str, Any]] = {}
        for column in self._columns:
            entry = column.zonemap()
            if entry is not None:
                result[column.name] = entry
        return result

    def write(self, path: str) -> int:
        """Atomically stream the segment to *path*; returns row count."""
        specs: List[Dict[str, Any]] = []
        blob_plan: List[Tuple[int, _SpillBuffer]] = []  # (pad bytes, blob)
        position = 0
        for column in self._columns:
            spec: Dict[str, Any] = {"name": column.name, "kind": column.kind}
            extents = []
            for blob in column.blobs():
                aligned = _align(position)
                blob_plan.append((aligned - position, blob))
                position = aligned
                extents.append([position, blob.size])
                position += blob.size
            spec["extents"] = extents
            specs.append(spec)

        header = {
            "table": self._table,
            "rows": self._rows,
            "byteorder": sys.byteorder,
            "payload_bytes": position,
            "columns": specs,
            "zonemap": self.zonemap(),
            "meta": self._meta,
        }
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        preamble = _PREAMBLE.pack(MAGIC, VERSION, 0, len(header_bytes))
        body = preamble + header_bytes

        tmp_path = path + ".tmp"
        with open(tmp_path, "wb") as handle:
            handle.write(body)
            handle.write(b"\x00" * (_align(len(body)) - len(body)))
            for pad, blob in blob_plan:
                if pad:
                    handle.write(b"\x00" * pad)
                blob.copy_into(handle)
        os.replace(tmp_path, path)
        self.close()
        return self._rows

    def close(self) -> None:
        """Release spill files without writing (abandoned segments)."""
        for column in self._columns:
            column.close()


# ---------------------------------------------------------------------------
# external sorting
# ---------------------------------------------------------------------------

#: Items per sorted run held in memory before spilling.
DEFAULT_RUN_SIZE = 262144

#: Items per pickle frame inside a spilled run (bounds merge memory).
_RUN_FRAME = 4096


class ExternalSorter:
    """Bounded-memory sort of a tuple stream, equal to ``sorted()``.

    Items are collected into runs of ``run_size``; full runs are sorted
    and spilled to anonymous temp files in small pickle frames. Reading
    back heap-merges all runs plus the in-memory tail. Item tuples must
    be totally ordered (the index-entry tuples all end in a unique row
    number, so ties never reach incomparable cells).
    """

    def __init__(self, run_size: int = DEFAULT_RUN_SIZE) -> None:
        self._run_size = run_size
        self._pending: List[Tuple] = []
        self._runs: List[Any] = []
        self._count = 0
        #: Total bytes written to spill files so far — the generator's
        #: ``gen_spill_bytes`` progress phase reads this.
        self.spilled_bytes = 0

    def __len__(self) -> int:
        return self._count

    def add(self, item: Tuple) -> None:
        self._pending.append(item)
        self._count += 1
        if len(self._pending) >= self._run_size:
            self._spill()

    def extend(self, items) -> None:
        for item in items:
            self.add(item)

    def _spill(self) -> None:
        self._pending.sort()
        handle = tempfile.TemporaryFile()
        # One self-contained pickle per frame (module-level dump, fresh
        # memo each time). A single Pickler shared across frames would
        # emit cross-frame memo references, forcing the reader's memo to
        # pin every object of the run until its iterator is exhausted —
        # under the k-way merge that materialises the whole sorted
        # stream, turning the O(frame) read-back into O(items).
        for start in range(0, len(self._pending), _RUN_FRAME):
            pickle.dump(
                self._pending[start : start + _RUN_FRAME],
                handle,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        pickle.dump(None, handle, protocol=pickle.HIGHEST_PROTOCOL)
        handle.flush()
        self.spilled_bytes += handle.tell()
        self._runs.append(handle)
        self._pending = []

    @staticmethod
    def _iter_run(handle) -> Iterator[Tuple]:
        handle.seek(0)
        while True:
            frame = pickle.load(handle)
            if frame is None:
                break
            for item in frame:
                yield item
        handle.close()

    def sorted_iter(self) -> Iterator[Tuple]:
        """Yield all added items in ascending order (one-shot)."""
        self._pending.sort()
        tail = self._pending
        self._pending = []
        runs = self._runs
        self._runs = []
        iterators = [self._iter_run(handle) for handle in runs]
        if tail:
            iterators.append(iter(tail))
        if len(iterators) == 1:
            return iterators[0]
        return heapq.merge(*iterators)

    def close(self) -> None:
        for handle in self._runs:
            handle.close()
        self._runs = []
        self._pending = []
