"""The legacy JSONL bundle layout (reader/writer, no deprecation noise).

This is the dict-shaped, gzipped-JSONL format ``repro.ecosystem.persistence``
historically wrote. The logic lives here verbatim so the columnar plane's
converter and the compatibility shim share one implementation; new code
should go through :func:`repro.data.open_bundle`, which dispatches on the
on-disk layout, rather than call these directly (lint rule RL601 flags
direct use outside this package).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple

from repro.core.pipeline import DatasetBundle
from repro.core.stale import StalenessClass
from repro.ct.dedup import CertificateCorpus
from repro.dns.records import RecordType
from repro.dns.snapshots import DailySnapshot, DomainObservation, SnapshotStore
from repro.pki.certificate import Certificate
from repro.revocation.crl import CertificateRevocationList, CrlEntry
from repro.revocation.reasons import RevocationReason
from repro.util.storage import dump_jsonl, load_jsonl

LEGACY_CORPUS = "corpus.jsonl.gz"
LEGACY_REVOCATIONS = "revocations.jsonl.gz"
LEGACY_WHOIS = "whois_pairs.jsonl.gz"
LEGACY_SNAPSHOTS = "dns_snapshots.jsonl.gz"
LEGACY_MANIFEST = "manifest.json"


def save_legacy_bundle(bundle: DatasetBundle, directory: str) -> Dict[str, int]:
    """Persist a bundle in the legacy layout; returns per-file counts."""
    os.makedirs(directory, exist_ok=True)
    counts: Dict[str, int] = {}

    counts[LEGACY_CORPUS] = dump_jsonl(
        os.path.join(directory, LEGACY_CORPUS),
        (certificate.to_record() for certificate in bundle.corpus.certificates()),
    )

    # CRL series collapse to one merged entry set; issuer names are kept so
    # synthetic per-issuer CRLs can be rebuilt on load.
    def _revocation_records():
        for crl in bundle.crls:
            for entry in crl.entries:
                yield {
                    "issuer_name": crl.issuer_name,
                    "authority_key_id": crl.authority_key_id,
                    "serial": entry.serial,
                    "revocation_day": entry.revocation_day,
                    "reason": entry.reason.name,
                }

    seen: set = set()

    def _deduped():
        for record in _revocation_records():
            key = (record["authority_key_id"], record["serial"])
            if key in seen:
                continue
            seen.add(key)
            yield record

    counts[LEGACY_REVOCATIONS] = dump_jsonl(
        os.path.join(directory, LEGACY_REVOCATIONS), _deduped()
    )

    counts[LEGACY_WHOIS] = dump_jsonl(
        os.path.join(directory, LEGACY_WHOIS),
        (
            {"domain": domain, "creation_day": day}
            for domain, day in bundle.whois_creation_pairs
        ),
    )

    def _snapshot_records():
        if bundle.dns_snapshots is None:
            return
        for scan_day in bundle.dns_snapshots.days():
            snapshot = bundle.dns_snapshots.get(scan_day)
            for apex in sorted(snapshot.apexes()):
                observation = snapshot.get(apex)
                yield {
                    "day": scan_day,
                    "apex": apex,
                    "records": {k: sorted(v) for k, v in observation.rdatas.items()},
                }

    counts[LEGACY_SNAPSHOTS] = dump_jsonl(
        os.path.join(directory, LEGACY_SNAPSHOTS), _snapshot_records()
    )

    manifest = {
        "windows": {
            cls.value: list(window) for cls, window in bundle.windows.items()
        },
        "files": counts,
    }
    with open(
        os.path.join(directory, LEGACY_MANIFEST), "w", encoding="utf-8"
    ) as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    return counts


def load_legacy_bundle(directory: str) -> DatasetBundle:
    """Rebuild a :class:`DatasetBundle` saved by :func:`save_legacy_bundle`."""
    manifest_path = os.path.join(directory, LEGACY_MANIFEST)
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)

    corpus = CertificateCorpus()
    corpus.ingest(
        Certificate.from_record(record)
        for record in load_jsonl(os.path.join(directory, LEGACY_CORPUS))
    )

    by_issuer: Dict[Tuple[str, str], List[CrlEntry]] = {}
    first_day = None
    last_day = None
    for record in load_jsonl(os.path.join(directory, LEGACY_REVOCATIONS)):
        key = (record["issuer_name"], record["authority_key_id"])
        entry = CrlEntry(
            serial=record["serial"],
            revocation_day=record["revocation_day"],
            reason=RevocationReason[record["reason"]],
        )
        by_issuer.setdefault(key, []).append(entry)
        if first_day is None or entry.revocation_day < first_day:
            first_day = entry.revocation_day
        if last_day is None or entry.revocation_day > last_day:
            last_day = entry.revocation_day
    crls: List[CertificateRevocationList] = []
    for (issuer_name, akid), entries in sorted(by_issuer.items()):
        crl = CertificateRevocationList(
            issuer_name=issuer_name,
            authority_key_id=akid,
            this_update=last_day if last_day is not None else 0,
            next_update=(last_day if last_day is not None else 0) + 7,
            crl_number=1,
        )
        crl.entries.extend(entries)
        crls.append(crl)

    pairs = [
        (record["domain"], record["creation_day"])
        for record in load_jsonl(os.path.join(directory, LEGACY_WHOIS))
    ]

    store = SnapshotStore()
    snapshots: Dict[int, DailySnapshot] = {}
    for record in load_jsonl(os.path.join(directory, LEGACY_SNAPSHOTS)):
        snapshot = snapshots.get(record["day"])
        if snapshot is None:
            snapshot = DailySnapshot(record["day"])
            snapshots[record["day"]] = snapshot
            store.put(snapshot)
        observation = DomainObservation(record["apex"])
        for rtype_value, values in record["records"].items():
            observation.set(RecordType(rtype_value), values)
        snapshot._observations[record["apex"]] = observation

    windows = {
        StalenessClass(name): (window[0], window[1])
        for name, window in manifest.get("windows", {}).items()
    }
    return DatasetBundle(
        corpus=corpus,
        crls=crls,
        whois_creation_pairs=pairs,
        dns_snapshots=store if len(store) else None,
        windows=windows,
    )
