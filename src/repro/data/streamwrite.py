"""Streaming dataset assembly: rows in, a columnar bundle out.

The batch path (:func:`repro.data.dataset.write_dataset`) materialises
every table before writing. :class:`StreamingDatasetWriter` is the
O(segment)-memory counterpart: callers append raw schema-shaped rows
(tuples in ``schema.COLUMNS`` order) in each table's canonical order;
table segments roll over every ``rows_per_segment`` rows through
:class:`~repro.data.append.AppendSegmentWriter`, and secondary-index
entries are extracted row-by-row into :class:`ExternalSorter` spills,
so nothing table-sized is ever resident.

:func:`write_rows_dataset` is the *reference* path for the same row
streams: it materialises everything and writes through the original
``SegmentWriter`` / ``_index_writer`` machinery from
:mod:`repro.data.dataset`. The two paths share no encoder code beyond
the schema, which is what makes the byte-identity equivalence suite in
``tests/test_streamgen_equivalence.py`` meaningful.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.detectors.managed_tls import has_managed_marker_san
from repro.data import schema
from repro.data.append import AppendSegmentWriter, ExternalSorter
from repro.data.dataset import (
    DATASET_MANIFEST,
    DEFAULT_ROWS_PER_SEGMENT,
    FORMAT_NAME,
    FORMAT_VERSION,
    _index_writer,
    _table_writers,
)

#: Key columns per (table, index); mirrors ``dataset._build_segments``.
INDEX_KEY_COLUMNS: Dict[str, Dict[str, Tuple[Tuple[str, str], ...]]] = {
    schema.CERTS_TABLE: {
        "revkey": (("authority_key_id", "str"), ("serial", "i64")),
        "e2ld": (("e2ld", "str"),),
        "managed": (),
        "interval": (("start", "i64"), ("end", "i64")),
    },
    schema.REVOCATIONS_TABLE: {
        "interval": (("start", "i64"), ("end", "i64")),
    },
    schema.WHOIS_TABLE: {
        "interval": (("start", "i64"), ("end", "i64")),
    },
    schema.DNS_TABLE: {
        "interval": (("start", "i64"), ("end", "i64")),
    },
}

_CERT_COL = {name: i for i, (name, _) in enumerate(schema.COLUMNS[schema.CERTS_TABLE])}
_SAN_IDX = _CERT_COL["san_dns_names"]
_AKID_IDX = _CERT_COL["authority_key_id"]
_SERIAL_IDX = _CERT_COL["serial"]
_NOT_BEFORE_IDX = _CERT_COL["not_before"]
_NOT_AFTER_IDX = _CERT_COL["not_after"]
_E2LDS_IDX = _CERT_COL["e2lds"]


def iter_index_entries(
    table: str, row_id: int, row: Sequence[Any]
) -> Iterable[Tuple[str, Tuple]]:
    """``(index name, entry tuple)`` pairs for one schema-shaped row.

    Entry shapes match ``dataset._build_segments`` exactly, so sorting
    them yields byte-identical index segments.
    """
    if table == schema.CERTS_TABLE:
        yield "revkey", (row[_AKID_IDX], row[_SERIAL_IDX], row_id)
        for registrable in row[_E2LDS_IDX]:
            yield "e2ld", (registrable, row_id)
        if has_managed_marker_san(row[_SAN_IDX]):
            yield "managed", (row_id,)
        yield "interval", (row[_NOT_BEFORE_IDX], row[_NOT_AFTER_IDX], row_id)
    elif table == schema.REVOCATIONS_TABLE:
        yield "interval", (row[3], row[3], row_id)
    elif table == schema.WHOIS_TABLE:
        yield "interval", (row[1], row[1], row_id)
    elif table == schema.DNS_TABLE:
        yield "interval", (row[0], row[0], row_id)
    else:
        raise ValueError(f"unknown table {table!r}")


def _windows_spec(windows) -> Dict[str, List[int]]:
    return {cls.value: list(window) for cls, window in windows.items()}


def _write_manifest(directory: str, manifest: Dict[str, Any]) -> None:
    manifest_path = os.path.join(directory, DATASET_MANIFEST)
    tmp_path = manifest_path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    os.replace(tmp_path, manifest_path)


class _RollingTable:
    """One table's segment chain: a fresh writer every 64Ki rows."""

    def __init__(self, directory: str, table: str, rows_per_segment: int) -> None:
        self._directory = directory
        self._table = table
        self._rows_per_segment = rows_per_segment
        self._writer: Optional[AppendSegmentWriter] = None
        self._segments: List[Dict[str, Any]] = []
        self.count = 0

    def _open_writer(self) -> AppendSegmentWriter:
        if self._writer is None:
            self._writer = AppendSegmentWriter(
                self._table, schema.COLUMNS[self._table]
            )
        return self._writer

    def append(self, row: Sequence[Any]) -> None:
        writer = self._open_writer()
        writer.append_row(row)
        self.count += 1
        if writer.rows >= self._rows_per_segment:
            self._seal()

    def _seal(self) -> None:
        writer = self._writer
        if writer is None:
            return
        filename = f"{self._table}-{len(self._segments):03d}.seg"
        zonemap = writer.zonemap()
        rows = writer.write(os.path.join(self._directory, filename))
        self._segments.append({"file": filename, "rows": rows, "zonemap": zonemap})
        self._writer = None

    def finish(self) -> List[Dict[str, Any]]:
        # An empty table still gets one empty segment (matches _chunk(0)).
        if self._writer is None and not self._segments:
            self._open_writer()
        self._seal()
        return self._segments

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None


class StreamingDatasetWriter:
    """Bounded-memory ``write_dataset``: feed rows, then :meth:`finish`.

    Rows must arrive in each table's canonical order (certificates in
    corpus order, revocations deduplicated, WHOIS pairs in span order,
    DNS globally (day, apex)-sorted — the lazy snapshot reader requires
    day-contiguous rows). Cross-table interleaving is free.
    """

    def __init__(
        self,
        directory: str,
        windows,
        rows_per_segment: int = DEFAULT_ROWS_PER_SEGMENT,
    ) -> None:
        os.makedirs(directory, exist_ok=True)
        self._directory = directory
        self._windows = windows
        self._tables = {
            name: _RollingTable(directory, name, rows_per_segment)
            for name in schema.TABLE_NAMES
        }
        self._sorters: Dict[Tuple[str, str], ExternalSorter] = {
            (table, index): ExternalSorter()
            for table, indexes in INDEX_KEY_COLUMNS.items()
            for index in indexes
        }

    def append(self, table: str, row: Sequence[Any]) -> None:
        rolling = self._tables[table]
        row_id = rolling.count
        rolling.append(row)
        for index_name, entry in iter_index_entries(table, row_id, row):
            self._sorters[(table, index_name)].add(entry)

    def extend(self, table: str, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.append(table, row)

    def finish(self) -> Dict[str, int]:
        """Seal segments, write sorted indexes + manifest; return rows."""
        tables_spec: Dict[str, Any] = {}
        for name in schema.TABLE_NAMES:
            segments = self._tables[name].finish()
            index_files: Dict[str, str] = {}
            for index_name, key_columns in INDEX_KEY_COLUMNS[name].items():
                filename = f"idx-{name}-{index_name}.seg"
                writer = AppendSegmentWriter(
                    f"idx-{name}-{index_name}",
                    tuple(key_columns) + (("row", "i64"),),
                    meta={"key_columns": [col for col, _ in key_columns]},
                )
                for entry in self._sorters[(name, index_name)].sorted_iter():
                    writer.append_row(entry)
                writer.write(os.path.join(self._directory, filename))
                index_files[index_name] = filename
            tables_spec[name] = {
                "rows": sum(segment["rows"] for segment in segments),
                "segments": segments,
                "indexes": index_files,
            }
        manifest = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "windows": _windows_spec(self._windows),
            "tables": tables_spec,
        }
        _write_manifest(self._directory, manifest)
        return {name: spec["rows"] for name, spec in tables_spec.items()}

    def close(self) -> None:
        """Abandon the write: drop open writers and sorter spills."""
        for rolling in self._tables.values():
            rolling.close()
        for sorter in self._sorters.values():
            sorter.close()


def write_rows_dataset(
    rows_by_table: Dict[str, List[Tuple]],
    windows,
    directory: str,
    rows_per_segment: int = DEFAULT_ROWS_PER_SEGMENT,
) -> Dict[str, int]:
    """Materialised reference path over the same schema-shaped rows.

    Collects whole columns and writes through the batch machinery
    (``SegmentWriter`` via ``_table_writers`` / ``_index_writer``). The
    equivalence suite proves this and :class:`StreamingDatasetWriter`
    produce byte-identical directories.
    """
    os.makedirs(directory, exist_ok=True)
    tables_spec: Dict[str, Any] = {}
    for name in schema.TABLE_NAMES:
        rows = rows_by_table.get(name, [])
        values = {
            column: [row[position] for row in rows]
            for position, (column, _) in enumerate(schema.COLUMNS[name])
        }
        table_writers = _table_writers(name, values, rows_per_segment)
        entries: Dict[str, List[Tuple]] = {
            index: [] for index in INDEX_KEY_COLUMNS[name]
        }
        for row_id, row in enumerate(rows):
            for index_name, entry in iter_index_entries(name, row_id, row):
                entries[index_name].append(entry)
        indexes = {
            index_name: _index_writer(name, index_name, key_columns, entries[index_name])
            for index_name, key_columns in INDEX_KEY_COLUMNS[name].items()
        }
        for filename, writer in table_writers:
            writer.write(os.path.join(directory, filename))
        for filename, writer in indexes.values():
            writer.write(os.path.join(directory, filename))
        tables_spec[name] = {
            "rows": sum(writer.rows for _, writer in table_writers),
            "segments": [
                {"file": filename, "rows": writer.rows, "zonemap": writer._zonemap}
                for filename, writer in table_writers
            ],
            "indexes": {
                index_name: filename
                for index_name, (filename, _) in indexes.items()
            },
        }
    manifest = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "windows": _windows_spec(windows),
        "tables": tables_spec,
    }
    _write_manifest(directory, manifest)
    return {name: spec["rows"] for name, spec in tables_spec.items()}
