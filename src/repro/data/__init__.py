"""``repro.data`` — the columnar bundle data plane.

One API for every engine that consumes a saved
:class:`~repro.core.pipeline.DatasetBundle`:

* :func:`open_bundle` — open a bundle directory in whichever layout it
  uses (columnar segments or the legacy JSONL dict format);
* :class:`Dataset` — typed table handles (``certs`` / ``revocations`` /
  ``whois`` / ``dns``) with ``scan()``, ``lookup()``,
  ``interval_query()`` over memory-mapped columnar segments;
* :func:`write_dataset` — persist a bundle as columnar segments;
* :class:`StreamingDatasetWriter` — the bounded-memory counterpart:
  append schema-shaped rows as they are generated (the streaming world
  generator's sink), with :class:`AppendSegmentWriter` /
  :class:`ExternalSorter` as the spill-to-disk building blocks;
* :func:`convert` / :func:`check_equivalent` — migrate between layouts
  with a round-trip equality check;
* :func:`save_legacy_bundle` / :func:`load_legacy_bundle` — the legacy
  layout, kept for compatibility (direct use outside this package is
  flagged by lint rule RL601).
"""

from repro.data.append import AppendSegmentWriter, ExternalSorter
from repro.data.convert import check_equivalent, convert
from repro.data.streamwrite import StreamingDatasetWriter, write_rows_dataset
from repro.data.dataset import (
    DATASET_MANIFEST,
    DEFAULT_ROWS_PER_SEGMENT,
    Dataset,
    detect_layout,
    open_bundle,
    write_dataset,
)
from repro.data.legacy import load_legacy_bundle, save_legacy_bundle
from repro.data.segment import Segment, SegmentFormatError, SegmentWriter

__all__ = [
    "AppendSegmentWriter",
    "DATASET_MANIFEST",
    "DEFAULT_ROWS_PER_SEGMENT",
    "Dataset",
    "ExternalSorter",
    "Segment",
    "SegmentFormatError",
    "SegmentWriter",
    "StreamingDatasetWriter",
    "check_equivalent",
    "convert",
    "detect_layout",
    "load_legacy_bundle",
    "open_bundle",
    "save_legacy_bundle",
    "write_dataset",
    "write_rows_dataset",
]
