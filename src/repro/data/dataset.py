"""The unified ``Dataset`` access API over columnar bundle segments.

``Dataset.open(path)`` maps a saved columnar bundle; ``Dataset.from_bundle``
builds the same structure in memory from a live
:class:`~repro.core.pipeline.DatasetBundle`; ``write_dataset`` persists
one to disk. All three expose the same typed table handles:

=====================  ===================================================
handle                 purpose
=====================  ===================================================
``dataset.certs``      certificate corpus; ``certificate(row)`` hydration,
                       ``lookup("revkey", (akid, serial))``,
                       ``lookup("e2ld", domain)``, ``managed_rows()``
``dataset.revocations``  deduplicated CRL entries with issuer/akid
``dataset.whois``      (domain, creation day) pairs
``dataset.dns``        per-(day, apex) record observations
=====================  ===================================================

Every table supports ``scan(columns, day_range=...)`` (zone-map pruned),
``lookup(index, key)`` (sorted secondary index, binary search) and
``interval_query(lo, hi)`` (sorted interval index). Row ids are global,
stable, and identical between the on-disk and in-memory forms.

On-disk layout::

    bundle-dir/
      dataset.json            # format marker, windows, table + index map
      certs-000.seg ...       # table segments (rows_per_segment chunks)
      revocations-000.seg ...
      whois-000.seg ...
      dns-000.seg ...
      idx-certs-revkey.seg    # sorted (authority_key_id, serial, row)
      idx-certs-e2ld.seg      # sorted (e2ld, row)
      idx-certs-managed.seg   # ascending rows of CDN-managed certificates
      idx-<table>-interval.seg  # sorted (start, end, row)

A missing directory or file raises ``OSError``; a malformed manifest or
segment raises ``ValueError`` — exactly the error contract of the legacy
JSONL loader, so the CLI's exit-2 mapping covers both layouts.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.stale import StalenessClass
from repro.data import schema
from repro.data.segment import MAGIC, Segment, SegmentFormatError, SegmentWriter
from repro.obs import get_registry, names
from repro.pki.certificate import Certificate
from repro.revocation.crl import CrlEntry
from repro.util.dates import Day

DATASET_MANIFEST = "dataset.json"
FORMAT_NAME = "repro-columnar"
FORMAT_VERSION = 1

#: Default horizontal chunking of table segments. Small enough that zone
#: maps prune day-windowed scans, large enough that per-segment overhead
#: stays negligible at simulator scales.
DEFAULT_ROWS_PER_SEGMENT = 65536


def _manifest_error(directory: str, problem: str) -> SegmentFormatError:
    return SegmentFormatError(f"{directory}: corrupt dataset manifest: {problem}")


class Table:
    """One logical table spread over N segments, with global row ids."""

    def __init__(
        self,
        name: str,
        segments: List[Dict[str, Any]],
        loader: Callable[[str], Segment],
        indexes: Optional[Dict[str, str]] = None,
    ) -> None:
        self.name = name
        self._refs = segments  # [{"file", "rows", "zonemap"}]
        self._loader = loader
        self._indexes = dict(indexes or {})  # index name -> filename
        self._index_open: Dict[str, Segment] = {}
        self._open: Dict[str, Segment] = {}
        self._bases: List[int] = []
        base = 0
        for ref in segments:
            self._bases.append(base)
            base += ref["rows"]
        self.rows = base
        self._columns: Dict[str, "ChainedColumn"] = {}
        #: (opened, pruned) scan accounting, exposed for tests.
        self.scan_stats = {"segments_scanned": 0, "segments_pruned": 0}

    def __len__(self) -> int:
        return self.rows

    # -- segments ------------------------------------------------------------

    def _segment(self, ref: Dict[str, Any]) -> Segment:
        segment = self._open.get(ref["file"])
        if segment is None:
            segment = self._loader(ref["file"])
            if segment.table != self.name or segment.rows != ref["rows"]:
                raise SegmentFormatError(
                    f"{ref['file']}: segment does not match manifest "
                    f"(table {segment.table!r} rows {segment.rows}, "
                    f"expected {self.name!r} rows {ref['rows']})"
                )
            self._open[ref["file"]] = segment
            get_registry().counter(
                names.DATA_SEGMENTS_OPENED,
                names.DATA_SEGMENTS_OPENED_HELP,
                labels=("table",),
            ).inc(table=self.name)
        return segment

    def ensure_open(self) -> None:
        """Map and header-validate every segment (tables and indexes).

        Payload pages are still untouched — mmap is lazy per page — but
        truncation and header corruption surface here, at open time,
        instead of mid-detection. Called by :meth:`Dataset.open` so the
        CLI's OSError/ValueError → exit-2 contract holds for segments
        exactly as it does for manifests.
        """
        for ref in self._refs:
            self._segment(ref)
        for index_name in list(self._indexes):
            self._index_segment(index_name)

    def close(self) -> None:
        self._columns.clear()
        for segment in self._open.values():
            segment.close()
        self._open.clear()
        for segment in self._index_open.values():
            segment.close()
        self._index_open.clear()

    # -- columns -------------------------------------------------------------

    def column(self, name: str) -> "ChainedColumn":
        column = self._columns.get(name)
        if column is None:
            column = ChainedColumn(self, name)
            self._columns[name] = column
        return column

    def columns(self, column_names: Sequence[str]) -> Dict[str, "ChainedColumn"]:
        return {name: self.column(name) for name in column_names}

    def zone_range(self, column: str) -> Optional[Tuple[Any, Any]]:
        """Aggregated (min, max) of *column* across all segment zone maps."""
        lows: List[Any] = []
        highs: List[Any] = []
        for ref in self._refs:
            zone = ref.get("zonemap", {}).get(column)
            if zone is not None:
                lows.append(zone["min"])
                highs.append(zone["max"])
        if not lows:
            return None
        return min(lows), max(highs)

    # -- scans ---------------------------------------------------------------

    def scan(
        self,
        column_names: Sequence[str],
        day_range: Optional[Tuple[Day, Day]] = None,
    ) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        """Yield ``(row_id, values)`` over all segments, in row order.

        With ``day_range=(lo, hi)``, rows whose interval columns (declared
        in :data:`~repro.data.schema.INTERVAL_COLUMNS`) overlap ``[lo, hi]``
        are yielded; segments whose zone maps prove no overlap are skipped
        without being opened.
        """
        start_col = end_col = None
        if day_range is not None:
            lo, hi = day_range
            start_col, end_col = schema.INTERVAL_COLUMNS[self.name]
        for ref, base in zip(self._refs, self._bases):
            if day_range is not None and self._prunable(ref, lo, hi):
                self.scan_stats["segments_pruned"] += 1
                get_registry().counter(
                    names.DATA_SEGMENTS_PRUNED,
                    names.DATA_SEGMENTS_PRUNED_HELP,
                    labels=("table",),
                ).inc(table=self.name)
                continue
            self.scan_stats["segments_scanned"] += 1
            segment = self._segment(ref)
            columns = [segment.column(name) for name in column_names]
            if day_range is None:
                for local in range(ref["rows"]):
                    yield base + local, tuple(column[local] for column in columns)
            else:
                starts = segment.column(start_col)
                ends = segment.column(end_col)
                for local in range(ref["rows"]):
                    if starts[local] <= hi and ends[local] >= lo:
                        yield base + local, tuple(
                            column[local] for column in columns
                        )

    def _prunable(self, ref: Dict[str, Any], lo: Day, hi: Day) -> bool:
        start_col, end_col = schema.INTERVAL_COLUMNS[self.name]
        zonemap = ref.get("zonemap", {})
        start_zone = zonemap.get(start_col)
        end_zone = zonemap.get(end_col)
        if start_zone is None or end_zone is None:
            return False  # no zone map: must scan
        # No row can overlap [lo, hi] when every start is past hi or
        # every end is before lo.
        return start_zone["min"] > hi or end_zone["max"] < lo

    # -- indexes -------------------------------------------------------------

    def _index_segment(self, index_name: str) -> Segment:
        segment = self._index_open.get(index_name)
        if segment is not None:
            return segment
        filename = self._indexes.get(index_name)
        if filename is None:
            raise KeyError(f"table {self.name!r} has no index {index_name!r}")
        segment = self._loader(filename)
        self._index_open[index_name] = segment
        return segment

    def lookup(self, index_name: str, key) -> List[int]:
        """Global row ids matching *key* in a sorted secondary index.

        ``key`` is a scalar for single-column indexes and a tuple for
        compound ones; returned row ids ascend (corpus order).
        """
        segment = self._index_segment(index_name)
        key_columns = [
            segment.column(name) for name in segment.meta["key_columns"]
        ]
        if not isinstance(key, tuple):
            key = (key,)
        if len(key) != len(key_columns):
            raise ValueError(
                f"index {index_name!r} key has {len(key_columns)} parts, "
                f"got {len(key)}"
            )

        def key_at(position: int) -> Tuple[Any, ...]:
            return tuple(column[position] for column in key_columns)

        lo = _lower_bound(segment.rows, key_at, key)
        hi = _upper_bound(segment.rows, key_at, key, lo)
        row_column = segment.column("row")
        return [row_column[position] for position in range(lo, hi)]

    def interval_query(self, lo: Day, hi: Day) -> List[int]:
        """Row ids whose declared interval overlaps ``[lo, hi]``, ascending.

        Uses the sorted interval index: binary search bounds the
        ``start <= hi`` prefix, then the prefix is filtered on
        ``end >= lo``.
        """
        segment = self._index_segment("interval")
        starts = segment.column("start")
        ends = segment.column("end")
        rows = segment.column("row")
        cutoff = _lower_bound(segment.rows, lambda i: (starts[i],), (hi + 1,))
        return sorted(
            rows[position] for position in range(cutoff) if ends[position] >= lo
        )

    def has_index(self, index_name: str) -> bool:
        return index_name in self._indexes


def _lower_bound(length: int, key_at, target) -> int:
    low, high = 0, length
    while low < high:
        mid = (low + high) // 2
        if key_at(mid) < target:
            low = mid + 1
        else:
            high = mid
    return low


def _upper_bound(length: int, key_at, target, low: int = 0) -> int:
    high = length
    while low < high:
        mid = (low + high) // 2
        if key_at(mid) <= target:
            low = mid + 1
        else:
            high = mid
    return low


class ChainedColumn(Sequence):
    """One column addressed by global row id across a table's segments."""

    def __init__(self, table: Table, name: str) -> None:
        self._table = table
        self._name = name

    def __len__(self) -> int:
        return self._table.rows

    def _locate(self, row: int) -> Tuple[Segment, int]:
        if row < 0:
            row += len(self)
        if not 0 <= row < len(self):
            raise IndexError(row)
        bases = self._table._bases
        low, high = 0, len(bases) - 1
        while low < high:  # rightmost base <= row
            mid = (low + high + 1) // 2
            if bases[mid] <= row:
                low = mid
            else:
                high = mid - 1
        ref = self._table._refs[low]
        return self._table._segment(ref), row - bases[low]

    def __getitem__(self, row):
        if isinstance(row, slice):
            return [self[i] for i in range(*row.indices(len(self)))]
        segment, local = self._locate(row)
        return segment.column(self._name)[local]

    def __iter__(self):
        for ref, base in zip(self._table._refs, self._table._bases):
            column = self._table._segment(ref).column(self._name)
            for local in range(ref["rows"]):
                yield column[local]

    def cell_bytes(self, row: int) -> bytes:
        """Raw encoded cell (str/json columns only) for value interning."""
        segment, local = self._locate(row)
        return segment.column(self._name).cell_bytes(local)


# ---------------------------------------------------------------------------
# typed table handles
# ---------------------------------------------------------------------------


class CertsTable(Table):
    """Certificate table: hydration cache plus the join indexes."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._hydrated: Dict[int, Certificate] = {}

    def certificate(self, row: int) -> Certificate:
        certificate = self._hydrated.get(row)
        if certificate is None:
            certificate = schema.certificate_at(
                self.columns([name for name, _ in schema.COLUMNS[schema.CERTS_TABLE]]),
                row,
            )
            self._hydrated[row] = certificate
        return certificate

    def certificates(self) -> Iterator[Certificate]:
        for row in range(self.rows):
            yield self.certificate(row)

    def rows_for_revocation_key(self, key: Tuple[str, int]) -> List[int]:
        return self.lookup("revkey", key)

    def rows_for_e2ld(self, registrable: str) -> List[int]:
        return self.lookup("e2ld", registrable)

    def managed_rows(self) -> List[int]:
        """Rows of CDN-managed certificates, ascending (corpus order)."""
        segment = self._index_segment("managed")
        return list(segment.column("row"))


class RevocationsTable(Table):
    """Deduplicated CRL entries with their issuing (issuer, akid)."""

    def entry(self, row: int) -> CrlEntry:
        return schema.revocation_entry_at(
            self.columns(("serial", "revocation_day", "reason")), row
        )

    def issuer_rows(self) -> Iterator[Tuple[int, str, str]]:
        """Yield ``(row, issuer_name, authority_key_id)`` in row order."""
        issuers = self.column("issuer_name")
        akids = self.column("authority_key_id")
        for row in range(self.rows):
            yield row, issuers[row], akids[row]


class WhoisTable(Table):
    def pairs(self) -> List[Tuple[str, Day]]:
        domains = self.column("domain")
        days = self.column("creation_day")
        return [(domains[row], days[row]) for row in range(self.rows)]


class DnsTable(Table):
    def observation(self, row: int) -> Tuple[Day, str, Dict[str, List[str]]]:
        columns = self.columns(("day", "apex", "records"))
        return (
            columns["day"][row],
            columns["apex"][row],
            columns["records"][row],
        )


_TABLE_CLASSES: Dict[str, type] = {
    schema.CERTS_TABLE: CertsTable,
    schema.REVOCATIONS_TABLE: RevocationsTable,
    schema.WHOIS_TABLE: WhoisTable,
    schema.DNS_TABLE: DnsTable,
}


# ---------------------------------------------------------------------------
# dataset
# ---------------------------------------------------------------------------


class Dataset:
    """A columnar bundle: four typed tables plus observation windows."""

    def __init__(
        self,
        tables: Dict[str, Table],
        windows: Dict[StalenessClass, Tuple[Day, Day]],
        directory: Optional[str] = None,
    ) -> None:
        self._tables = tables
        self.windows = windows
        self.directory = directory

    # -- constructors --------------------------------------------------------

    @classmethod
    def open(cls, directory: str) -> "Dataset":
        """Map a saved columnar bundle (segments open lazily)."""
        manifest_path = os.path.join(directory, DATASET_MANIFEST)
        with open(manifest_path, "r", encoding="utf-8") as handle:
            try:
                manifest = json.load(handle)
            except json.JSONDecodeError as error:
                raise _manifest_error(directory, str(error)) from error
        if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_NAME:
            raise _manifest_error(directory, "missing format marker")
        if manifest.get("version") != FORMAT_VERSION:
            raise _manifest_error(
                directory,
                f"unsupported version {manifest.get('version')!r} "
                f"(this reader understands {FORMAT_VERSION})",
            )

        def loader(filename: str) -> Segment:
            return Segment.open(os.path.join(directory, filename))

        tables: Dict[str, Table] = {}
        try:
            for name in schema.TABLE_NAMES:
                spec = manifest["tables"][name]
                tables[name] = _TABLE_CLASSES[name](
                    name,
                    spec["segments"],
                    loader,
                    indexes=spec.get("indexes", {}),
                )
            windows = {
                StalenessClass(value): (window[0], window[1])
                for value, window in manifest.get("windows", {}).items()
            }
        except (KeyError, TypeError, ValueError) as error:
            raise _manifest_error(directory, repr(error)) from error
        dataset = cls(tables, windows, directory=directory)
        try:
            for table in tables.values():
                table.ensure_open()
        except Exception:
            dataset.close()
            raise
        return dataset

    @classmethod
    def from_bundle(
        cls, bundle, rows_per_segment: int = DEFAULT_ROWS_PER_SEGMENT
    ) -> "Dataset":
        """Build the columnar form in memory (no files touched)."""
        manifest, writers = _build_segments(bundle, rows_per_segment)
        segments = {
            filename: Segment.from_bytes(writer.to_bytes(), source=filename)
            for filename, writer in writers
        }

        def loader(filename: str) -> Segment:
            return segments[filename]

        tables: Dict[str, Table] = {}
        for name in schema.TABLE_NAMES:
            spec = manifest["tables"][name]
            tables[name] = _TABLE_CLASSES[name](
                name, spec["segments"], loader, indexes=spec.get("indexes", {})
            )
        windows = dict(bundle.windows)
        return cls(tables, windows, directory=None)

    # -- access --------------------------------------------------------------

    def table(self, name: str) -> Table:
        return self._tables[name]

    @property
    def certs(self) -> CertsTable:
        return self._tables[schema.CERTS_TABLE]  # type: ignore[return-value]

    @property
    def revocations(self) -> RevocationsTable:
        return self._tables[schema.REVOCATIONS_TABLE]  # type: ignore[return-value]

    @property
    def whois(self) -> WhoisTable:
        return self._tables[schema.WHOIS_TABLE]  # type: ignore[return-value]

    @property
    def dns(self) -> DnsTable:
        return self._tables[schema.DNS_TABLE]  # type: ignore[return-value]

    def to_bundle(self):
        """A lazy :class:`~repro.core.pipeline.DatasetBundle` stand-in."""
        from repro.data.bundle import ColumnarBundle

        return ColumnarBundle(self)

    def close(self) -> None:
        """Release every mapped segment (memoryviews first, then mmaps)."""
        for table in self._tables.values():
            table.close()

    def __enter__(self) -> "Dataset":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# writing
# ---------------------------------------------------------------------------


def _chunk(count: int, rows_per_segment: int) -> List[Tuple[int, int]]:
    if count == 0:
        return [(0, 0)]
    return [
        (start, min(start + rows_per_segment, count))
        for start in range(0, count, rows_per_segment)
    ]


def _table_writers(
    name: str,
    values: Dict[str, List[Any]],
    rows_per_segment: int,
) -> List[Tuple[str, SegmentWriter]]:
    column_spec = schema.COLUMNS[name]
    count = len(values[column_spec[0][0]])
    writers: List[Tuple[str, SegmentWriter]] = []
    for ordinal, (start, end) in enumerate(_chunk(count, rows_per_segment)):
        writer = SegmentWriter(name)
        for column_name, kind in column_spec:
            adder = {
                "i64": writer.add_i64,
                "str": writer.add_str,
                "json": writer.add_json,
            }[kind]
            adder(column_name, values[column_name][start:end])
        writers.append((f"{name}-{ordinal:03d}.seg", writer))
    return writers


def _index_writer(
    table: str,
    index_name: str,
    key_columns: Sequence[Tuple[str, str]],
    entries: List[Tuple],
) -> Tuple[str, SegmentWriter]:
    """One sorted index segment: key columns plus the global ``row``."""
    entries = sorted(entries)
    writer = SegmentWriter(
        f"idx-{table}-{index_name}",
        meta={"key_columns": [name for name, _ in key_columns]},
    )
    for position, (name, kind) in enumerate(key_columns):
        adder = writer.add_i64 if kind == "i64" else writer.add_str
        adder(name, [entry[position] for entry in entries])
    writer.add_i64("row", [entry[len(key_columns)] for entry in entries])
    return f"idx-{table}-{index_name}.seg", writer


def _deduplicated_revocation_rows(crls) -> List[Tuple[str, str, int, int, str]]:
    """(issuer, akid, serial, day, reason) rows, first record per
    (akid, serial) kept — byte-identical to the legacy JSONL dedup."""
    seen: set = set()
    rows: List[Tuple[str, str, int, int, str]] = []
    for crl in crls:
        for entry in crl.entries:
            key = (crl.authority_key_id, entry.serial)
            if key in seen:
                continue
            seen.add(key)
            rows.append(
                (
                    crl.issuer_name,
                    crl.authority_key_id,
                    entry.serial,
                    entry.revocation_day,
                    entry.reason.name,
                )
            )
    return rows


def _dns_rows(store) -> Tuple[List[int], List[str], List[Dict[str, List[str]]]]:
    days: List[int] = []
    apexes: List[str] = []
    records: List[Dict[str, List[str]]] = []
    if store is None:
        return days, apexes, records
    for scan_day in store.days():
        snapshot = store.get(scan_day)
        for apex in sorted(snapshot.apexes()):
            observation = snapshot.get(apex)
            days.append(scan_day)
            apexes.append(apex)
            records.append(
                {key: sorted(value) for key, value in observation.rdatas.items()}
            )
    return days, apexes, records


def _build_segments(
    bundle, rows_per_segment: int
) -> Tuple[Dict[str, Any], List[Tuple[str, SegmentWriter]]]:
    """The full segment plan for *bundle*: (manifest, [(file, writer)])."""
    from repro.core.detectors.managed_tls import is_cloudflare_managed_certificate

    writers: List[Tuple[str, SegmentWriter]] = []
    tables: Dict[str, Any] = {}

    # -- certificates, in corpus iteration order -----------------------------
    certificates = list(bundle.corpus.certificates())
    cert_values = schema.certificate_column_values(certificates)
    cert_writers = _table_writers(
        schema.CERTS_TABLE, cert_values, rows_per_segment
    )
    writers.extend(cert_writers)

    revkey_entries = [
        (certificate.authority_key_id, certificate.serial, row)
        for row, certificate in enumerate(certificates)
    ]
    e2ld_entries = [
        (registrable, row)
        for row, registrable_list in enumerate(cert_values["e2lds"])
        for registrable in registrable_list
    ]
    managed_entries = [
        (row,)
        for row, certificate in enumerate(certificates)
        if is_cloudflare_managed_certificate(certificate)
    ]
    cert_indexes = {
        "revkey": _index_writer(
            schema.CERTS_TABLE,
            "revkey",
            (("authority_key_id", "str"), ("serial", "i64")),
            revkey_entries,
        ),
        "e2ld": _index_writer(
            schema.CERTS_TABLE, "e2ld", (("e2ld", "str"),), e2ld_entries
        ),
        "managed": _index_writer(
            schema.CERTS_TABLE, "managed", (), managed_entries
        ),
        "interval": _index_writer(
            schema.CERTS_TABLE,
            "interval",
            (("start", "i64"), ("end", "i64")),
            [
                (certificate.not_before, certificate.not_after, row)
                for row, certificate in enumerate(certificates)
            ],
        ),
    }

    # -- revocations ---------------------------------------------------------
    revocation_rows = _deduplicated_revocation_rows(bundle.crls)
    revocation_writers = _table_writers(
        schema.REVOCATIONS_TABLE,
        schema.revocation_column_values(revocation_rows),
        rows_per_segment,
    )
    writers.extend(revocation_writers)
    revocation_indexes = {
        "interval": _index_writer(
            schema.REVOCATIONS_TABLE,
            "interval",
            (("start", "i64"), ("end", "i64")),
            [(row[3], row[3], position) for position, row in enumerate(revocation_rows)],
        )
    }

    # -- whois ---------------------------------------------------------------
    whois_writers = _table_writers(
        schema.WHOIS_TABLE,
        {
            "domain": [domain for domain, _ in bundle.whois_creation_pairs],
            "creation_day": [day for _, day in bundle.whois_creation_pairs],
        },
        rows_per_segment,
    )
    writers.extend(whois_writers)
    whois_indexes = {
        "interval": _index_writer(
            schema.WHOIS_TABLE,
            "interval",
            (("start", "i64"), ("end", "i64")),
            [
                (day, day, position)
                for position, (_, day) in enumerate(bundle.whois_creation_pairs)
            ],
        )
    }

    # -- dns -----------------------------------------------------------------
    dns_days, dns_apexes, dns_records = _dns_rows(bundle.dns_snapshots)
    dns_writers = _table_writers(
        schema.DNS_TABLE,
        {"day": dns_days, "apex": dns_apexes, "records": dns_records},
        rows_per_segment,
    )
    writers.extend(dns_writers)
    dns_indexes = {
        "interval": _index_writer(
            schema.DNS_TABLE,
            "interval",
            (("start", "i64"), ("end", "i64")),
            [(day, day, position) for position, day in enumerate(dns_days)],
        )
    }

    for name, table_writers, indexes in (
        (schema.CERTS_TABLE, cert_writers, cert_indexes),
        (schema.REVOCATIONS_TABLE, revocation_writers, revocation_indexes),
        (schema.WHOIS_TABLE, whois_writers, whois_indexes),
        (schema.DNS_TABLE, dns_writers, dns_indexes),
    ):
        writers.extend(indexes.values())
        tables[name] = {
            "rows": sum(writer.rows for _, writer in table_writers),
            "segments": [
                {
                    "file": filename,
                    "rows": writer.rows,
                    "zonemap": writer._zonemap,
                }
                for filename, writer in table_writers
            ],
            "indexes": {
                index_name: filename
                for index_name, (filename, _) in indexes.items()
            },
        }

    manifest = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "windows": {
            cls.value: list(window) for cls, window in bundle.windows.items()
        },
        "tables": tables,
    }
    return manifest, writers


def write_dataset(
    bundle,
    directory: str,
    rows_per_segment: int = DEFAULT_ROWS_PER_SEGMENT,
) -> Dict[str, int]:
    """Persist *bundle* as a columnar dataset; returns per-table rows."""
    manifest, writers = _build_segments(bundle, rows_per_segment)
    os.makedirs(directory, exist_ok=True)
    for filename, writer in writers:
        writer.write(os.path.join(directory, filename))
    manifest_path = os.path.join(directory, DATASET_MANIFEST)
    tmp_path = manifest_path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    os.replace(tmp_path, manifest_path)
    return {name: spec["rows"] for name, spec in manifest["tables"].items()}


# ---------------------------------------------------------------------------
# layout detection
# ---------------------------------------------------------------------------

LEGACY_MANIFEST = "manifest.json"


def detect_layout(directory: str) -> Optional[str]:
    """``"columnar"``, ``"legacy"``, or ``None`` for *directory*.

    Columnar wins on either the ``dataset.json`` manifest or any
    ``*.seg`` file carrying the segment header magic; legacy is the
    JSONL layout's ``manifest.json``.
    """
    if os.path.isfile(os.path.join(directory, DATASET_MANIFEST)):
        return "columnar"
    try:
        entries = sorted(os.listdir(directory))
    except OSError:
        return None
    for filename in entries:
        if filename.endswith(".seg"):
            try:
                with open(os.path.join(directory, filename), "rb") as handle:
                    if handle.read(len(MAGIC)) == MAGIC:
                        return "columnar"
            except OSError:
                continue
    if os.path.isfile(os.path.join(directory, LEGACY_MANIFEST)):
        return "legacy"
    return None


def open_bundle(directory: str):
    """Open whichever bundle layout lives at *directory*.

    Columnar directories come back as a lazy
    :class:`~repro.data.bundle.ColumnarBundle`; legacy directories load
    eagerly through the JSONL reader. Missing directories raise
    ``OSError``, corrupt ones ``ValueError`` — one error contract for
    both layouts.
    """
    layout = detect_layout(directory)
    if layout == "columnar":
        return Dataset.open(directory).to_bundle()
    if layout == "legacy":
        from repro.data.legacy import load_legacy_bundle

        return load_legacy_bundle(directory)
    raise FileNotFoundError(
        f"{directory}: no bundle found (neither {DATASET_MANIFEST} nor "
        f"{LEGACY_MANIFEST} is present)"
    )
