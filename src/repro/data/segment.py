"""Columnar segment files: the on-disk unit of the ``repro.data`` plane.

A *segment* holds one horizontal slice of one table as struct-of-arrays
columns in a single file::

    +----------------------------------------------------------------+
    | b"RSEG" | version u16 | flags u16 | header-length u64  (16 B)  |
    +----------------------------------------------------------------+
    | header JSON (UTF-8): table, rows, byteorder, column specs,     |
    | zone map (per-column min/max), free-form meta                  |
    +----------------------------------------------------------------+
    | payload: column blobs, each 8-byte aligned                     |
    |   i64 column  -> array('q') bytes                              |
    |   str column  -> i64 offsets[rows+1] + UTF-8 data blob         |
    |   json column -> same layout, values as compact JSON           |
    +----------------------------------------------------------------+

Readers ``mmap`` the file and hand out lazy column views: an ``i64``
column is a ``memoryview.cast("q")`` over the mapped bytes (zero copy —
forked shard workers share the parent's page cache), and string/JSON
columns decode individual values on access via the offsets array.
Nothing is materialized until a cell is touched.

The preamble integers are always little-endian; the *payload* integer
byte order is whatever ``array('q')`` wrote and is recorded in the
header, so a segment written on a big-endian host still reads correctly
(via an eager byteswapped copy) anywhere.

Corruption surfaces as :class:`SegmentFormatError`, a ``ValueError``
subclass — the same exception family the CLI already maps to exit
code 2 for malformed bundles; missing files raise ``OSError`` as usual.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import sys
from array import array
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

MAGIC = b"RSEG"
VERSION = 1

_PREAMBLE = struct.Struct("<4sHHQ")  # magic, version, flags, header length
_ALIGN = 8
_I64 = struct.Struct("<q")  # only for the byteorder probe below

#: Values an i64 column can hold (serials are validated at write time).
I64_MIN = -(1 << 63)
I64_MAX = (1 << 63) - 1


class SegmentFormatError(ValueError):
    """A segment file is truncated, has a bad magic, or lies about itself."""


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


# ---------------------------------------------------------------------------
# writer
# ---------------------------------------------------------------------------


class SegmentWriter:
    """Accumulates equal-length columns, then emits one segment file.

    Zone maps (min/max per column) are computed automatically for ``i64``
    and ``str`` columns; readers prune whole segments against them
    without touching the payload.
    """

    def __init__(self, table: str, meta: Optional[Dict[str, Any]] = None) -> None:
        self._table = table
        self._meta = dict(meta or {})
        self._rows: Optional[int] = None
        self._columns: List[Dict[str, Any]] = []
        self._zonemap: Dict[str, Dict[str, Any]] = {}

    @property
    def rows(self) -> int:
        return self._rows or 0

    def _accept(self, name: str, count: int) -> None:
        if any(column["name"] == name for column in self._columns):
            raise ValueError(f"duplicate column {name!r} in table {self._table!r}")
        if self._rows is None:
            self._rows = count
        elif count != self._rows:
            raise ValueError(
                f"column {name!r} has {count} rows; table {self._table!r} "
                f"already has {self._rows}"
            )

    def add_i64(self, name: str, values: Sequence[int]) -> None:
        values = list(values)
        self._accept(name, len(values))
        for value in values:
            if not (I64_MIN <= value <= I64_MAX):
                raise ValueError(
                    f"column {name!r}: value {value} does not fit in int64"
                )
        if values:
            self._zonemap[name] = {"min": min(values), "max": max(values)}
        self._columns.append(
            {"name": name, "kind": "i64", "blobs": [array("q", values).tobytes()]}
        )

    def _add_offsets_blob(self, name: str, kind: str, encoded: List[bytes]) -> None:
        offsets = array("q", [0] * (len(encoded) + 1))
        position = 0
        for index, blob in enumerate(encoded):
            position += len(blob)
            offsets[index + 1] = position
        self._columns.append(
            {
                "name": name,
                "kind": kind,
                "blobs": [offsets.tobytes(), b"".join(encoded)],
            }
        )

    def add_str(self, name: str, values: Sequence[str]) -> None:
        values = list(values)
        self._accept(name, len(values))
        if values:
            self._zonemap[name] = {"min": min(values), "max": max(values)}
        self._add_offsets_blob(
            name, "str", [value.encode("utf-8") for value in values]
        )

    def add_json(self, name: str, values: Sequence[Any]) -> None:
        values = list(values)
        self._accept(name, len(values))
        self._add_offsets_blob(
            name,
            "json",
            [
                json.dumps(value, sort_keys=True, separators=(",", ":")).encode(
                    "utf-8"
                )
                for value in values
            ],
        )

    def to_bytes(self) -> bytes:
        specs: List[Dict[str, Any]] = []
        payload_parts: List[bytes] = []
        position = 0
        for column in self._columns:
            spec: Dict[str, Any] = {"name": column["name"], "kind": column["kind"]}
            extents = []
            for blob in column["blobs"]:
                aligned = _align(position)
                if aligned != position:
                    payload_parts.append(b"\x00" * (aligned - position))
                    position = aligned
                extents.append([position, len(blob)])
                payload_parts.append(blob)
                position += len(blob)
            spec["extents"] = extents
            specs.append(spec)
        payload = b"".join(payload_parts)

        header = {
            "table": self._table,
            "rows": self.rows,
            "byteorder": sys.byteorder,
            "payload_bytes": len(payload),
            "columns": specs,
            "zonemap": self._zonemap,
            "meta": self._meta,
        }
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        preamble = _PREAMBLE.pack(MAGIC, VERSION, 0, len(header_bytes))
        body = preamble + header_bytes
        padding = b"\x00" * (_align(len(body)) - len(body))
        return body + padding + payload

    def write(self, path: str) -> int:
        """Atomically write the segment; returns its row count."""
        payload = self.to_bytes()
        tmp_path = path + ".tmp"
        with open(tmp_path, "wb") as handle:
            handle.write(payload)
        os.replace(tmp_path, path)
        return self.rows


# ---------------------------------------------------------------------------
# columns (lazy views)
# ---------------------------------------------------------------------------


class IntColumn(Sequence):
    """An int64 column — zero-copy ``memoryview.cast('q')`` when the file
    byte order matches the host, an eager byteswapped copy otherwise."""

    def __init__(self, data: Union[memoryview, array]) -> None:
        self._data = data

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, index):
        return self._data[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self._data)

    def to_list(self) -> List[int]:
        return list(self._data)


class StrColumn(Sequence):
    """A string column: values decode lazily from the shared data blob."""

    def __init__(self, offsets, data: memoryview) -> None:
        self._offsets = offsets
        self._data = data

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def _cell_bytes(self, index: int) -> bytes:
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        return bytes(self._data[self._offsets[index] : self._offsets[index + 1]])

    def cell_bytes(self, index: int) -> bytes:
        """The raw encoded cell — lets callers intern repeated values
        (hash the bytes, decode once) instead of re-decoding per row."""
        return self._cell_bytes(index)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        return self._cell_bytes(index).decode("utf-8")

    def __iter__(self) -> Iterator[str]:
        for index in range(len(self)):
            yield self[index]


class JsonColumn(StrColumn):
    """Like :class:`StrColumn`, but each value parses as JSON on access."""

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        return json.loads(self._cell_bytes(index).decode("utf-8"))


# ---------------------------------------------------------------------------
# reader
# ---------------------------------------------------------------------------


class Segment:
    """One mapped (or in-memory) segment with lazy column access.

    ``close()`` releases every derived ``memoryview`` before unmapping, so
    segments opened in a parent process shut down cleanly even after fork
    workers touched the same mapping in their own address spaces.
    """

    def __init__(
        self,
        buffer: Union[bytes, bytearray, mmap.mmap],
        source: str = "<memory>",
        mapped: Optional[mmap.mmap] = None,
    ) -> None:
        self._mm = mapped
        self._source = source
        self._view: Optional[memoryview] = memoryview(buffer)
        self._derived: List[memoryview] = []
        self._cache: Dict[str, Sequence] = {}
        try:
            self._parse()
        except Exception:
            self.close()
            raise

    # -- construction --------------------------------------------------------

    @classmethod
    def open(cls, path: str) -> "Segment":
        """Map a segment file read-only (OSError when *path* is missing)."""
        with open(path, "rb") as handle:
            try:
                mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            except ValueError as error:  # zero-byte file cannot be mapped
                raise SegmentFormatError(
                    f"{path}: not a columnar segment ({error})"
                ) from error
        return cls(mapped, source=path, mapped=mapped)

    @classmethod
    def from_bytes(cls, payload: bytes, source: str = "<memory>") -> "Segment":
        return cls(payload, source=source)

    def _parse(self) -> None:
        data = self._view
        assert data is not None
        if len(data) < _PREAMBLE.size:
            raise SegmentFormatError(
                f"{self._source}: truncated segment preamble "
                f"({len(data)} < {_PREAMBLE.size} bytes)"
            )
        magic, version, _flags, header_length = _PREAMBLE.unpack_from(data, 0)
        if magic != MAGIC:
            raise SegmentFormatError(
                f"{self._source}: bad segment magic {bytes(magic)!r}"
            )
        if version != VERSION:
            raise SegmentFormatError(
                f"{self._source}: unsupported segment version {version} "
                f"(this reader understands {VERSION})"
            )
        header_end = _PREAMBLE.size + header_length
        if len(data) < header_end:
            raise SegmentFormatError(f"{self._source}: truncated segment header")
        try:
            header = json.loads(bytes(data[_PREAMBLE.size : header_end]))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise SegmentFormatError(
                f"{self._source}: corrupt segment header: {error}"
            ) from error
        try:
            self.table: str = header["table"]
            self.rows: int = header["rows"]
            self.byteorder: str = header["byteorder"]
            payload_bytes: int = header["payload_bytes"]
            specs = {spec["name"]: spec for spec in header["columns"]}
            self.zonemap: Dict[str, Dict[str, Any]] = header.get("zonemap", {})
            self.meta: Dict[str, Any] = header.get("meta", {})
        except (KeyError, TypeError) as error:
            raise SegmentFormatError(
                f"{self._source}: segment header missing field: {error}"
            ) from error
        payload_start = _align(header_end)
        if len(data) < payload_start + payload_bytes:
            raise SegmentFormatError(
                f"{self._source}: truncated segment payload "
                f"({len(data) - payload_start} < {payload_bytes} bytes)"
            )
        payload = data[payload_start : payload_start + payload_bytes]
        self._derived.append(payload)
        self._payload = payload
        self._specs = specs

    # -- access --------------------------------------------------------------

    def column_names(self) -> List[str]:
        return list(self._specs)

    def column(self, name: str) -> Sequence:
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        spec = self._specs.get(name)
        if spec is None:
            raise KeyError(
                f"{self._source}: table {self.table!r} has no column {name!r}"
            )
        built = self._materialize(spec)
        self._cache[name] = built
        return built

    def _i64_view(self, offset: int, length: int):
        raw = self._payload[offset : offset + length]
        if self.byteorder == sys.byteorder:
            view = raw.cast("q")
            self._derived.append(raw)
            self._derived.append(view)
            return view
        swapped = array("q")
        swapped.frombytes(bytes(raw))
        raw.release()
        swapped.byteswap()
        return swapped

    def _materialize(self, spec: Dict[str, Any]) -> Sequence:
        kind = spec["kind"]
        extents = spec["extents"]
        if kind == "i64":
            (offset, length), = extents
            return IntColumn(self._i64_view(offset, length))
        if kind in ("str", "json"):
            (off_offset, off_length), (data_offset, data_length) = extents
            offsets = self._i64_view(off_offset, off_length)
            data = self._payload[data_offset : data_offset + data_length]
            self._derived.append(data)
            column_class = StrColumn if kind == "str" else JsonColumn
            return column_class(offsets, data)
        raise SegmentFormatError(
            f"{self._source}: unknown column kind {kind!r} for {spec['name']!r}"
        )

    def __len__(self) -> int:
        return self.rows

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release every view, then unmap. Safe to call more than once."""
        self._cache.clear()
        for view in reversed(self._derived):
            view.release()
        self._derived.clear()
        if self._view is not None:
            self._view.release()
            self._view = None
        if self._mm is not None:
            self._mm.close()
            self._mm = None

    def __enter__(self) -> "Segment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
