"""Bundle layout conversion (legacy JSONL ↔ columnar segments).

Backs ``python -m repro bundle convert SRC DST [--check]``. Conversion is
load → rewrite; the ``--check`` path re-opens both directories and
compares every reconstructed object field-for-field, so a reported clean
conversion really is byte-identical to the detectors.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.data.dataset import (
    DEFAULT_ROWS_PER_SEGMENT,
    detect_layout,
    open_bundle,
    write_dataset,
)
from repro.data.legacy import save_legacy_bundle


def convert(
    source: str,
    destination: str,
    layout: str = "columnar",
    rows_per_segment: int = DEFAULT_ROWS_PER_SEGMENT,
) -> Dict[str, int]:
    """Rewrite the bundle at *source* into *layout* at *destination*.

    Returns per-table (or per-file) record counts. Raises ``OSError`` for
    a missing source, ``ValueError`` for a corrupt one or an unknown
    target layout — the CLI's exit-2 family.
    """
    bundle = open_bundle(source)
    if layout == "columnar":
        return write_dataset(bundle, destination, rows_per_segment=rows_per_segment)
    if layout == "legacy":
        return save_legacy_bundle(bundle, destination)
    raise ValueError(f"unknown bundle layout {layout!r}")


def check_equivalent(left_dir: str, right_dir: str) -> List[str]:
    """Compare two bundle directories object-for-object.

    Returns a list of human-readable mismatch descriptions — empty means
    the bundles are equivalent in everything the engines consume.
    """
    left = open_bundle(left_dir)
    right = open_bundle(right_dir)
    problems: List[str] = []

    left_certs = list(left.corpus.certificates())
    right_certs = list(right.corpus.certificates())
    if len(left_certs) != len(right_certs):
        problems.append(
            f"corpus size differs: {len(left_certs)} vs {len(right_certs)}"
        )
    for position, (ours, theirs) in enumerate(zip(left_certs, right_certs)):
        if ours != theirs:
            problems.append(f"certificate {position} differs")
            break

    left_crls = left.crls
    right_crls = right.crls
    if len(left_crls) != len(right_crls):
        problems.append(f"CRL count differs: {len(left_crls)} vs {len(right_crls)}")
    for ours, theirs in zip(left_crls, right_crls):
        if (
            ours.issuer_name != theirs.issuer_name
            or ours.authority_key_id != theirs.authority_key_id
            or ours.this_update != theirs.this_update
            or ours.next_update != theirs.next_update
            or ours.entries != theirs.entries
        ):
            problems.append(
                f"CRL ({ours.issuer_name!r}, {ours.authority_key_id!r}) differs"
            )
            break

    if left.whois_creation_pairs != right.whois_creation_pairs:
        problems.append("WHOIS creation pairs differ")

    problems.extend(_compare_snapshots(left.dns_snapshots, right.dns_snapshots))

    if left.windows != right.windows:
        problems.append("observation windows differ")
    return problems


def _compare_snapshots(left_store, right_store) -> List[str]:
    if left_store is None and right_store is None:
        return []
    if (left_store is None) != (right_store is None):
        return ["one bundle has DNS snapshots, the other does not"]
    if left_store.days() != right_store.days():
        return ["DNS snapshot days differ"]
    for scan_day in left_store.days():
        left_snapshot = left_store.get(scan_day)
        right_snapshot = right_store.get(scan_day)
        if left_snapshot.apexes() != right_snapshot.apexes():
            return [f"DNS apex set differs on day {scan_day}"]
        for apex in sorted(left_snapshot.apexes()):
            if left_snapshot.get(apex).rdatas != right_snapshot.get(apex).rdatas:
                return [f"DNS records differ for {apex!r} on day {scan_day}"]
    return []
