"""Lazy bundle views over a columnar :class:`~repro.data.dataset.Dataset`.

:class:`ColumnarBundle` duck-types :class:`~repro.core.pipeline.DatasetBundle`
— same five attributes, same value semantics — but materializes nothing
until an engine touches it. The corpus stand-in answers the detectors'
three hot joins straight from the segment indexes:

* ``by_revocation_key().get((akid, serial))`` → binary search on the
  sorted ``revkey`` index, hydrating only the matched row (the legacy
  path builds a dict over every certificate first);
* ``certificates_for_e2ld(domain)`` → the sorted ``e2ld`` index, rows
  ascending = corpus order, so finding order is byte-identical;
* ``managed_certificates()`` → the precomputed ``managed`` row list.

Equality with the legacy loader is positional: columnar segments are
written from the same save-order transformations the JSONL files use
(corpus iteration order, first-wins revocation dedup, day-then-apex DNS
rows), so every reconstructed object — synthetic CRLs included — comes
back in the same order with the same values.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.dns.snapshots import DailySnapshot, DomainObservation, SnapshotStore
from repro.pki.certificate import Certificate
from repro.revocation.crl import CertificateRevocationList, CrlEntry
from repro.util.dates import Day


class RevocationKeyView:
    """Mapping-like view of the (authority_key_id, serial) → certificate
    join, backed by the sorted ``revkey`` index.

    ``get`` returns the *last* matching row — a real corpus builds this
    index as a dict comprehension where later certificates overwrite
    earlier ones, and byte-identical findings require the same winner.
    """

    def __init__(self, certs) -> None:
        self._certs = certs

    def get(self, key: Tuple[str, int], default=None):
        rows = self._certs.rows_for_revocation_key(key)
        if not rows:
            return default
        return self._certs.certificate(rows[-1])

    def __getitem__(self, key: Tuple[str, int]):
        certificate = self.get(key)
        if certificate is None:
            raise KeyError(key)
        return certificate

    def __contains__(self, key: Tuple[str, int]) -> bool:
        return bool(self._certs.rows_for_revocation_key(key))


class ColumnarCorpus:
    """Duck-typed :class:`~repro.ct.dedup.CertificateCorpus` over segments.

    Iteration order is corpus insertion order (rows were written from
    ``corpus.certificates()``), and every query hydrates only the rows it
    returns. The extra ``certificates_for_e2ld`` / ``managed_certificates``
    methods are the detector fast paths; callers feature-test them with
    ``getattr`` and fall back to full-scan indexing on plain corpora.
    """

    def __init__(self, certs) -> None:
        self._certs = certs

    def certificates(self) -> Iterator[Certificate]:
        return (self._certs.certificate(row) for row in range(len(self._certs)))

    def __len__(self) -> int:
        return len(self._certs)

    def by_revocation_key(self) -> RevocationKeyView:
        return RevocationKeyView(self._certs)

    def certificates_for_e2ld(self, registrable: str) -> List[Certificate]:
        """Certificates with *registrable* among their e2LDs, corpus order."""
        return [
            self._certs.certificate(row)
            for row in self._certs.rows_for_e2ld(registrable)
        ]

    def managed_certificates(self) -> List[Certificate]:
        """CDN-managed certificates (marker-SAN predicate), corpus order."""
        return [
            self._certs.certificate(row) for row in self._certs.managed_rows()
        ]

    def covering_domain(self, fqdn: str) -> List[Certificate]:
        return [
            certificate
            for certificate in self.certificates()
            if certificate.covers_name(fqdn)
        ]

    def with_san_suffix(self, suffix: str) -> List[Certificate]:
        needle = "." + suffix.lower().strip(".")
        return [
            certificate
            for certificate in self.certificates()
            if any(
                san == needle[1:] or san.endswith(needle)
                for san in certificate.san_dns_names
            )
        ]

    # -- columnar-only hooks -------------------------------------------------

    def shard_plan_columns(self):
        """(authority_key_id, e2lds) columns for index-only shard planning."""
        return (
            self._certs.column("authority_key_id"),
            self._certs.column("e2lds"),
        )

    def certificate_rows(self, rows: Sequence[int]) -> "LazyCertificateRows":
        return LazyCertificateRows(self._certs, list(rows))


class LazyCertificateRows(Sequence):
    """A certificate list that hydrates per element — shard partitions hold
    these instead of materialized :class:`Certificate` lists.

    Pickling (the spawn-start executor path) degrades to a plain list, so
    workers that cannot inherit the parent's mappings still run; forked
    workers share the parent's mapped pages copy-on-write.
    """

    def __init__(self, certs, rows: List[int]) -> None:
        self._certs = certs
        self._rows = rows

    def __len__(self) -> int:
        return len(self._rows)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._certs.certificate(row) for row in self._rows[index]]
        return self._certs.certificate(self._rows[index])

    def __iter__(self) -> Iterator[Certificate]:
        return (self._certs.certificate(row) for row in self._rows)

    def __reduce__(self):
        return (list, (list(self),))

    def as_shard_corpus(self) -> "ColumnarShardCorpus":
        return ColumnarShardCorpus(self._certs, self._rows)


class ColumnarShardCorpus:
    """Per-shard corpus stand-in that answers joins from the *global*
    indexes — sound because shard routing is join-closed: every
    certificate sharing an authority key id (revocation axis) or an e2LD
    component (domain axis) with this shard's rows lives in this shard,
    so a global lookup from a shard-local key returns shard-local rows.
    """

    def __init__(self, certs, rows: List[int]) -> None:
        self._certs = certs
        self._rows = rows
        self._rowset: Set[int] = set(rows)

    def certificates(self) -> Iterator[Certificate]:
        return (self._certs.certificate(row) for row in self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def by_revocation_key(self) -> RevocationKeyView:
        return RevocationKeyView(self._certs)

    def certificates_for_e2ld(self, registrable: str) -> List[Certificate]:
        return [
            self._certs.certificate(row)
            for row in self._certs.rows_for_e2ld(registrable)
        ]

    def managed_certificates(self) -> List[Certificate]:
        return [
            self._certs.certificate(row)
            for row in self._certs.managed_rows()
            if row in self._rowset
        ]


class LazySnapshotStore(SnapshotStore):
    """A :class:`SnapshotStore` that materializes one day's snapshot on
    first access from the dns table's contiguous (day, apex) rows.

    Observations are interned on their raw (apex, record-bytes) cell:
    unchanged domains repeat identical record JSON across scan days, so
    each distinct observation decodes once and every later day shares the
    object — the same sharing the world simulator's snapshot builder uses.
    """

    def __init__(self, dns) -> None:
        super().__init__()
        self._dns = dns
        self._intern: Dict[Tuple[str, bytes], DomainObservation] = {}
        self._ranges: Dict[Day, Tuple[int, int]] = {}
        days = dns.column("day")
        for row in range(dns.rows):
            scan_day = days[row]
            if scan_day not in self._ranges:
                self._ranges[scan_day] = (row, row + 1)
            else:
                first, _ = self._ranges[scan_day]
                self._ranges[scan_day] = (first, row + 1)

    def days(self) -> List[Day]:
        return sorted(set(self._ranges) | set(self._by_day))

    def __len__(self) -> int:
        return len(set(self._ranges) | set(self._by_day))

    def get(self, scan_day: Day) -> Optional[DailySnapshot]:
        snapshot = self._by_day.get(scan_day)
        if snapshot is None and scan_day in self._ranges:
            snapshot = self._materialize(scan_day)
            self._by_day[scan_day] = snapshot
        return snapshot

    def _materialize(self, scan_day: Day) -> DailySnapshot:
        first, last = self._ranges[scan_day]
        apexes = self._dns.column("apex")
        records = self._dns.column("records")
        snapshot = DailySnapshot(scan_day)
        for row in range(first, last):
            apex = apexes[row]
            raw = records.cell_bytes(row)
            observation = self._intern.get((apex, raw))
            if observation is None:
                observation = DomainObservation(
                    apex,
                    {
                        rtype_value: frozenset(values)
                        for rtype_value, values in json.loads(raw).items()
                    },
                )
                self._intern[(apex, raw)] = observation
            snapshot._observations[apex] = observation
        return snapshot

    def consecutive_pairs(self):
        for scan_day in self.days():
            self.get(scan_day)  # materialize into _by_day for the base walk
        return super().consecutive_pairs()


class ColumnarBundle:
    """Duck-typed :class:`~repro.core.pipeline.DatasetBundle` whose five
    attributes build lazily from a :class:`~repro.data.dataset.Dataset`."""

    def __init__(self, dataset) -> None:
        self._dataset = dataset
        self._corpus: Optional[ColumnarCorpus] = None
        self._crls: Optional[List[CertificateRevocationList]] = None
        self._whois: Optional[List[Tuple[str, Day]]] = None
        self._dns: Optional[SnapshotStore] = None
        self._dns_built = False

    @property
    def dataset(self):
        return self._dataset

    @property
    def windows(self):
        return self._dataset.windows

    @property
    def corpus(self) -> ColumnarCorpus:
        if self._corpus is None:
            self._corpus = ColumnarCorpus(self._dataset.certs)
        return self._corpus

    @property
    def crls(self) -> List[CertificateRevocationList]:
        """Synthetic per-(issuer, akid) CRLs, reconstructed exactly as the
        legacy JSONL loader does: groups sorted by key, entries in stored
        (first-wins deduplicated) order, series stamped with the last
        revocation day seen."""
        if self._crls is None:
            table = self._dataset.revocations
            by_issuer: Dict[Tuple[str, str], List[CrlEntry]] = {}
            last_day: Optional[Day] = None
            for row, issuer_name, akid in table.issuer_rows():
                entry = table.entry(row)
                by_issuer.setdefault((issuer_name, akid), []).append(entry)
                if last_day is None or entry.revocation_day > last_day:
                    last_day = entry.revocation_day
            crls: List[CertificateRevocationList] = []
            for (issuer_name, akid), entries in sorted(by_issuer.items()):
                crl = CertificateRevocationList(
                    issuer_name=issuer_name,
                    authority_key_id=akid,
                    this_update=last_day if last_day is not None else 0,
                    next_update=(last_day if last_day is not None else 0) + 7,
                    crl_number=1,
                )
                crl.entries.extend(entries)
                crls.append(crl)
            self._crls = crls
        return self._crls

    @property
    def whois_creation_pairs(self) -> List[Tuple[str, Day]]:
        if self._whois is None:
            self._whois = self._dataset.whois.pairs()
        return self._whois

    @property
    def dns_snapshots(self) -> Optional[SnapshotStore]:
        if not self._dns_built:
            table = self._dataset.dns
            self._dns = LazySnapshotStore(table) if table.rows else None
            self._dns_built = True
        return self._dns

    def close(self) -> None:
        self._dataset.close()

    def __enter__(self) -> "ColumnarBundle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
