"""Table 5: domain reputation of stale-certificate domains.

Reproduces Section 5.2's VirusTotal analysis: randomly sample domains with
stale certificates from registrant change, query the reputation store with
the ≥5-vendor threshold, correlate malicious activity with the stale period,
extract malware families AVClass2-style, and tally the category breakdown
plus the MW-only / MW+URL / URL-only overlap counts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.stale import StalenessClass, StaleFindings
from repro.reputation.avclass import extract_family
from repro.reputation.virustotal import VirusTotalStore
from repro.util.rng import RngStream


@dataclass
class ReputationAnalysis:
    """Everything Table 5 reports."""

    sampled_domains: int
    detected_domains: int
    malware_categories: Counter = field(default_factory=Counter)
    url_categories: Counter = field(default_factory=Counter)
    families: Counter = field(default_factory=Counter)
    mw_only: int = 0
    mw_and_url: int = 0
    url_only: int = 0
    temporally_coincident: int = 0

    @property
    def detected_fraction(self) -> float:
        return self.detected_domains / self.sampled_domains if self.sampled_domains else 0.0


def build_table5(
    findings: StaleFindings,
    store: VirusTotalStore,
    sample_size: int = 100_000,
    seed: int = 5,
    require_temporal_overlap: bool = True,
) -> ReputationAnalysis:
    """Run the reputation pipeline over registrant-change findings.

    ``require_temporal_overlap``: keep only domains whose first malicious
    evidence falls within (or before the end of) a stale-certificate window,
    the paper's "temporally coincides with stale certificate control".
    """
    stale_windows: Dict[str, List[Tuple[int, int]]] = {}
    for finding in findings.of_class(StalenessClass.REGISTRANT_CHANGE):
        domain = finding.affected_domain
        if domain is None:
            continue
        stale_windows.setdefault(domain, []).append(
            (finding.stale_from, finding.stale_until)
        )
    domains = sorted(stale_windows)
    rng = RngStream(seed, "table5-sample")
    if len(domains) > sample_size:
        domains = rng.sample(domains, sample_size)

    analysis = ReputationAnalysis(sampled_domains=len(domains), detected_domains=0)
    for domain in domains:
        detected_files = store.detected_files(domain)
        url_cats = store.flagged_url_categories(domain)
        if not detected_files and not url_cats:
            continue
        if require_temporal_overlap:
            first_bad = store.first_malicious_day(domain)
            if first_bad is None:
                continue
            windows = stale_windows[domain]
            # Malicious activity by the prior owner coincides with third-
            # party key control when it starts before a stale window closes.
            if not any(first_bad <= until for _from, until in windows):
                continue
            analysis.temporally_coincident += 1
        analysis.detected_domains += 1
        has_mw = bool(detected_files)
        has_url = bool(url_cats)
        if has_mw and has_url:
            analysis.mw_and_url += 1
        elif has_mw:
            analysis.mw_only += 1
        else:
            analysis.url_only += 1
        for report in detected_files:
            analysis.malware_categories[report.category] += 1
            family = extract_family(report.vendor_labels)
            if family:
                analysis.families[family] += 1
        for category in url_cats:
            analysis.url_categories[category] += 1
    return analysis
