"""Plain-text rendering of tables and curve data.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep formatting consistent across all of them.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Monospace table with auto-sized columns."""
    materialized: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_series(
    points: Sequence[Tuple[object, float]],
    label: str = "",
    width: int = 40,
) -> str:
    """A labelled value series with proportional bars (log-free)."""
    if not points:
        return f"{label}: (empty)"
    peak = max(value for _, value in points) or 1.0
    lines = [label] if label else []
    for key, value in points:
        bar = "#" * max(0, int(width * value / peak))
        lines.append(f"{str(key):>12}  {value:>12.2f}  {bar}")
    return "\n".join(lines)


def render_cdf(
    curve: Sequence[Tuple[float, float]],
    label: str = "",
    points: int = 12,
) -> str:
    """Downsampled (x, F(x)) listing of a CDF curve."""
    if not curve:
        return f"{label}: (empty)"
    step = max(1, len(curve) // points)
    sampled = list(curve[::step])
    if sampled[-1] != curve[-1]:
        sampled.append(curve[-1])
    lines = [label] if label else []
    for x, fx in sampled:
        lines.append(f"  x={x:9.1f}  F(x)={fx:6.3f}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:,.2f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)
