"""ASCII chart rendering for figure reports.

The paper's Figure 4 is a log-scale monthly series and Figures 6-8 are
curves; these helpers render both as terminal-friendly charts so the bench
reports convey shape, not just numbers.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


def log_bar_chart(
    series: Sequence[Tuple[str, float]],
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal bars with a log10 x-scale (zero-safe).

    Bar length is proportional to ``log10(1 + value)`` so a 100x spike is
    visible without flattening the baseline — matching the paper's log axes.
    """
    if not series:
        return f"{title}: (empty)" if title else "(empty)"
    peak = max(value for _, value in series)
    log_peak = math.log10(1 + max(peak, 0)) or 1.0
    label_width = max(len(str(label)) for label, _ in series)
    lines: List[str] = [title] if title else []
    for label, value in series:
        bar_length = int(round(width * math.log10(1 + max(value, 0)) / log_peak))
        lines.append(
            f"{str(label):>{label_width}} |{'#' * bar_length:<{width}}| {value:,.0f}"
        )
    return "\n".join(lines)


def stacked_monthly_chart(
    months: Sequence[str],
    by_key: Mapping[str, Mapping[str, int]],
    symbols: Optional[Mapping[str, str]] = None,
    width: int = 50,
    title: str = "",
) -> str:
    """Log-scale monthly bars with per-key symbols (Figure 4 style).

    ``by_key``: month -> key -> count. Each key gets one symbol character;
    segments are sized proportionally within the month's log-scaled bar.
    """
    keys = sorted({key for counts in by_key.values() for key in counts})
    if symbols is None:
        palette = "#*+o@%=~^"
        symbols = {key: palette[i % len(palette)] for i, key in enumerate(keys)}
    totals = {month: sum(by_key.get(month, {}).values()) for month in months}
    peak = max(totals.values(), default=0)
    log_peak = math.log10(1 + peak) or 1.0
    lines: List[str] = [title] if title else []
    for key in keys:
        lines.append(f"  {symbols[key]} = {key}")
    for month in months:
        counts = by_key.get(month, {})
        total = totals.get(month, 0)
        bar_length = int(round(width * math.log10(1 + total) / log_peak)) if total else 0
        bar = ""
        if total:
            for key in keys:
                share = counts.get(key, 0) / total
                bar += symbols[key] * int(round(bar_length * share))
            bar = bar[:bar_length].ljust(bar_length, symbols[keys[0]]) if bar else ""
        lines.append(f"{month} |{bar:<{width}}| {total:,}")
    return "\n".join(lines)


def line_plot(
    curve: Sequence[Tuple[float, float]],
    height: int = 12,
    width: int = 60,
    title: str = "",
    y_label: str = "",
) -> str:
    """A dot-matrix plot of an (x, y) curve (CDF / survival shapes)."""
    if not curve:
        return f"{title}: (empty)" if title else "(empty)"
    xs = [x for x, _ in curve]
    ys = [y for _, y in curve]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in curve:
        col = min(width - 1, int((x - x_lo) / x_span * (width - 1)))
        row = min(height - 1, int((y - y_lo) / y_span * (height - 1)))
        grid[height - 1 - row][col] = "*"
    lines: List[str] = [title] if title else []
    for i, row in enumerate(grid):
        edge_value = y_hi - i * y_span / (height - 1) if height > 1 else y_hi
        prefix = f"{edge_value:6.2f} |" if i in (0, height - 1) else "       |"
        lines.append(prefix + "".join(row))
    lines.append("       +" + "-" * width)
    lines.append(f"        {x_lo:<10.0f}{y_label:^{max(0, width - 20)}}{x_hi:>10.0f}")
    return "\n".join(lines)
