"""Figure builders: the data series behind Figures 4–9.

Each function returns plain data (dicts / lists of tuples) so benches can
both assert on shape and print the series.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.lifetime import (
    STUDIED_CAPS,
    CapResult,
    LifetimePolicySimulator,
)
from repro.core.stale import StalenessClass, StaleFindings
from repro.util.dates import month_key, year_of
from repro.util.stats import Ecdf, SurvivalCurve

_THIRD_PARTY_CLASSES = (
    StalenessClass.KEY_COMPROMISE,
    StalenessClass.REGISTRANT_CHANGE,
    StalenessClass.MANAGED_TLS_DEPARTURE,
)


# -- Figure 4: monthly key-compromise revocations by CA ------------------------


def build_fig4(findings: StaleFindings) -> Dict[str, Dict[str, int]]:
    """month ('YYYY-MM') -> issuer -> key-compromise revocation count."""
    series: Dict[str, Dict[str, int]] = defaultdict(dict)
    for finding in findings.of_class(StalenessClass.KEY_COMPROMISE):
        month = month_key(finding.invalidation_day)
        issuer = finding.certificate.issuer_name
        series[month][issuer] = series[month].get(issuer, 0) + 1
    return dict(series)


# -- Figure 5a: monthly new stale certs / e2LDs from registrant change ---------


def build_fig5a(findings: StaleFindings) -> List[Tuple[str, int, int]]:
    """[(month, new stale certificates, new stale e2LDs)], month-ascending.

    An e2LD counts in the month its *first* stale certificate appeared
    ("new monthly" in the figure's caption).
    """
    certs_by_month: Dict[str, int] = defaultdict(int)
    first_month_of_e2ld: Dict[str, str] = {}
    for finding in findings.of_class(StalenessClass.REGISTRANT_CHANGE):
        month = month_key(finding.invalidation_day)
        certs_by_month[month] += 1
        for e2ld in finding.affected_e2lds():
            if e2ld not in first_month_of_e2ld or month < first_month_of_e2ld[e2ld]:
                first_month_of_e2ld[e2ld] = month
    e2lds_by_month: Dict[str, int] = defaultdict(int)
    for month in first_month_of_e2ld.values():
        e2lds_by_month[month] += 1
    months = sorted(set(certs_by_month) | set(e2lds_by_month))
    return [(m, certs_by_month.get(m, 0), e2lds_by_month.get(m, 0)) for m in months]


# -- Figure 5b: the 2018 spike, split by issuer ---------------------------------


def build_fig5b(
    findings: StaleFindings,
    first_month: str = "2018-01",
    last_month: str = "2019-12",
    top_issuers: int = 4,
) -> Dict[str, Dict[str, int]]:
    """month -> issuer -> stale certificates from registrant change, over
    the spike window, keeping the top issuers (others fold into 'Other')."""
    raw: Dict[str, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
    issuer_totals: Dict[str, int] = defaultdict(int)
    for finding in findings.of_class(StalenessClass.REGISTRANT_CHANGE):
        month = month_key(finding.invalidation_day)
        if not first_month <= month <= last_month:
            continue
        issuer = finding.certificate.issuer_name
        raw[month][issuer] += 1
        issuer_totals[issuer] += 1
    keep = {
        issuer
        for issuer, _ in sorted(issuer_totals.items(), key=lambda kv: -kv[1])[:top_issuers]
    }
    folded: Dict[str, Dict[str, int]] = {}
    for month, by_issuer in raw.items():
        row: Dict[str, int] = {}
        for issuer, count in by_issuer.items():
            label = issuer if issuer in keep else "Other"
            row[label] = row.get(label, 0) + count
        folded[month] = row
    return folded


# -- Figure 6: staleness-period CDFs per third-party class ----------------------


@dataclass(frozen=True)
class CdfSeries:
    staleness_class: StalenessClass
    curve: List[Tuple[float, float]]
    median_days: float
    proportion_over_90: float


def build_fig6(findings: StaleFindings) -> List[CdfSeries]:
    series: List[CdfSeries] = []
    for cls in _THIRD_PARTY_CLASSES:
        items = findings.of_class(cls)
        if not items:
            continue
        ecdf = Ecdf(f.staleness_days for f in items)
        series.append(
            CdfSeries(
                staleness_class=cls,
                curve=ecdf.curve(points=120),
                median_days=ecdf.median_value,
                proportion_over_90=ecdf.proportion_above(90),
            )
        )
    return series


# -- Figure 7: registrant-change staleness by change year -----------------------


def build_fig7(
    findings: StaleFindings, years: Sequence[int] = range(2016, 2022)
) -> Dict[int, CdfSeries]:
    """year of registrant change -> staleness CDF for that cohort."""
    by_year: Dict[int, List[int]] = defaultdict(list)
    for finding in findings.of_class(StalenessClass.REGISTRANT_CHANGE):
        year = year_of(finding.invalidation_day)
        if year in years:
            by_year[year].append(finding.staleness_days)
    result: Dict[int, CdfSeries] = {}
    for year, samples in sorted(by_year.items()):
        ecdf = Ecdf(samples)
        result[year] = CdfSeries(
            staleness_class=StalenessClass.REGISTRANT_CHANGE,
            curve=ecdf.curve(points=80),
            median_days=ecdf.median_value,
            proportion_over_90=ecdf.proportion_above(90),
        )
    return result


# -- Figure 8: survival curves (days from issuance to invalidation) ------------


@dataclass(frozen=True)
class SurvivalSeries:
    staleness_class: StalenessClass
    survival_at_90: float
    survival_at_215: float
    steps: List[Tuple[float, float]]


def build_fig8(findings: StaleFindings) -> List[SurvivalSeries]:
    series: List[SurvivalSeries] = []
    for cls in _THIRD_PARTY_CLASSES:
        items = findings.of_class(cls)
        if not items:
            continue
        curve = SurvivalCurve(f.days_to_invalidation for f in items)
        series.append(
            SurvivalSeries(
                staleness_class=cls,
                survival_at_90=curve.survival_at(90),
                survival_at_215=curve.survival_at(215),
                steps=[(p.time, p.survival) for p in curve.steps()],
            )
        )
    return series


# -- Figure 9: staleness-days under hypothetical lifetime caps -----------------


def build_fig9(
    findings: StaleFindings, caps: Sequence[int] = STUDIED_CAPS
) -> Dict[StalenessClass, List[CapResult]]:
    simulator = LifetimePolicySimulator(findings)
    result: Dict[StalenessClass, List[CapResult]] = {}
    for cls in _THIRD_PARTY_CLASSES:
        if findings.of_class(cls):
            result[cls] = simulator.sweep(cls, caps)
    return result
