"""Tables 3 and 4: dataset overview and stale-certificate detection rates."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.pipeline import PipelineResult
from repro.core.stale import StalenessClass
from repro.ecosystem.simulator import WorldDatasets
from repro.util.dates import day_to_iso

#: Row labels matching Table 4 of the paper.
TABLE4_LABELS: Dict[StalenessClass, str] = {
    StalenessClass.REVOKED_ALL: "Revoked: all",
    StalenessClass.KEY_COMPROMISE: "Revoked: key compromise",
    StalenessClass.REGISTRANT_CHANGE: "Domain registrant change",
    StalenessClass.MANAGED_TLS_DEPARTURE: "Cloudflare managed TLS departure",
}


@dataclass(frozen=True)
class Table3Row:
    dataset: str
    used_for: str
    date_range: str
    size: str


def build_table3(world: WorldDatasets) -> List[Table3Row]:
    """Dataset overview, mirroring the paper's Table 3 rows."""
    timeline = world.config.timeline
    summary = world.dataset_summary()
    scan_days = summary["dns_scan_days"]
    avg_records = 0
    if scan_days:
        total = sum(
            world.dns_snapshots.get(d).record_count() for d in world.dns_snapshots.days()
        )
        avg_records = total // scan_days
    return [
        Table3Row(
            dataset="CT",
            used_for="Revocations, Managed TLS, Registrant change",
            date_range=f"{day_to_iso(timeline.ct_start)} - {day_to_iso(timeline.ct_end)}",
            size=f"{summary['ct_unique_certificates']:,} certs (deduplicated), "
            f"{summary['ct_logs']} logs",
        ),
        Table3Row(
            dataset="CRL",
            used_for="Revocations",
            date_range=f"{day_to_iso(timeline.crl_collection_start)} - "
            f"{day_to_iso(timeline.crl_collection_end)}",
            size=f"{summary['crls_collected']:,} total CRLs from "
            f"{len(world.ca_registry.all_names())} CAs",
        ),
        Table3Row(
            dataset="WHOIS",
            used_for="Registrant change",
            date_range=f"{day_to_iso(timeline.whois_start)} - {day_to_iso(timeline.whois_end)}",
            size=f"{summary['whois_creation_pairs']:,} records "
            f"({summary['registered_domains']:,} domains)",
        ),
        Table3Row(
            dataset="aDNS",
            used_for="Managed TLS",
            date_range=f"{day_to_iso(timeline.dns_scan_start)} - "
            f"{day_to_iso(timeline.dns_scan_end)}",
            size=f"~{avg_records:,} records per day, {scan_days} daily scans",
        ),
    ]


@dataclass(frozen=True)
class Table4Row:
    method: str
    date_range: str
    daily_certs: float
    total_certs: int
    daily_fqdns: float
    total_fqdns: int
    daily_e2lds: float
    total_e2lds: int


def build_table4(result: PipelineResult) -> List[Table4Row]:
    """Average daily rates and totals of new stale certificates/FQDNs/e2LDs."""
    rows: List[Table4Row] = []
    for aggregate in result.aggregate_table():
        rows.append(
            Table4Row(
                method=TABLE4_LABELS[aggregate.staleness_class],
                date_range=(
                    f"{day_to_iso(aggregate.first_day)} - {day_to_iso(aggregate.last_day)}"
                ),
                daily_certs=aggregate.daily_certificates,
                total_certs=aggregate.stale_certificates,
                daily_fqdns=aggregate.daily_fqdns,
                total_fqdns=aggregate.stale_fqdns,
                daily_e2lds=aggregate.daily_e2lds,
                total_e2lds=aggregate.stale_e2lds,
            )
        )
    return rows
