"""CT corpus statistics: growth, issuer mix, and lifetime eras.

Background analyses the paper narrates but does not tabulate: the explosive
post-Let's-Encrypt growth of issuance (§5.2), the shift of market share to
automated 90-day CAs (§2.2), and the stepwise collapse of maximum lifetimes
(825 → 398, §6). Useful both as a world-calibration check and as the kind
of overview a real CT monitor dashboard shows.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.ct.dedup import CertificateCorpus
from repro.pki.certificate import LIMIT_398_EFFECTIVE, LIMIT_825_EFFECTIVE
from repro.util.dates import year_of
from repro.util.stats import median


def yearly_issuance(corpus: CertificateCorpus) -> List[Tuple[int, int]]:
    """(year, certificates issued) pairs, year-ascending."""
    counts: Dict[int, int] = defaultdict(int)
    for certificate in corpus.certificates():
        counts[year_of(certificate.not_before)] += 1
    return sorted(counts.items())


def issuer_share_by_year(
    corpus: CertificateCorpus, top: int = 6
) -> Dict[int, Dict[str, int]]:
    """year -> issuer -> count, keeping the overall top issuers
    (everything else folds into 'Other')."""
    totals: Dict[str, int] = defaultdict(int)
    raw: Dict[int, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
    for certificate in corpus.certificates():
        year = year_of(certificate.not_before)
        raw[year][certificate.issuer_name] += 1
        totals[certificate.issuer_name] += 1
    keep = {
        issuer for issuer, _ in sorted(totals.items(), key=lambda kv: -kv[1])[:top]
    }
    folded: Dict[int, Dict[str, int]] = {}
    for year, by_issuer in raw.items():
        row: Dict[str, int] = defaultdict(int)
        for issuer, count in by_issuer.items():
            row[issuer if issuer in keep else "Other"] += count
        folded[year] = dict(row)
    return folded


@dataclass(frozen=True)
class LifetimeEraStats:
    """Lifetime distribution within one policy era."""

    era: str
    certificates: int
    median_lifetime: float
    max_lifetime: int
    share_90_day: float  # fraction with lifetime <= 90 (automated CAs)


def lifetime_by_policy_era(corpus: CertificateCorpus) -> List[LifetimeEraStats]:
    """Lifetime stats split at the 825-day and 398-day policy boundaries."""
    eras: Dict[str, List[int]] = {"pre-825 era": [], "825 era": [], "398 era": []}
    for certificate in corpus.certificates():
        if certificate.not_before >= LIMIT_398_EFFECTIVE:
            eras["398 era"].append(certificate.lifetime_days)
        elif certificate.not_before >= LIMIT_825_EFFECTIVE:
            eras["825 era"].append(certificate.lifetime_days)
        else:
            eras["pre-825 era"].append(certificate.lifetime_days)
    stats: List[LifetimeEraStats] = []
    for era in ("pre-825 era", "825 era", "398 era"):
        lifetimes = eras[era]
        if not lifetimes:
            continue
        stats.append(
            LifetimeEraStats(
                era=era,
                certificates=len(lifetimes),
                median_lifetime=median(lifetimes),
                max_lifetime=max(lifetimes),
                share_90_day=sum(1 for lt in lifetimes if lt <= 90) / len(lifetimes),
            )
        )
    return stats


def automation_share_by_year(corpus: CertificateCorpus) -> List[Tuple[int, float]]:
    """(year, fraction of issuance with <=90-day lifetimes) — the rise of
    automated issuance that makes short maximum lifetimes viable (§7.2)."""
    per_year: Dict[int, List[int]] = defaultdict(list)
    for certificate in corpus.certificates():
        per_year[year_of(certificate.not_before)].append(certificate.lifetime_days)
    return [
        (year, sum(1 for lt in lifetimes if lt <= 90) / len(lifetimes))
        for year, lifetimes in sorted(per_year.items())
    ]
