"""Table 6: popularity of domains found in stale certificates.

For each staleness class, take the e2LDs of all findings, look up each
domain's most popular (minimum) rank across the biannual 2014–2022 samples,
and count how many fall inside each Top-N bucket — cumulative buckets, as in
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from repro.core.stale import StalenessClass, StaleFindings
from repro.popularity.alexa import (
    BIANNUAL_SAMPLE_DAYS,
    RANK_BUCKETS,
    PopularityProvider,
    rank_buckets,
)

#: Class order of Table 6's columns.
TABLE6_CLASSES = (
    StalenessClass.REGISTRANT_CHANGE,
    StalenessClass.MANAGED_TLS_DEPARTURE,
    StalenessClass.KEY_COMPROMISE,
)


@dataclass(frozen=True)
class Table6Column:
    staleness_class: StalenessClass
    bucket_counts: Dict[int, int]  # Top-N -> count
    total_domains: int

    def percent_in_top_1m(self) -> float:
        if not self.total_domains:
            return 0.0
        return 100.0 * self.bucket_counts.get(1_000_000, 0) / self.total_domains


def build_table6(
    findings: StaleFindings,
    provider: PopularityProvider,
    sample_days: Sequence[int] = BIANNUAL_SAMPLE_DAYS,
    classes: Sequence[StalenessClass] = TABLE6_CLASSES,
) -> List[Table6Column]:
    """One column per staleness class."""
    columns: List[Table6Column] = []
    for cls in classes:
        e2lds: Set[str] = set()
        for finding in findings.of_class(cls):
            e2lds.update(finding.affected_e2lds())
        min_ranks = [provider.min_rank(domain, sample_days) for domain in sorted(e2lds)]
        columns.append(
            Table6Column(
                staleness_class=cls,
                bucket_counts=rank_buckets(min_ranks, RANK_BUCKETS),
                total_domains=len(e2lds),
            )
        )
    return columns
