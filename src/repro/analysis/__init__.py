"""Analysis layer: regenerates every table and figure of the paper.

Each builder consumes :class:`~repro.core.pipeline.PipelineResult` (plus the
relevant substrate outputs) and returns plain data structures; the
:mod:`repro.analysis.report` helpers render them as the text tables the
benchmark harness prints.
"""

from repro.analysis.aggregate import build_table3, build_table4
from repro.analysis.reputation_analysis import ReputationAnalysis, build_table5
from repro.analysis.popularity_analysis import build_table6
from repro.analysis.crl_coverage import build_table7
from repro.analysis.figures import (
    build_fig4,
    build_fig5a,
    build_fig5b,
    build_fig6,
    build_fig7,
    build_fig8,
    build_fig9,
)
from repro.analysis.report import render_table
from repro.analysis.summary import evaluate_claims, render_summary
from repro.analysis.corpus_stats import (
    automation_share_by_year,
    issuer_share_by_year,
    lifetime_by_policy_era,
    yearly_issuance,
)

__all__ = [
    "build_table3",
    "build_table4",
    "ReputationAnalysis",
    "build_table5",
    "build_table6",
    "build_table7",
    "build_fig4",
    "build_fig5a",
    "build_fig5b",
    "build_fig6",
    "build_fig7",
    "build_fig8",
    "build_fig9",
    "render_table",
    "evaluate_claims",
    "render_summary",
    "automation_share_by_year",
    "issuer_share_by_year",
    "lifetime_by_policy_era",
    "yearly_issuance",
]
