"""Table 7 (Appendix B): CRL download coverage per CA operator.

The fetcher accumulates per-operator attempt/success statistics across the
daily collection; this builder sorts them coverage-ascending, exactly like
the paper's appendix table (blocked CAs first, the clean majority last),
and appends the total-coverage row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.revocation.fetcher import CrlFetcher


@dataclass(frozen=True)
class Table7Row:
    ca_operator: str
    succeeded: int
    attempted: int

    @property
    def coverage(self) -> float:
        return self.succeeded / self.attempted if self.attempted else 0.0

    @property
    def coverage_text(self) -> str:
        return f"{self.succeeded} / {self.attempted} ({100 * self.coverage:.2f}%)"


def build_table7(fetcher: CrlFetcher) -> List[Table7Row]:
    """Per-operator coverage rows, worst coverage first, plus a Total row."""
    rows = [
        Table7Row(operator, stats.succeeded, stats.attempted)
        for operator, stats in fetcher.stats_by_operator.items()
    ]
    rows.sort(key=lambda row: (row.coverage, row.ca_operator))
    total_attempted = sum(row.attempted for row in rows)
    total_succeeded = sum(row.succeeded for row in rows)
    rows.append(Table7Row("Total Coverage", total_succeeded, total_attempted))
    return rows
