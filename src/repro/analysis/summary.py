"""Executive summary: the paper's takeaways, checked against a world.

Collects the headline claims from the abstract and section takeaways and
evaluates each on a :class:`~repro.core.pipeline.PipelineResult`, rendering
a pass/fail scorecard. This is the one-page artifact a reviewer reads first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.analysis.report import render_table
from repro.core.lifetime import LifetimePolicySimulator
from repro.core.pipeline import PipelineResult
from repro.core.stale import StalenessClass
from repro.util.stats import median

_THIRD_PARTY = (
    StalenessClass.KEY_COMPROMISE,
    StalenessClass.REGISTRANT_CHANGE,
    StalenessClass.MANAGED_TLS_DEPARTURE,
)


@dataclass(frozen=True)
class ClaimCheck:
    """One evaluated claim."""

    claim: str
    paper_value: str
    measured_value: str
    holds: bool


def evaluate_claims(result: PipelineResult) -> List[ClaimCheck]:
    """Evaluate every checkable headline claim; missing data fails safe."""
    checks: List[ClaimCheck] = []
    findings = result.findings

    def add(claim: str, paper: str, measured: str, holds: bool) -> None:
        checks.append(ClaimCheck(claim, paper, measured, holds))

    # §5.4: daily e2LD ordering across the three classes.
    rates = {}
    for cls in _THIRD_PARTY:
        aggregate = findings.aggregate(cls, result.windows.get(cls))
        rates[cls] = aggregate.daily_e2lds if aggregate else 0.0
    ordering = (
        rates[StalenessClass.MANAGED_TLS_DEPARTURE]
        > rates[StalenessClass.REGISTRANT_CHANGE]
        > rates[StalenessClass.KEY_COMPROMISE]
    )
    add(
        "daily stale-e2LD rates order managed TLS > registrant change > key compromise",
        "7,722 > 1,214 > 347 per day",
        " > ".join(
            f"{rates[cls]:.2f}" for cls in (
                StalenessClass.MANAGED_TLS_DEPARTURE,
                StalenessClass.REGISTRANT_CHANGE,
                StalenessClass.KEY_COMPROMISE,
            )
        ),
        ordering,
    )

    # Figure 6: median staleness ordering.
    medians = {}
    for cls in _THIRD_PARTY:
        items = findings.of_class(cls)
        medians[cls] = median([f.staleness_days for f in items]) if items else 0.0
    add(
        "median staleness: key compromise > managed TLS > registrant change",
        "398d > 300d > 90d",
        " > ".join(
            f"{medians[cls]:.0f}d" for cls in (
                StalenessClass.KEY_COMPROMISE,
                StalenessClass.MANAGED_TLS_DEPARTURE,
                StalenessClass.REGISTRANT_CHANGE,
            )
        ),
        medians[StalenessClass.KEY_COMPROMISE]
        > medians[StalenessClass.MANAGED_TLS_DEPARTURE]
        > medians[StalenessClass.REGISTRANT_CHANGE],
    )

    # §5.4: over half of staleness periods exceed 90 days (kc + managed).
    for cls, label in (
        (StalenessClass.KEY_COMPROMISE, "key compromise"),
        (StalenessClass.MANAGED_TLS_DEPARTURE, "managed TLS"),
    ):
        items = findings.of_class(cls)
        over = (
            sum(1 for f in items if f.staleness_days > 90) / len(items)
            if items
            else 0.0
        )
        add(
            f">50% of {label} staleness periods exceed 90 days",
            ">50%",
            f"{100 * over:.0f}%",
            over > 0.5,
        )

    # Figure 8: key compromise reported fast.
    items = findings.of_class(StalenessClass.KEY_COMPROMISE)
    fast = (
        sum(1 for f in items if f.days_to_invalidation <= 90) / len(items)
        if items
        else 0.0
    )
    add(
        "~99% of key compromise occurs within 90 days of issuance",
        "99%",
        f"{100 * fast:.0f}%",
        fast > 0.8,
    )

    # Abstract: 90-day cap cuts most staleness-days.
    simulator = LifetimePolicySimulator(findings)
    overall = simulator.overall_staleness_reduction(90)
    add(
        "a 90-day maximum lifetime removes most precarious staleness-days",
        "~75%",
        f"{100 * overall:.0f}%",
        overall > 0.5,
    )

    # Table 4: revoked-all dwarfs key compromise.
    revoked_all = len(findings.of_class(StalenessClass.REVOKED_ALL))
    key_compromise = len(findings.of_class(StalenessClass.KEY_COMPROMISE))
    add(
        "key compromise is a small fraction of all revocations",
        "2.42%",
        f"{100 * key_compromise / revoked_all:.1f}%" if revoked_all else "n/a",
        bool(revoked_all) and key_compromise < 0.25 * revoked_all,
    )
    return checks


def render_summary(result: PipelineResult, title: str = "Reproduction scorecard") -> str:
    checks = evaluate_claims(result)
    rows = [
        (
            "PASS" if check.holds else "FAIL",
            check.claim,
            check.paper_value,
            check.measured_value,
        )
        for check in checks
    ]
    passed = sum(1 for check in checks if check.holds)
    header = f"{title} — {passed}/{len(checks)} claims hold"
    return render_table(["", "Claim", "Paper", "Measured"], rows, title=header)
