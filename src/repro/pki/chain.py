"""Certificate chain building and verification.

Leaf certificates reference their issuer through the authority key id
(Table 1, issuer information). Chain building walks that reference up
through intermediates to a trusted root; verification additionally checks
validity windows, CA bits, and name coverage — the checks a TLS client
performs before the revocation question even arises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.pki.ca import CertificateAuthority
from repro.pki.certificate import Certificate, KeyUsage
from repro.util.dates import Day

MAX_CHAIN_DEPTH = 6


class ChainError(Exception):
    """Raised when no valid chain can be built or verification fails."""


def build_chain(
    leaf: Certificate,
    authorities: Sequence[CertificateAuthority],
) -> List[CertificateAuthority]:
    """Return the issuing-CA path for *leaf*, leaf-issuer first, root last.

    Authorities are matched by authority key id; a CA whose ``parent`` is
    None is treated as a trust anchor.
    """
    by_key_id: Dict[str, CertificateAuthority] = {
        ca.authority_key_id: ca for ca in authorities
    }
    issuer = by_key_id.get(leaf.authority_key_id)
    if issuer is None:
        raise ChainError(f"no authority matches key id {leaf.authority_key_id[:12]}...")
    path: List[CertificateAuthority] = [issuer]
    current = issuer
    while current.parent is not None:
        if len(path) >= MAX_CHAIN_DEPTH:
            raise ChainError("chain exceeds maximum depth (issuer loop?)")
        current = current.parent
        path.append(current)
    return path


def verify_chain(
    leaf: Certificate,
    authorities: Sequence[CertificateAuthority],
    hostname: str,
    query_day: Day,
    trusted_roots: Optional[Iterable[CertificateAuthority]] = None,
) -> List[CertificateAuthority]:
    """Full client-side verification. Returns the chain on success.

    Checks, in the order a TLS client applies them:
    1. leaf validity window covers *query_day*;
    2. leaf SAN covers *hostname* (incl. wildcard rules);
    3. an issuer path exists up to a root;
    4. the root is in the trust store (when one is supplied);
    5. the leaf is not itself a CA certificate being misused.
    """
    if not leaf.is_valid_on(query_day):
        raise ChainError(
            f"leaf not valid on day {query_day} "
            f"(window {leaf.not_before}..{leaf.not_after})"
        )
    if not leaf.covers_name(hostname):
        raise ChainError(f"leaf does not cover {hostname}")
    if leaf.is_ca:
        raise ChainError("CA certificate presented as a TLS leaf")
    if KeyUsage.DIGITAL_SIGNATURE not in leaf.key_usage:
        raise ChainError("leaf lacks digitalSignature key usage")
    path = build_chain(leaf, authorities)
    if trusted_roots is not None:
        roots = set(id(ca) for ca in trusted_roots)
        if id(path[-1]) not in roots:
            raise ChainError(f"root {path[-1].name!r} is not trusted")
    return path
