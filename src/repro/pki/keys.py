"""Simulated cryptographic keypairs and key custody tracking.

A :class:`KeyPair` is an opaque identity with a deterministic fingerprint;
what matters for the paper's analysis is *who holds a copy of the private
key* over time. :class:`KeyStore` tracks custody: the subscriber, a managed
TLS provider, or — after a compromise event — an attacker. The key-compromise
and managed-TLS staleness classes are precisely statements about this
custody set diverging from the domain's current operator.
"""

from __future__ import annotations

import enum
import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.util.dates import Day


class KeyAlgorithm(enum.Enum):
    RSA_2048 = "rsa-2048"
    ECDSA_P256 = "ecdsa-p256"
    ECDSA_P384 = "ecdsa-p384"


@dataclass(frozen=True)
class KeyPair:
    """An opaque keypair identity.

    ``key_id`` is unique per generated keypair; ``spki_fingerprint`` is the
    deterministic hash standing in for the SubjectPublicKeyInfo digest that
    appears in certificates (Subject Key Identifier, Table 1).
    """

    key_id: int
    algorithm: KeyAlgorithm
    owner_id: str  # the party that generated the key

    @property
    def spki_fingerprint(self) -> str:
        digest = hashlib.sha256(
            f"spki:{self.key_id}:{self.algorithm.value}".encode("utf-8")
        ).hexdigest()
        return digest[:40]

    def __str__(self) -> str:
        return f"key#{self.key_id}({self.algorithm.value})"


@dataclass
class CustodyEvent:
    """A party gaining or losing private-key access on a given day."""

    day: Day
    party_id: str
    gained: bool
    reason: str


class KeyStore:
    """Generates keypairs and tracks private-key custody over time."""

    def __init__(self) -> None:
        self._custody: Dict[int, List[CustodyEvent]] = {}
        self._keys: Dict[int, KeyPair] = {}
        # Per-store counter: two identically-seeded simulations in the same
        # process must mint identical key identities.
        self._counter = itertools.count(1)

    def generate(
        self,
        owner_id: str,
        day: Day,
        algorithm: KeyAlgorithm = KeyAlgorithm.ECDSA_P256,
    ) -> KeyPair:
        key = KeyPair(key_id=next(self._counter), algorithm=algorithm, owner_id=owner_id)
        self._keys[key.key_id] = key
        self._custody[key.key_id] = [CustodyEvent(day, owner_id, True, "generated")]
        return key

    def get(self, key_id: int) -> Optional[KeyPair]:
        return self._keys.get(key_id)

    def grant(self, key: KeyPair, party_id: str, day: Day, reason: str = "shared") -> None:
        """A party obtains a copy of the private key (e.g. upload to a CDN,
        or exfiltration during a breach)."""
        self._custody[key.key_id].append(CustodyEvent(day, party_id, True, reason))

    def revoke_custody(self, key: KeyPair, party_id: str, day: Day, reason: str = "destroyed") -> None:
        """A party provably destroys its copy (rare in practice; modelled for
        completeness — the paper assumes copies persist)."""
        self._custody[key.key_id].append(CustodyEvent(day, party_id, False, reason))

    def holders_on(self, key: KeyPair, day: Day) -> FrozenSet[str]:
        """Every party with a private-key copy on *day*."""
        holders: Set[str] = set()
        events = sorted(self._custody.get(key.key_id, []), key=lambda e: e.day)
        for event in events:
            if event.day > day:
                break
            if event.gained:
                holders.add(event.party_id)
            else:
                holders.discard(event.party_id)
        return frozenset(holders)

    def is_compromised_on(self, key: KeyPair, authorized: Iterable[str], day: Day) -> bool:
        """Whether any unauthorized party holds the key on *day*."""
        return bool(self.holders_on(key, day) - set(authorized))

    def custody_history(self, key: KeyPair) -> List[CustodyEvent]:
        return list(self._custody.get(key.key_id, []))
