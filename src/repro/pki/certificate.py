"""X.509-shaped certificate model.

Carries the fields from the paper's certificate-information taxonomy
(Table 1):

* **Subscriber authentication** — subject name, SAN list, subject public key
  (via key id / SPKI fingerprint).
* **Key authorization** — basic constraints, key usage, extended key usage.
* **Issuer information** — issuer name, authority key id, CRL distribution
  point, OCSP (AIA) URL, certificate policy.
* **Certificate metadata** — serial number, precertificate poison flag,
  embedded SCTs.

The CT dedup rule (paper Section 4: "deduplicate precertificates and issued
certificates based on their non-CT components") is implemented by
:meth:`Certificate.dedup_fingerprint`, which hashes everything except the
CT-specific parts (poison flag, SCT list).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field, replace
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.pki.keys import KeyPair
from repro.psl.registered import DomainName, e2ld, matches_wildcard
from repro.util.dates import Day, day, day_to_iso
from repro.util.intervals import Interval

#: CA/Browser Forum ballot 193 limit (March 2017, effective 2018): 825 days.
MAX_LIFETIME_825 = 825
#: Browser-enforced limit from September 2020: 398 days.
MAX_LIFETIME_398 = 398
#: Day the 825-day limit became effective for new DV issuance.
LIMIT_825_EFFECTIVE = day(2018, 3, 1)
#: Day browsers began enforcing the 398-day maximum.
LIMIT_398_EFFECTIVE = day(2020, 9, 1)
#: Pre-2017 practical maximum for DV certificates (three years + slack).
MAX_LIFETIME_LEGACY = 1187


def lifetime_limit_on(issuance_day: Day) -> int:
    """Maximum permitted DV lifetime for a certificate issued on a day.

    Encodes the policy timeline the paper describes in Sections 1 and 6.
    """
    if issuance_day >= LIMIT_398_EFFECTIVE:
        return MAX_LIFETIME_398
    if issuance_day >= LIMIT_825_EFFECTIVE:
        return MAX_LIFETIME_825
    return MAX_LIFETIME_LEGACY


class KeyUsage(enum.Flag):
    """X.509 key-usage bits (subset relevant to TLS)."""

    DIGITAL_SIGNATURE = enum.auto()
    KEY_ENCIPHERMENT = enum.auto()
    KEY_AGREEMENT = enum.auto()
    CERT_SIGN = enum.auto()
    CRL_SIGN = enum.auto()


class ExtendedKeyUsage(enum.Enum):
    """Extended key usage OIDs (by role)."""

    SERVER_AUTH = "serverAuth"
    CLIENT_AUTH = "clientAuth"
    CODE_SIGNING = "codeSigning"
    EMAIL_PROTECTION = "emailProtection"
    OCSP_SIGNING = "ocspSigning"


@dataclass(frozen=True)
class Certificate:
    """An issued certificate or precertificate."""

    # Subscriber authentication (Table 1 row 1)
    subject_cn: str
    san_dns_names: Tuple[str, ...]
    subject_key: KeyPair
    # Key authorization (row 2)
    is_ca: bool = False
    key_usage: KeyUsage = KeyUsage.DIGITAL_SIGNATURE | KeyUsage.KEY_ENCIPHERMENT
    extended_key_usage: Tuple[ExtendedKeyUsage, ...] = (ExtendedKeyUsage.SERVER_AUTH,)
    # Issuer information (row 3)
    issuer_name: str = ""
    authority_key_id: str = ""
    crl_url: Optional[str] = None
    ocsp_url: Optional[str] = None
    certificate_policy: str = "dv"
    # Certificate metadata (row 4)
    serial: int = 0
    is_precertificate: bool = False
    scts: Tuple[str, ...] = ()
    # Validity
    not_before: Day = 0
    not_after: Day = 0

    def __post_init__(self) -> None:
        if self.not_after < self.not_before:
            raise ValueError(
                f"notAfter {self.not_after} precedes notBefore {self.not_before}"
            )
        if not self.san_dns_names and not self.is_ca:
            raise ValueError("leaf certificate requires at least one SAN dNSName")
        normalized = tuple(DomainName(name).name for name in self.san_dns_names)
        object.__setattr__(self, "san_dns_names", normalized)

    # -- validity ------------------------------------------------------------

    @property
    def validity(self) -> Interval:
        return Interval(self.not_before, self.not_after)

    @property
    def lifetime_days(self) -> int:
        return self.not_after - self.not_before

    def is_valid_on(self, query_day: Day) -> bool:
        return self.not_before <= query_day <= self.not_after

    def is_expired_on(self, query_day: Day) -> bool:
        return query_day > self.not_after

    # -- identity ------------------------------------------------------------

    @property
    def spki_fingerprint(self) -> str:
        return self.subject_key.spki_fingerprint

    def revocation_key(self) -> Tuple[str, int]:
        """(authority key id, serial) — the join key CRLs provide (§4.1)."""
        return (self.authority_key_id, self.serial)

    def dedup_fingerprint(self) -> str:
        """Hash of all non-CT components.

        A precertificate and its final certificate differ only in the poison
        flag and embedded SCTs, so they share this fingerprint and collapse
        to one logical certificate, exactly as the paper's dedup does.
        The result is memoized: it is the hottest operation in CT ingestion.
        """
        cached = self.__dict__.get("_dedup_fp")
        if cached is not None:
            return cached
        material = "|".join(
            (
                self.subject_cn,
                ",".join(self.san_dns_names),
                self.subject_key.spki_fingerprint,
                str(int(self.is_ca)),
                str(self.key_usage.value),
                ",".join(e.value for e in self.extended_key_usage),
                self.issuer_name,
                self.authority_key_id,
                self.crl_url or "",
                self.ocsp_url or "",
                self.certificate_policy,
                str(self.serial),
                str(self.not_before),
                str(self.not_after),
            )
        )
        digest = hashlib.sha256(material.encode("utf-8")).hexdigest()
        object.__setattr__(self, "_dedup_fp", digest)
        return digest

    def covers_name(self, hostname: str) -> bool:
        """Whether any SAN entry (incl. wildcards) matches *hostname*."""
        return any(matches_wildcard(san, hostname) for san in self.san_dns_names)

    def e2lds(self) -> FrozenSet[str]:
        """Effective 2LDs across all SAN names (how Table 4 groups)."""
        cached = self.__dict__.get("_e2lds")
        if cached is not None:
            return cached
        result = set()
        for san in self.san_dns_names:
            registrable = e2ld(san)
            if registrable:
                result.add(registrable)
        frozen = frozenset(result)
        object.__setattr__(self, "_e2lds", frozen)
        return frozen

    def fqdns(self) -> FrozenSet[str]:
        """Non-wildcard representation of SAN names (wildcards map to base)."""
        cached = self.__dict__.get("_fqdns")
        if cached is not None:
            return cached
        frozen = frozenset(
            san[2:] if san.startswith("*.") else san for san in self.san_dns_names
        )
        object.__setattr__(self, "_fqdns", frozen)
        return frozen

    # -- CT transformations ----------------------------------------------------

    def as_precertificate(self) -> "Certificate":
        """The poisoned precertificate submitted to CT before final issuance."""
        return replace(self, is_precertificate=True, scts=())

    def with_scts(self, scts: Iterable[str]) -> "Certificate":
        """The final certificate with embedded SCTs."""
        return replace(self, is_precertificate=False, scts=tuple(scts))

    def clamp_lifetime(self, max_days: int) -> "Certificate":
        """Copy with lifetime capped at *max_days* (Section 6 simulation)."""
        if self.lifetime_days <= max_days:
            return self
        return replace(self, not_after=self.not_before + max_days)

    # -- persistence --------------------------------------------------------------

    def to_record(self) -> dict:
        """Plain-dict form for JSONL checkpointing (see ``JsonlStore``)."""
        return {
            "subject_cn": self.subject_cn,
            "san_dns_names": list(self.san_dns_names),
            "key": {
                "key_id": self.subject_key.key_id,
                "algorithm": self.subject_key.algorithm.value,
                "owner_id": self.subject_key.owner_id,
            },
            "is_ca": self.is_ca,
            "key_usage": self.key_usage.value,
            "extended_key_usage": [e.value for e in self.extended_key_usage],
            "issuer_name": self.issuer_name,
            "authority_key_id": self.authority_key_id,
            "crl_url": self.crl_url,
            "ocsp_url": self.ocsp_url,
            "certificate_policy": self.certificate_policy,
            "serial": self.serial,
            "is_precertificate": self.is_precertificate,
            "scts": list(self.scts),
            "not_before": self.not_before,
            "not_after": self.not_after,
        }

    @classmethod
    def from_record(cls, record: dict) -> "Certificate":
        from repro.pki.keys import KeyAlgorithm, KeyPair

        key = KeyPair(
            key_id=record["key"]["key_id"],
            algorithm=KeyAlgorithm(record["key"]["algorithm"]),
            owner_id=record["key"]["owner_id"],
        )
        return cls(
            subject_cn=record["subject_cn"],
            san_dns_names=tuple(record["san_dns_names"]),
            subject_key=key,
            is_ca=record["is_ca"],
            key_usage=KeyUsage(record["key_usage"]),
            extended_key_usage=tuple(
                ExtendedKeyUsage(v) for v in record["extended_key_usage"]
            ),
            issuer_name=record["issuer_name"],
            authority_key_id=record["authority_key_id"],
            crl_url=record["crl_url"],
            ocsp_url=record["ocsp_url"],
            certificate_policy=record["certificate_policy"],
            serial=record["serial"],
            is_precertificate=record["is_precertificate"],
            scts=tuple(record["scts"]),
            not_before=record["not_before"],
            not_after=record["not_after"],
        )

    def __str__(self) -> str:
        kind = "precert" if self.is_precertificate else "cert"
        return (
            f"{kind}(serial={self.serial}, cn={self.subject_cn}, "
            f"sans={len(self.san_dns_names)}, "
            f"{day_to_iso(self.not_before)}..{day_to_iso(self.not_after)})"
        )
