"""ACME-style automated issuance (RFC 8555 subset).

Models the order flow that made short-lived certificates operationally
viable (paper Section 2.2): account registration, order creation with one
authorization per identifier, challenge provisioning, finalization, and —
critically for the staleness analysis — *auto-renewal*: unattended re-
issuance that can prolong a soon-to-be-broken name-to-key mapping
(Section 7.1, "automatic issuance").
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dns.records import RecordType
from repro.dns.zone import ZoneStore
from repro.pki.ca import CertificateAuthority, IssuanceError
from repro.pki.certificate import Certificate
from repro.pki.keys import KeyPair, KeyStore
from repro.pki.validation import ChallengeType, DvChallenge, DvValidator, ValidationError
from repro.psl.registered import DomainName
from repro.util.dates import Day


class OrderStatus(enum.Enum):
    PENDING = "pending"
    READY = "ready"
    VALID = "valid"
    INVALID = "invalid"


@dataclass
class AcmeAccount:
    """An ACME account (a subscriber identity at one CA)."""

    account_id: str
    contact: str
    created_on: Day


@dataclass
class AcmeAuthorization:
    """Authorization for one identifier within an order."""

    domain: str
    challenge: DvChallenge
    validated: bool = False


@dataclass
class AcmeOrder:
    """One certificate order."""

    order_id: int
    account_id: str
    identifiers: Tuple[str, ...]
    status: OrderStatus
    authorizations: List[AcmeAuthorization] = field(default_factory=list)
    certificate: Optional[Certificate] = None
    error: Optional[str] = None


class AcmeServer:
    """The CA-side ACME endpoint bound to one :class:`CertificateAuthority`."""

    def __init__(self, ca: CertificateAuthority, validator: DvValidator) -> None:
        self._ca = ca
        self._validator = validator
        ca.attach_validator(validator)
        self._accounts: Dict[str, AcmeAccount] = {}
        self._orders: Dict[int, AcmeOrder] = {}
        self._order_counter = itertools.count(1)
        self._nonce_counter = itertools.count(1)

    @property
    def validator(self) -> DvValidator:
        return self._validator

    @property
    def ca(self) -> CertificateAuthority:
        return self._ca

    def register_account(self, contact: str, day: Day) -> AcmeAccount:
        account_id = f"acct-{self._ca.name.lower().replace(' ', '-')}-{len(self._accounts) + 1}"
        account = AcmeAccount(account_id=account_id, contact=contact, created_on=day)
        self._accounts[account_id] = account
        return account

    def new_order(
        self,
        account: AcmeAccount,
        identifiers: Sequence[str],
        challenge_type: ChallengeType = ChallengeType.HTTP_01,
    ) -> AcmeOrder:
        if account.account_id not in self._accounts:
            raise KeyError(f"unknown ACME account {account.account_id}")
        names = tuple(DomainName(n).name for n in identifiers)
        order = AcmeOrder(
            order_id=next(self._order_counter),
            account_id=account.account_id,
            identifiers=names,
            status=OrderStatus.PENDING,
        )
        for name in names:
            base = DomainName(name).without_wildcard().name
            challenge = DvChallenge(
                domain=base,
                challenge_type=challenge_type,
                nonce=f"nonce-{next(self._nonce_counter)}",
                account_id=account.account_id,
            )
            order.authorizations.append(AcmeAuthorization(domain=base, challenge=challenge))
        self._orders[order.order_id] = order
        return order

    def attempt_challenges(self, order: AcmeOrder, day: Day) -> OrderStatus:
        """Ask the CA to verify every pending authorization."""
        for authz in order.authorizations:
            if authz.validated:
                continue
            try:
                self._validator.validate(authz.challenge, day)
                authz.validated = True
            except ValidationError as exc:
                order.status = OrderStatus.INVALID
                order.error = str(exc)
                return order.status
        order.status = OrderStatus.READY
        return order.status

    def finalize(
        self,
        order: AcmeOrder,
        subject_key: KeyPair,
        day: Day,
        lifetime_days: Optional[int] = None,
    ) -> Certificate:
        """Issue the certificate for a READY order."""
        if order.status is not OrderStatus.READY:
            raise IssuanceError(f"order {order.order_id} not ready (status={order.status.value})")
        certificate = self._ca.issue(
            san_dns_names=list(order.identifiers),
            subject_key=subject_key,
            issuance_day=day,
            lifetime_days=lifetime_days,
            account_id=order.account_id,
            skip_validation=True,  # authorizations already validated above
        )
        order.status = OrderStatus.VALID
        order.certificate = certificate
        return certificate


class AcmeClient:
    """Subscriber-side automation (a certbot analogue) with auto-renewal.

    ``renew_due`` implements the standard renew-at-2/3-of-lifetime rule;
    the ecosystem simulator drives it daily so certificates keep renewing
    until automation is switched off — including, deliberately, for domains
    whose owner is about to change (the staleness amplifier of §7.1).
    """

    def __init__(
        self,
        server: AcmeServer,
        account: AcmeAccount,
        zones: ZoneStore,
        key_store: KeyStore,
        owner_id: str,
    ) -> None:
        self._server = server
        self.account = account
        self._zones = zones
        self._key_store = key_store
        self._owner_id = owner_id

    def obtain(
        self,
        identifiers: Sequence[str],
        day: Day,
        lifetime_days: Optional[int] = None,
        challenge_type: ChallengeType = ChallengeType.DNS_01,
        reuse_key: Optional[KeyPair] = None,
    ) -> Certificate:
        """Full flow: order, provision challenges, validate, finalize."""
        order = self._server.new_order(self.account, identifiers, challenge_type)
        for authz in order.authorizations:
            self._provision(authz.challenge)
        status = self._server.attempt_challenges(order, day)
        if status is not OrderStatus.READY:
            raise IssuanceError(f"challenges failed: {order.error}")
        key = reuse_key or self._key_store.generate(self._owner_id, day)
        certificate = self._server.finalize(order, key, day, lifetime_days)
        for authz in order.authorizations:
            self._deprovision(authz.challenge)
        return certificate

    @staticmethod
    def renew_due(certificate: Certificate, day: Day) -> bool:
        """True when *day* is past 2/3 of the certificate's lifetime."""
        threshold = certificate.not_before + (certificate.lifetime_days * 2) // 3
        return day >= threshold

    def _provision(self, challenge: DvChallenge) -> None:
        if challenge.challenge_type is ChallengeType.DNS_01:
            zone = self._zones.find_zone_for(challenge.domain)
            if zone is None:
                raise IssuanceError(f"no zone for {challenge.domain}; cannot provision dns-01")
            zone.replace(
                challenge.dns_record_name, RecordType.TXT, [challenge.key_authorization]
            )
        elif challenge.challenge_type is ChallengeType.HTTP_01:
            self._server.validator.web.provision_http(
                challenge.domain, challenge.http_path, challenge.key_authorization
            )
        else:
            self._server.validator.web.provision_alpn(
                challenge.domain, challenge.key_authorization
            )

    def _deprovision(self, challenge: DvChallenge) -> None:
        if challenge.challenge_type is ChallengeType.DNS_01:
            zone = self._zones.find_zone_for(challenge.domain)
            if zone is not None:
                zone.remove(challenge.dns_record_name, RecordType.TXT)
        elif challenge.challenge_type is ChallengeType.HTTP_01:
            self._server.validator.web.clear_domain(challenge.domain)
