"""Web PKI substrate: keys, certificates, CAs, DV validation, ACME, chains.

Certificates here carry exactly the fields the paper's taxonomy (Table 1)
groups into subscriber authentication, key authorization, issuer
information, and certificate metadata. Cryptographic operations are
simulated — keys are opaque identities with deterministic fingerprints —
because nothing in the paper's pipelines depends on real cryptography, only
on the *bookkeeping* of which party holds which key for which name.
"""

from repro.pki.keys import KeyPair, KeyStore, KeyAlgorithm
from repro.pki.certificate import (
    Certificate,
    ExtendedKeyUsage,
    KeyUsage,
    MAX_LIFETIME_398,
    MAX_LIFETIME_825,
    lifetime_limit_on,
)
from repro.pki.ca import CertificateAuthority, IssuancePolicy, IssuanceError
from repro.pki.validation import (
    ChallengeType,
    DvChallenge,
    DvValidator,
    ValidationError,
    ValidationResult,
)
from repro.pki.acme import AcmeAccount, AcmeOrder, AcmeServer, OrderStatus
from repro.pki.chain import ChainError, build_chain, verify_chain
from repro.pki.tls import (
    HandshakeResult,
    HandshakeStatus,
    Network,
    TlsClient,
    TlsServer,
)

__all__ = [
    "KeyPair",
    "KeyStore",
    "KeyAlgorithm",
    "Certificate",
    "ExtendedKeyUsage",
    "KeyUsage",
    "MAX_LIFETIME_398",
    "MAX_LIFETIME_825",
    "lifetime_limit_on",
    "CertificateAuthority",
    "IssuancePolicy",
    "IssuanceError",
    "ChallengeType",
    "DvChallenge",
    "DvValidator",
    "ValidationError",
    "ValidationResult",
    "AcmeAccount",
    "AcmeOrder",
    "AcmeServer",
    "OrderStatus",
    "ChainError",
    "build_chain",
    "verify_chain",
    "HandshakeResult",
    "HandshakeStatus",
    "Network",
    "TlsClient",
    "TlsServer",
]
