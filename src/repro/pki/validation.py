"""Domain-Validation (DV) challenges.

Implements the nonce-based verification flows from paper Figure 1 /
Section 2.2: the CA transmits a random nonce which the subscriber must place
in a custom DNS TXT record (dns-01), an HTTP well-known path (http-01), or a
TLS ALPN response (tls-alpn-01). A :class:`DvValidator` checks the challenge
against the simulated network (DNS zone store and a web-server registry) and
also enforces CAA.

Domain-validation *reuse* (Section 4.4) is modelled by a per-account cache of
successful validations valid for up to 398 days.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dns.records import RecordType, caa_allows_issuer
from repro.dns.resolver import Resolver
from repro.dns.zone import ZoneStore
from repro.psl.registered import DomainName
from repro.util.dates import Day

#: CA/Browser Forum limit on reusing prior domain-control evidence.
VALIDATION_REUSE_DAYS = 398


class ChallengeType(enum.Enum):
    HTTP_01 = "http-01"
    DNS_01 = "dns-01"
    TLS_ALPN_01 = "tls-alpn-01"


class ValidationError(Exception):
    """Raised when a DV challenge cannot be satisfied."""


@dataclass(frozen=True)
class DvChallenge:
    """A nonce challenge issued by a CA for one domain."""

    domain: str
    challenge_type: ChallengeType
    nonce: str
    account_id: str

    @property
    def dns_record_name(self) -> str:
        return f"_acme-challenge.{self.domain}"

    @property
    def http_path(self) -> str:
        return f"/.well-known/acme-challenge/{self.nonce}"

    @property
    def key_authorization(self) -> str:
        digest = hashlib.sha256(f"{self.nonce}.{self.account_id}".encode()).hexdigest()
        return digest[:43]


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of a completed challenge."""

    domain: str
    challenge_type: ChallengeType
    validated_on: Day
    account_id: str
    reused: bool = False

    def usable_on(self, query_day: Day) -> bool:
        return 0 <= query_day - self.validated_on <= VALIDATION_REUSE_DAYS


class WebServerRegistry:
    """Who answers HTTP/ALPN for each FQDN, and what challenge bodies are
    provisioned — the "Web Server / CDN / Virt. Hosting" box in Figure 1."""

    def __init__(self) -> None:
        self._http_bodies: Dict[Tuple[str, str], str] = {}
        self._alpn_tokens: Dict[str, str] = {}

    def provision_http(self, domain: str, path: str, body: str) -> None:
        self._http_bodies[(DomainName(domain).name, path)] = body

    def provision_alpn(self, domain: str, token: str) -> None:
        self._alpn_tokens[DomainName(domain).name] = token

    def fetch_http(self, domain: str, path: str) -> Optional[str]:
        return self._http_bodies.get((DomainName(domain).name, path))

    def alpn_token(self, domain: str) -> Optional[str]:
        return self._alpn_tokens.get(DomainName(domain).name)

    def clear_domain(self, domain: str) -> None:
        name = DomainName(domain).name
        self._http_bodies = {k: v for k, v in self._http_bodies.items() if k[0] != name}
        self._alpn_tokens.pop(name, None)


class DvValidator:
    """Validates DV challenges against the simulated network."""

    def __init__(
        self,
        zones: ZoneStore,
        web: Optional[WebServerRegistry] = None,
        ca_domain: str = "ca.example",
    ) -> None:
        self._resolver = Resolver(zones)
        self._zones = zones
        self._web = web or WebServerRegistry()
        self._ca_domain = ca_domain
        self._reuse_cache: Dict[Tuple[str, str], ValidationResult] = {}

    @property
    def web(self) -> WebServerRegistry:
        return self._web

    def check_caa(self, domain: str) -> bool:
        """Walk the CAA tree from the FQDN toward the root (RFC 8659)."""
        current: Optional[str] = DomainName(domain).without_wildcard().name
        while current:
            resolution = self._resolver.resolve(current, RecordType.CAA)
            if resolution.ok and resolution.records:
                return caa_allows_issuer(resolution.records, self._ca_domain)
            parent = DomainName(current).parent()
            current = parent.name if parent else None
        return True

    def validate(self, challenge: DvChallenge, query_day: Day) -> ValidationResult:
        """Verify a challenge; raises :class:`ValidationError` on failure."""
        if not self.check_caa(challenge.domain):
            raise ValidationError(f"CAA forbids {self._ca_domain} issuing for {challenge.domain}")
        cached = self._reuse_cache.get((challenge.account_id, challenge.domain))
        if cached is not None and cached.usable_on(query_day):
            return ValidationResult(
                domain=challenge.domain,
                challenge_type=cached.challenge_type,
                validated_on=cached.validated_on,
                account_id=challenge.account_id,
                reused=True,
            )
        if challenge.challenge_type is ChallengeType.DNS_01:
            self._check_dns(challenge)
        elif challenge.challenge_type is ChallengeType.HTTP_01:
            self._check_http(challenge)
        else:
            self._check_alpn(challenge)
        result = ValidationResult(
            domain=challenge.domain,
            challenge_type=challenge.challenge_type,
            validated_on=query_day,
            account_id=challenge.account_id,
        )
        self._reuse_cache[(challenge.account_id, challenge.domain)] = result
        return result

    def _check_dns(self, challenge: DvChallenge) -> None:
        resolution = self._resolver.resolve(challenge.dns_record_name, RecordType.TXT)
        if not resolution.ok:
            raise ValidationError(
                f"dns-01: no TXT record at {challenge.dns_record_name} "
                f"({resolution.status.value})"
            )
        if challenge.key_authorization not in resolution.rdatas():
            raise ValidationError("dns-01: TXT record does not contain key authorization")

    def _check_http(self, challenge: DvChallenge) -> None:
        body = self._web.fetch_http(challenge.domain, challenge.http_path)
        if body is None:
            raise ValidationError(f"http-01: {challenge.http_path} not served for {challenge.domain}")
        if body.strip() != challenge.key_authorization:
            raise ValidationError("http-01: served body does not match key authorization")

    def _check_alpn(self, challenge: DvChallenge) -> None:
        token = self._web.alpn_token(challenge.domain)
        if token is None:
            raise ValidationError(f"tls-alpn-01: no ALPN responder for {challenge.domain}")
        if token != challenge.key_authorization:
            raise ValidationError("tls-alpn-01: ALPN certificate token mismatch")

    def forget_reuse(self, account_id: str, domain: str) -> None:
        """Drop cached evidence (used by tests and CA policy changes)."""
        self._reuse_cache.pop((account_id, DomainName(domain).name), None)
