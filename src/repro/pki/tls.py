"""Simulated TLS server authentication.

The end of the paper's causal chain: a client connects to a hostname, some
party answers with a certificate chain, and the client either authenticates
the server or walks away. This module composes the rest of the PKI package
into that handshake:

* :class:`TlsServer` — holds a certificate + private key and answers
  handshakes (only a party that actually *holds* the key can run one, which
  is exactly what makes third-party stale certificates dangerous);
* :class:`TlsClient` — verifies the chain (validity, names, trust anchors)
  and applies a revocation-checking policy;
* :class:`Network` — routes hostnames to servers and lets an on-path
  interceptor hijack a route, optionally dropping revocation traffic.

`repro.revocation.checking` answers "would revocation save the client?";
this module answers the full question, chain validation included.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.pki.ca import CertificateAuthority
from repro.pki.certificate import Certificate
from repro.pki.chain import ChainError, verify_chain
from repro.pki.keys import KeyPair, KeyStore
from repro.psl.registered import DomainName
from repro.revocation.checking import (
    CheckDecision,
    ConnectionContext,
    RevocationChecker,
    RevocationPolicy,
)
from repro.util.dates import Day


class HandshakeStatus(enum.Enum):
    OK = "ok"
    NO_ROUTE = "no_route"
    SERVER_LACKS_KEY = "server_lacks_key"
    CHAIN_INVALID = "chain_invalid"
    REVOKED = "revoked"
    REVOCATION_UNAVAILABLE = "revocation_unavailable"


@dataclass(frozen=True)
class HandshakeResult:
    """Outcome of one client connection attempt."""

    hostname: str
    status: HandshakeStatus
    server_id: Optional[str] = None
    certificate: Optional[Certificate] = None
    detail: str = ""

    @property
    def authenticated(self) -> bool:
        return self.status is HandshakeStatus.OK


class TlsServer:
    """A TLS endpoint presenting one certificate.

    The server proves key possession during the handshake, so construction
    is only meaningful for a party that holds the private key — verified
    against the key store's custody record at handshake time.
    """

    def __init__(
        self,
        server_id: str,
        certificate: Certificate,
        key_store: KeyStore,
    ) -> None:
        self.server_id = server_id
        self.certificate = certificate
        self._key_store = key_store

    def can_prove_possession(self, on_day: Day) -> bool:
        holders = self._key_store.holders_on(self.certificate.subject_key, on_day)
        return self.server_id in holders


class TlsClient:
    """A verifying TLS client with a revocation policy."""

    def __init__(
        self,
        authorities: Sequence[CertificateAuthority],
        trusted_roots: Optional[Iterable[CertificateAuthority]] = None,
        revocation: Optional[RevocationChecker] = None,
    ) -> None:
        self._authorities = list(authorities)
        self._trusted_roots = list(trusted_roots) if trusted_roots is not None else None
        self._revocation = revocation or RevocationChecker(RevocationPolicy.NONE)

    def handshake(
        self,
        hostname: str,
        server: TlsServer,
        on_day: Day,
        context: ConnectionContext = ConnectionContext(),
    ) -> HandshakeResult:
        hostname = DomainName(hostname).name
        if not server.can_prove_possession(on_day):
            return HandshakeResult(
                hostname, HandshakeStatus.SERVER_LACKS_KEY, server.server_id,
                server.certificate, "server cannot complete key-possession proof",
            )
        try:
            verify_chain(
                server.certificate,
                self._authorities,
                hostname,
                on_day,
                trusted_roots=self._trusted_roots,
            )
        except ChainError as exc:
            return HandshakeResult(
                hostname, HandshakeStatus.CHAIN_INVALID, server.server_id,
                server.certificate, str(exc),
            )
        decision = self._revocation.connection_outcome(
            server.certificate, on_day, context
        )
        if decision is CheckDecision.REJECT_REVOKED:
            return HandshakeResult(
                hostname, HandshakeStatus.REVOKED, server.server_id, server.certificate
            )
        if decision is CheckDecision.REJECT_UNAVAILABLE:
            return HandshakeResult(
                hostname,
                HandshakeStatus.REVOCATION_UNAVAILABLE,
                server.server_id,
                server.certificate,
            )
        return HandshakeResult(
            hostname, HandshakeStatus.OK, server.server_id, server.certificate
        )


class Network:
    """Hostname routing with an optional on-path interceptor."""

    def __init__(self) -> None:
        self._routes: Dict[str, TlsServer] = {}
        self._intercepts: Dict[str, TlsServer] = {}
        self._interceptor_drops_revocation = False

    def route(self, hostname: str, server: TlsServer) -> None:
        self._routes[DomainName(hostname).name] = server

    def intercept(
        self, hostname: str, attacker_server: TlsServer, drop_revocation: bool = True
    ) -> None:
        """An on-path attacker hijacks a route (ARP/DNS/BGP-level position,
        paper §3.4) and, by default, drops revocation traffic (§2.4)."""
        self._intercepts[DomainName(hostname).name] = attacker_server
        self._interceptor_drops_revocation = drop_revocation

    def clear_intercept(self, hostname: str) -> None:
        self._intercepts.pop(DomainName(hostname).name, None)

    def connect(self, client: TlsClient, hostname: str, on_day: Day) -> HandshakeResult:
        """Resolve the effective server (interceptor wins) and handshake."""
        name = DomainName(hostname).name
        intercepted = name in self._intercepts
        server = self._intercepts.get(name) or self._routes.get(name)
        if server is None:
            return HandshakeResult(name, HandshakeStatus.NO_ROUTE)
        context = ConnectionContext(
            interceptor_drops_revocation_traffic=(
                intercepted and self._interceptor_drops_revocation
            ),
            staple_presented=not intercepted,
        )
        return client.handshake(name, server, on_day, context)
