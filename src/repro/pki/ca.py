"""Certificate authorities and issuance policy.

A :class:`CertificateAuthority` owns a signing key, enforces an
:class:`IssuancePolicy` (maximum lifetime, optionally stricter than the
CA/Browser Forum limit in force, as Let's Encrypt / GTS / cPanel self-impose
90 days — paper Section 6), performs DV validation when a validator is
attached, and records every certificate it signs for later CRL publication.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.pki.certificate import (
    Certificate,
    ExtendedKeyUsage,
    KeyUsage,
    lifetime_limit_on,
)
from repro.pki.keys import KeyAlgorithm, KeyPair, KeyStore
from repro.pki.validation import ChallengeType, DvChallenge, DvValidator, ValidationError
from repro.psl.registered import DomainName
from repro.util.dates import Day


class IssuanceError(Exception):
    """Raised when a certificate request violates policy or validation."""


@dataclass(frozen=True)
class IssuancePolicy:
    """Per-CA issuance parameters."""

    max_lifetime_days: int = 398
    default_lifetime_days: int = 365
    enforce_forum_limits: bool = True
    require_validation: bool = True
    allowed_challenge_types: Tuple[ChallengeType, ...] = (
        ChallengeType.HTTP_01,
        ChallengeType.DNS_01,
        ChallengeType.TLS_ALPN_01,
    )

    def effective_max(self, issuance_day: Day) -> int:
        """Lifetime ceiling on a given day: min(CA policy, forum policy)."""
        if self.enforce_forum_limits:
            return min(self.max_lifetime_days, lifetime_limit_on(issuance_day))
        return self.max_lifetime_days


class CertificateAuthority:
    """One issuing CA (an intermediate, in web-PKI terms)."""

    def __init__(
        self,
        name: str,
        key_store: KeyStore,
        policy: Optional[IssuancePolicy] = None,
        operator: Optional[str] = None,
        established: Day = 0,
        parent: Optional["CertificateAuthority"] = None,
    ) -> None:
        self.name = name
        self.operator = operator or name
        self.policy = policy or IssuancePolicy()
        self._key_store = key_store
        self.signing_key: KeyPair = key_store.generate(
            owner_id=f"ca:{name}", day=established, algorithm=KeyAlgorithm.ECDSA_P384
        )
        self.parent = parent
        self._serial = itertools.count(1000)
        self._issued: List[Certificate] = []
        self._issued_by_serial: Dict[int, Certificate] = {}
        self._validator: Optional[DvValidator] = None
        self.crl_url = f"http://crl.{_slug(name)}.example/latest.crl"
        self.ocsp_url = f"http://ocsp.{_slug(name)}.example"

    # -- configuration ---------------------------------------------------------

    def attach_validator(self, validator: DvValidator) -> None:
        self._validator = validator

    @property
    def authority_key_id(self) -> str:
        """The issuer key identifier present in issued certificates."""
        return self.signing_key.spki_fingerprint

    # -- issuance ----------------------------------------------------------------

    def issue(
        self,
        san_dns_names: Sequence[str],
        subject_key: KeyPair,
        issuance_day: Day,
        lifetime_days: Optional[int] = None,
        account_id: str = "default-account",
        challenge_type: ChallengeType = ChallengeType.HTTP_01,
        skip_validation: bool = False,
        extended_key_usage: Tuple[ExtendedKeyUsage, ...] = (ExtendedKeyUsage.SERVER_AUTH,),
    ) -> Certificate:
        """Issue a DV leaf certificate.

        Raises :class:`IssuanceError` on policy violation or failed DV.
        ``skip_validation`` models validation-reuse shortcuts and the
        pre-validated managed-TLS path where the CDN already controls DNS.
        """
        if not san_dns_names:
            raise IssuanceError("certificate request carries no names")
        names = [DomainName(name).name for name in san_dns_names]
        lifetime = lifetime_days if lifetime_days is not None else self.policy.default_lifetime_days
        ceiling = self.policy.effective_max(issuance_day)
        if lifetime > ceiling:
            raise IssuanceError(
                f"{self.name}: requested lifetime {lifetime}d exceeds maximum {ceiling}d"
            )
        if challenge_type not in self.policy.allowed_challenge_types:
            raise IssuanceError(f"{self.name}: challenge {challenge_type.value} not supported")
        if self.policy.require_validation and not skip_validation:
            if self._validator is None:
                raise IssuanceError(f"{self.name}: no DV validator attached")
            for name in names:
                base = DomainName(name).without_wildcard().name
                challenge = DvChallenge(
                    domain=base,
                    challenge_type=challenge_type,
                    nonce=f"{self.name}:{next(self._serial)}",
                    account_id=account_id,
                )
                try:
                    self._validator.validate(challenge, issuance_day)
                except ValidationError as exc:
                    raise IssuanceError(f"{self.name}: DV failed for {name}: {exc}") from exc
        certificate = Certificate(
            subject_cn=names[0],
            san_dns_names=tuple(names),
            subject_key=subject_key,
            issuer_name=self.name,
            authority_key_id=self.authority_key_id,
            crl_url=self.crl_url,
            ocsp_url=self.ocsp_url,
            serial=next(self._serial),
            not_before=issuance_day,
            not_after=issuance_day + lifetime,
            extended_key_usage=extended_key_usage,
        )
        self._issued.append(certificate)
        self._issued_by_serial[certificate.serial] = certificate
        return certificate

    def issued(self) -> List[Certificate]:
        return list(self._issued)

    def issued_count(self) -> int:
        return len(self._issued)

    def find_by_serial(self, serial: int) -> Optional[Certificate]:
        return self._issued_by_serial.get(serial)

    def __repr__(self) -> str:
        return f"CertificateAuthority({self.name!r}, issued={len(self._issued)})"


def _slug(name: str) -> str:
    return "".join(c if c.isalnum() else "-" for c in name.lower()).strip("-")
