"""End-to-end measurement pipeline.

Binds the three detectors to the dataset bundle (CT corpus, CRL series,
WHOIS creation pairs, DNS snapshots) and returns a single
:class:`PipelineResult` from which every table and figure is derived. This
is the programmatic equivalent of the paper's Section 4 methodology run
end-to-end.

The pipeline iterates :data:`DETECTOR_REGISTRY` — an ordered list of
:class:`DetectorSpec` entries describing how to build each
:class:`~repro.core.detectors.base.Detector`, which bundle dataset it
consumes, and when it applies — so adding a staleness class means adding a
registry entry, not editing ``run()``. The sharded parallel engine
(:mod:`repro.parallel`) reuses the same registry inside worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.detectors.base import Detector
from repro.core.detectors.key_compromise import KeyCompromiseDetector, RevocationJoinStats
from repro.obs import get_registry, names, phase_progress, span
from repro.core.detectors.managed_tls import ManagedTlsDetector
from repro.core.detectors.registrant_change import RegistrantChangeDetector
from repro.core.stale import ClassAggregate, StaleCertificate, StalenessClass, StaleFindings
from repro.ct.dedup import CertificateCorpus
from repro.dns.snapshots import SnapshotStore
from repro.revocation.crl import CertificateRevocationList
from repro.util.dates import Day

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (parallel -> core)
    from repro.parallel.stats import ShardStats


@dataclass
class DatasetBundle:
    """The four datasets of paper Table 3."""

    corpus: CertificateCorpus
    crls: List[CertificateRevocationList] = field(default_factory=list)
    whois_creation_pairs: List[Tuple[str, Day]] = field(default_factory=list)
    dns_snapshots: Optional[SnapshotStore] = None
    #: Observation windows per staleness class, (first_day, last_day);
    #: used for the daily-rate denominators in Table 4.
    windows: Dict[StalenessClass, Tuple[Day, Day]] = field(default_factory=dict)


@dataclass
class PipelineResult:
    """Everything one measurement run produces."""

    findings: StaleFindings
    revocation_stats: Optional[RevocationJoinStats] = None
    windows: Dict[StalenessClass, Tuple[Day, Day]] = field(default_factory=dict)
    #: Per-shard sizes/timings when the result came from the sharded
    #: parallel engine (:mod:`repro.parallel`); ``None`` for batch runs.
    shard_stats: Optional["ShardStats"] = None

    def aggregate_table(self) -> List[ClassAggregate]:
        """Table 4 rows (in the paper's order), skipping empty classes."""
        order = (
            StalenessClass.REVOKED_ALL,
            StalenessClass.KEY_COMPROMISE,
            StalenessClass.REGISTRANT_CHANGE,
            StalenessClass.MANAGED_TLS_DEPARTURE,
        )
        rows: List[ClassAggregate] = []
        for cls in order:
            aggregate = self.findings.aggregate(cls, self.windows.get(cls))
            if aggregate is not None:
                rows.append(aggregate)
        return rows

    # -- persistence ---------------------------------------------------------

    def to_json(self, path: str) -> str:
        """Write the result as one (optionally gzipped) JSON document.

        Round-trips through :meth:`from_json`; CLI subcommands and
        checkpoints share this format instead of rebuilding results ad hoc.
        """
        from dataclasses import asdict

        from repro.util.storage import dump_json

        payload = {
            "findings": [f.to_record() for f in self.findings.all_findings()],
            "revocation_stats": (
                asdict(self.revocation_stats)
                if self.revocation_stats is not None
                else None
            ),
            "windows": {
                cls.value: [window[0], window[1]]
                for cls, window in self.windows.items()
            },
            "shard_stats": (
                self.shard_stats.to_record() if self.shard_stats is not None else None
            ),
        }
        return dump_json(path, payload)

    @classmethod
    def from_json(cls, path: str) -> "PipelineResult":
        """Rebuild a result written by :meth:`to_json`."""
        from repro.util.storage import load_json

        payload = load_json(path)
        findings = StaleFindings()
        findings.extend(
            StaleCertificate.from_record(record) for record in payload["findings"]
        )
        revocation_stats = None
        if payload.get("revocation_stats") is not None:
            revocation_stats = RevocationJoinStats(**payload["revocation_stats"])
        shard_stats = None
        if payload.get("shard_stats") is not None:
            from repro.parallel.stats import ShardStats

            shard_stats = ShardStats.from_record(payload["shard_stats"])
        return cls(
            findings=findings,
            revocation_stats=revocation_stats,
            windows={
                StalenessClass(name): (window[0], window[1])
                for name, window in payload.get("windows", {}).items()
            },
            shard_stats=shard_stats,
        )


@dataclass(frozen=True)
class DetectorSpec:
    """One registry entry: how to build and feed a detector.

    ``build`` constructs the detector from the bundle plus pipeline
    configuration; ``inputs`` selects the bundle dataset it consumes;
    ``applies`` gates the detector on that dataset being present (the
    paper runs each method only over its own collection).
    """

    key: str
    build: Callable[[DatasetBundle, "PipelineConfig"], Detector]
    inputs: Callable[[DatasetBundle], Any]
    applies: Callable[[DatasetBundle], bool]


@dataclass(frozen=True)
class PipelineConfig:
    """The non-dataset knobs shared by every pipeline front-end."""

    revocation_cutoff_day: Optional[Day] = None
    whois_tlds: Optional[Tuple[str, ...]] = ("com", "net")


#: The Section 4 methodology as data: one entry per staleness pipeline,
#: in the paper's order. ``MeasurementPipeline``, the stream engine's
#: verification path, and the parallel shard workers all iterate this.
DETECTOR_REGISTRY: Tuple[DetectorSpec, ...] = (
    DetectorSpec(
        key="key_compromise",
        build=lambda bundle, config: KeyCompromiseDetector(
            bundle.corpus, revocation_cutoff_day=config.revocation_cutoff_day
        ),
        inputs=lambda bundle: bundle.crls,
        applies=lambda bundle: bool(bundle.crls),
    ),
    DetectorSpec(
        key="registrant_change",
        build=lambda bundle, config: RegistrantChangeDetector(
            bundle.corpus, tlds=config.whois_tlds
        ),
        inputs=lambda bundle: bundle.whois_creation_pairs,
        applies=lambda bundle: bool(bundle.whois_creation_pairs),
    ),
    DetectorSpec(
        key="managed_tls",
        build=lambda bundle, config: ManagedTlsDetector(bundle.corpus),
        inputs=lambda bundle: bundle.dns_snapshots,
        applies=lambda bundle: (
            bundle.dns_snapshots is not None and len(bundle.dns_snapshots) >= 2
        ),
    ),
)


def merge_revocation_stats(
    parts: Sequence[RevocationJoinStats],
) -> RevocationJoinStats:
    """Sum per-shard join accounting into the global view.

    Valid because shards partition CRL entries by (authority key id,
    serial) ownership: every counter is a disjoint count.
    """
    merged = RevocationJoinStats()
    for part in parts:
        for stat_field in dataclass_fields(RevocationJoinStats):
            setattr(
                merged,
                stat_field.name,
                getattr(merged, stat_field.name) + getattr(part, stat_field.name),
            )
    return merged


class MeasurementPipeline:
    """Runs the Section 4 methodology over a dataset bundle."""

    def __init__(
        self,
        bundle: DatasetBundle,
        revocation_cutoff_day: Optional[Day] = None,
        whois_tlds: Optional[Sequence[str]] = ("com", "net"),
    ) -> None:
        """Direct construction still works but :meth:`run_bundle` is the
        preferred entry point (it also routes to the sharded parallel
        engine via ``workers``); this constructor is kept for backwards
        compatibility and may gain a deprecation warning in a future
        release."""
        self._bundle = bundle
        self._config = PipelineConfig(
            revocation_cutoff_day=revocation_cutoff_day,
            whois_tlds=tuple(whois_tlds) if whois_tlds is not None else None,
        )

    @classmethod
    def run_bundle(
        cls,
        bundle: DatasetBundle,
        revocation_cutoff_day: Optional[Day] = None,
        whois_tlds: Optional[Sequence[str]] = ("com", "net"),
        workers: int = 1,
    ) -> PipelineResult:
        """One-call entry point: run the methodology over *bundle*.

        ``workers > 1`` routes through
        :class:`~repro.parallel.ParallelMeasurementPipeline`, which shards
        the bundle and fans detection out over a process pool while
        producing a findings set identical to the single-process run.
        """
        if workers > 1:
            from repro.parallel import ParallelMeasurementPipeline

            return ParallelMeasurementPipeline(
                bundle,
                workers=workers,
                revocation_cutoff_day=revocation_cutoff_day,
                whois_tlds=whois_tlds,
            ).run()
        return cls(
            bundle,
            revocation_cutoff_day=revocation_cutoff_day,
            whois_tlds=whois_tlds,
        ).run()

    def run(self) -> PipelineResult:
        findings = StaleFindings()
        revocation_stats: Optional[RevocationJoinStats] = None

        with span("pipeline_run"):
            applicable = [
                spec for spec in DETECTOR_REGISTRY if spec.applies(self._bundle)
            ]
            progress = phase_progress("detect_detectors")
            progress.set_total(len(applicable))
            for spec in applicable:
                detector, _ = run_detector(spec, self._bundle, self._config, findings)
                progress.add(1)
                if spec.key == "key_compromise":
                    revocation_stats = detector.stats

        return PipelineResult(
            findings=findings,
            revocation_stats=revocation_stats,
            windows=dict(self._bundle.windows),
        )


def run_detector(
    spec: DetectorSpec,
    bundle: DatasetBundle,
    config: "PipelineConfig",
    findings: StaleFindings,
) -> Tuple[Detector, float]:
    """Build and run one registry detector with shared obs instrumentation.

    Returns ``(detector, elapsed_seconds)``. Records the wall time (build
    + detect) into the ``repro_detector_seconds`` histogram and the
    findings added into ``repro_findings_total`` by staleness class —
    identically for the batch pipeline and the parallel shard workers
    (:func:`repro.parallel.executor.run_shard`), so serial and sharded
    runs report into the same series.
    """
    from time import perf_counter

    registry = get_registry()
    before = {cls: len(findings.of_class(cls)) for cls in StalenessClass}
    with span("detector", detector=spec.key):
        started = perf_counter()
        detector = spec.build(bundle, config)
        detector.detect(spec.inputs(bundle), findings)
        elapsed = perf_counter() - started
    registry.histogram(
        names.DETECTOR_SECONDS, names.DETECTOR_SECONDS_HELP, labels=("detector",)
    ).observe(elapsed, detector=spec.key)
    findings_counter = registry.counter(
        names.FINDINGS_TOTAL, names.FINDINGS_TOTAL_HELP, labels=("staleness_class",)
    )
    for cls in StalenessClass:
        added = len(findings.of_class(cls)) - before[cls]
        if added:
            findings_counter.inc(added, staleness_class=cls.value)
    return detector, elapsed
