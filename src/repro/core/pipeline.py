"""End-to-end measurement pipeline.

Binds the three detectors to the dataset bundle (CT corpus, CRL series,
WHOIS creation pairs, DNS snapshots) and returns a single
:class:`PipelineResult` from which every table and figure is derived. This
is the programmatic equivalent of the paper's Section 4 methodology run
end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.detectors.key_compromise import KeyCompromiseDetector, RevocationJoinStats
from repro.core.detectors.managed_tls import ManagedTlsDetector
from repro.core.detectors.registrant_change import RegistrantChangeDetector
from repro.core.stale import ClassAggregate, StalenessClass, StaleFindings
from repro.ct.dedup import CertificateCorpus
from repro.dns.snapshots import SnapshotStore
from repro.revocation.crl import CertificateRevocationList
from repro.util.dates import Day


@dataclass
class DatasetBundle:
    """The four datasets of paper Table 3."""

    corpus: CertificateCorpus
    crls: List[CertificateRevocationList] = field(default_factory=list)
    whois_creation_pairs: List[Tuple[str, Day]] = field(default_factory=list)
    dns_snapshots: Optional[SnapshotStore] = None
    #: Observation windows per staleness class, (first_day, last_day);
    #: used for the daily-rate denominators in Table 4.
    windows: Dict[StalenessClass, Tuple[Day, Day]] = field(default_factory=dict)


@dataclass
class PipelineResult:
    """Everything one measurement run produces."""

    findings: StaleFindings
    revocation_stats: Optional[RevocationJoinStats] = None
    windows: Dict[StalenessClass, Tuple[Day, Day]] = field(default_factory=dict)

    def aggregate_table(self) -> List[ClassAggregate]:
        """Table 4 rows (in the paper's order), skipping empty classes."""
        order = (
            StalenessClass.REVOKED_ALL,
            StalenessClass.KEY_COMPROMISE,
            StalenessClass.REGISTRANT_CHANGE,
            StalenessClass.MANAGED_TLS_DEPARTURE,
        )
        rows: List[ClassAggregate] = []
        for cls in order:
            aggregate = self.findings.aggregate(cls, self.windows.get(cls))
            if aggregate is not None:
                rows.append(aggregate)
        return rows


class MeasurementPipeline:
    """Runs the Section 4 methodology over a dataset bundle."""

    def __init__(
        self,
        bundle: DatasetBundle,
        revocation_cutoff_day: Optional[Day] = None,
        whois_tlds: Optional[Sequence[str]] = ("com", "net"),
    ) -> None:
        self._bundle = bundle
        self._revocation_cutoff = revocation_cutoff_day
        self._whois_tlds = whois_tlds

    def run(self) -> PipelineResult:
        findings = StaleFindings()
        revocation_stats: Optional[RevocationJoinStats] = None

        if self._bundle.crls:
            detector = KeyCompromiseDetector(
                self._bundle.corpus, revocation_cutoff_day=self._revocation_cutoff
            )
            detector.detect(self._bundle.crls, findings)
            revocation_stats = detector.stats

        if self._bundle.whois_creation_pairs:
            RegistrantChangeDetector(self._bundle.corpus, tlds=self._whois_tlds).detect(
                self._bundle.whois_creation_pairs, findings
            )

        if self._bundle.dns_snapshots is not None and len(self._bundle.dns_snapshots) >= 2:
            ManagedTlsDetector(self._bundle.corpus).detect(
                self._bundle.dns_snapshots, findings
            )

        return PipelineResult(
            findings=findings,
            revocation_stats=revocation_stats,
            windows=dict(self._bundle.windows),
        )
