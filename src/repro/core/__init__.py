"""The paper's primary contribution: stale-certificate detection and
certificate-lifetime policy analysis.

* :mod:`repro.core.taxonomy` — the certificate-information and invalidation-
  event taxonomies (paper Tables 1 and 2).
* :mod:`repro.core.stale` — the :class:`StaleCertificate` finding record and
  staleness accounting.
* :mod:`repro.core.detectors` — the three third-party staleness pipelines
  (Sections 4.1–4.3).
* :mod:`repro.core.lifetime` — survival analysis and maximum-lifetime capping
  simulation (Section 6).
* :mod:`repro.core.pipeline` — end-to-end orchestration over the datasets.
"""

from repro.core.stale import StalenessClass, StaleCertificate, StaleFindings
from repro.core.taxonomy import (
    CERTIFICATE_INFORMATION_TAXONOMY,
    INVALIDATION_EVENTS,
    CertificateInfoCategory,
    ControlledBy,
    InvalidationEvent,
    SecurityImplication,
    classify_invalidation,
)
from repro.core.detectors import (
    KeyCompromiseDetector,
    KeyRotationDetector,
    ManagedTlsDetector,
    RegistrantChangeDetector,
)
from repro.core.advisory import AdvisoryReport, StaleCertificateAdvisor
from repro.core.lifetime import (
    CapResult,
    LifetimePolicySimulator,
    survival_curve_for,
)
from repro.core.pipeline import MeasurementPipeline, PipelineResult

__all__ = [
    "StalenessClass",
    "StaleCertificate",
    "StaleFindings",
    "CERTIFICATE_INFORMATION_TAXONOMY",
    "INVALIDATION_EVENTS",
    "CertificateInfoCategory",
    "ControlledBy",
    "InvalidationEvent",
    "SecurityImplication",
    "classify_invalidation",
    "KeyCompromiseDetector",
    "KeyRotationDetector",
    "AdvisoryReport",
    "StaleCertificateAdvisor",
    "ManagedTlsDetector",
    "RegistrantChangeDetector",
    "CapResult",
    "LifetimePolicySimulator",
    "survival_curve_for",
    "MeasurementPipeline",
    "PipelineResult",
]
