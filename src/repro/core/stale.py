"""Stale-certificate finding records and aggregation.

A :class:`StaleCertificate` is one detected instance of a valid certificate
whose subscriber information has been invalidated; its *staleness period*
runs from the invalidation event to the certificate's notAfter (paper
Sections 4.1–4.3). :class:`StaleFindings` collects findings per staleness
class and computes the aggregates every table and figure is built from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.pki.certificate import Certificate
from repro.util.dates import Day, day_to_iso
from repro.util.stats import Ecdf, SurvivalCurve


class StalenessClass(enum.Enum):
    """The third-party staleness classes the paper measures, the
    all-revocations baseline from Table 4's first row, and the first-party
    key-rotation extension from §3.4 (not part of the default pipeline)."""

    REVOKED_ALL = "revoked_all"
    KEY_COMPROMISE = "key_compromise"
    REGISTRANT_CHANGE = "registrant_change"
    MANAGED_TLS_DEPARTURE = "managed_tls_departure"
    FIRST_PARTY_KEY_ROTATION = "first_party_key_rotation"


@dataclass(frozen=True)
class StaleCertificate:
    """One detected stale certificate."""

    certificate: Certificate
    staleness_class: StalenessClass
    invalidation_day: Day
    #: The domain whose control changed (registrant change / managed TLS);
    #: None for key compromise, where every SAN is affected.
    affected_domain: Optional[str] = None
    detail: str = ""

    def __post_init__(self) -> None:
        if self.invalidation_day > self.certificate.not_after:
            raise ValueError(
                "invalidation after expiration is not a stale certificate "
                f"({day_to_iso(self.invalidation_day)} > "
                f"{day_to_iso(self.certificate.not_after)})"
            )

    @property
    def stale_from(self) -> Day:
        return self.invalidation_day

    @property
    def stale_until(self) -> Day:
        return self.certificate.not_after

    @property
    def staleness_days(self) -> int:
        """Length of the abusable window (Figure 6's x-axis)."""
        return self.stale_until - self.stale_from

    @property
    def days_to_invalidation(self) -> int:
        """Days from issuance to the invalidation event (Figure 8's x-axis)."""
        return self.invalidation_day - self.certificate.not_before

    def affected_fqdns(self) -> FrozenSet[str]:
        """FQDNs a third-party could impersonate through this finding."""
        if self.affected_domain is None:
            return self.certificate.fqdns()
        return frozenset(
            fqdn
            for fqdn in self.certificate.fqdns()
            if fqdn == self.affected_domain or fqdn.endswith("." + self.affected_domain)
        )

    def affected_e2lds(self) -> FrozenSet[str]:
        if self.affected_domain is None:
            return self.certificate.e2lds()
        from repro.psl.registered import e2ld  # local import avoids cycle at module load

        registrable = e2ld(self.affected_domain)
        return frozenset({registrable}) if registrable else frozenset()

    def is_stale_on(self, query_day: Day) -> bool:
        return self.stale_from <= query_day <= self.stale_until

    def to_record(self) -> dict:
        """Plain-dict form for JSONL checkpointing."""
        return {
            "certificate": self.certificate.to_record(),
            "staleness_class": self.staleness_class.value,
            "invalidation_day": self.invalidation_day,
            "affected_domain": self.affected_domain,
            "detail": self.detail,
        }

    @classmethod
    def from_record(cls, record: dict) -> "StaleCertificate":
        return cls(
            certificate=Certificate.from_record(record["certificate"]),
            staleness_class=StalenessClass(record["staleness_class"]),
            invalidation_day=record["invalidation_day"],
            affected_domain=record.get("affected_domain"),
            detail=record.get("detail", ""),
        )


@dataclass
class ClassAggregate:
    """Aggregate counts for one staleness class (a Table 4 row)."""

    staleness_class: StalenessClass
    first_day: Day
    last_day: Day
    stale_certificates: int
    stale_fqdns: int
    stale_e2lds: int

    @property
    def observation_days(self) -> int:
        return max(1, self.last_day - self.first_day + 1)

    @property
    def daily_certificates(self) -> float:
        return self.stale_certificates / self.observation_days

    @property
    def daily_fqdns(self) -> float:
        return self.stale_fqdns / self.observation_days

    @property
    def daily_e2lds(self) -> float:
        return self.stale_e2lds / self.observation_days


class StaleFindings:
    """All findings from one measurement run, grouped by class."""

    def __init__(self) -> None:
        self._by_class: Dict[StalenessClass, List[StaleCertificate]] = {
            cls: [] for cls in StalenessClass
        }

    def add(self, finding: StaleCertificate) -> None:
        self._by_class[finding.staleness_class].append(finding)

    def extend(self, findings: Iterable[StaleCertificate]) -> None:
        for finding in findings:
            self.add(finding)

    def of_class(self, cls: StalenessClass) -> List[StaleCertificate]:
        return list(self._by_class[cls])

    def all_findings(self) -> Iterator[StaleCertificate]:
        for findings in self._by_class.values():
            yield from findings

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_class.values())

    # -- aggregates ---------------------------------------------------------

    def aggregate(
        self,
        cls: StalenessClass,
        window: Optional[Tuple[Day, Day]] = None,
    ) -> Optional[ClassAggregate]:
        """Table 4 style aggregate for one class.

        ``window`` overrides the observation period (the paper reports daily
        rates over each method's own collection window).
        """
        findings = self._by_class[cls]
        if not findings:
            return None
        if window is None:
            first = min(f.invalidation_day for f in findings)
            last = max(f.invalidation_day for f in findings)
        else:
            first, last = window
        fqdns: Set[str] = set()
        e2lds: Set[str] = set()
        for finding in findings:
            fqdns.update(finding.affected_fqdns())
            e2lds.update(finding.affected_e2lds())
        return ClassAggregate(
            staleness_class=cls,
            first_day=first,
            last_day=last,
            stale_certificates=len(findings),
            stale_fqdns=len(fqdns),
            stale_e2lds=len(e2lds),
        )

    def staleness_ecdf(self, cls: StalenessClass) -> Ecdf:
        """Distribution of staleness periods (Figure 6)."""
        findings = self._by_class[cls]
        if not findings:
            raise ValueError(f"no findings for {cls.value}")
        return Ecdf(f.staleness_days for f in findings)

    def survival_curve(self, cls: StalenessClass) -> SurvivalCurve:
        """Days-to-invalidation survival (Figure 8)."""
        findings = self._by_class[cls]
        if not findings:
            raise ValueError(f"no findings for {cls.value}")
        return SurvivalCurve(f.days_to_invalidation for f in findings)

    def total_staleness_days(self, cls: StalenessClass) -> int:
        return sum(f.staleness_days for f in self._by_class[cls])

    def live_count_series(
        self,
        cls: StalenessClass,
        first_day: Day,
        last_day: Day,
        step_days: int = 7,
    ) -> List[Tuple[Day, int]]:
        """How many stale certificates are *live* (valid and invalidated) on
        each sampled day — the paper intro's 'replenishing population'.

        Computed with a sweep over (start, end) events rather than per-day
        scans, so long windows stay cheap.
        """
        if step_days <= 0:
            raise ValueError("step must be positive")
        starts = sorted(f.stale_from for f in self._by_class[cls])
        ends = sorted(f.stale_until for f in self._by_class[cls])
        series: List[Tuple[Day, int]] = []
        si = ei = 0
        for current in range(first_day, last_day + 1, step_days):
            while si < len(starts) and starts[si] <= current:
                si += 1
            while ei < len(ends) and ends[ei] < current:
                ei += 1
            series.append((current, si - ei))
        return series
