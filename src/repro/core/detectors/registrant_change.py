"""Registrant-change staleness via registry creation dates (paper §4.2).

For every (domain, registry creation date) pair, a creation date that is
*not* the first for that domain signals a deletion followed by
re-registration — a conservative public-re-registration signal. A stale
certificate is any certificate covering the domain whose validity strictly
spans the new creation date::

    notBefore < registryCreationDate < notAfter

The stale period runs from the creation date to notAfter. Transfers and
pre-release re-registrations do not reset the creation date and are missed —
the detector is deliberately a lower bound (the recall ablation quantifies
the gap against simulator ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ct.dedup import CertificateCorpus
from repro.core.stale import StaleCertificate, StalenessClass, StaleFindings
from repro.pki.certificate import Certificate
from repro.psl.registered import e2ld
from repro.util.dates import Day


@dataclass(frozen=True)
class ReRegistration:
    """A detected public re-registration of a domain."""

    domain: str
    creation_day: Day
    previous_creation_day: Day


@dataclass
class RegistrantJoinStats:
    """Accounting for the creation-date/validity join."""

    re_registration_events: int = 0
    events_joining_certificates: int = 0
    findings: int = 0


def find_re_registrations(
    creation_pairs: Iterable[Tuple[str, Day]],
    tlds: Optional[Sequence[str]] = ("com", "net"),
) -> List[ReRegistration]:
    """Reduce raw (domain, creation date) pairs to re-registration events.

    The same pair appears in many WHOIS crawls; only distinct creation dates
    matter, and only the second and later date per domain signal
    re-registration. ``tlds`` restricts to registries whose thin WHOIS the
    paper considers reliable (Verisign's .com/.net); pass None to disable.
    """
    dates_by_domain: Dict[str, set] = {}
    for domain, creation_day in creation_pairs:
        if tlds is not None and domain.rsplit(".", 1)[-1] not in tlds:
            continue
        dates_by_domain.setdefault(domain, set()).add(creation_day)
    events: List[ReRegistration] = []
    for domain, dates in dates_by_domain.items():
        ordered = sorted(dates)
        for previous, current in zip(ordered, ordered[1:]):
            events.append(ReRegistration(domain, current, previous))
    events.sort(key=lambda e: (e.creation_day, e.domain))
    return events


class RegistrantChangeDetector:
    """Joins re-registration events against certificate validity windows."""

    def __init__(self, corpus: CertificateCorpus, tlds: Optional[Sequence[str]] = ("com", "net")) -> None:
        self._corpus = corpus
        self._tlds = tlds
        self._certs_by_e2ld: Optional[Dict[str, List[Certificate]]] = None
        self.stats = RegistrantJoinStats()

    def _index(self) -> Dict[str, List[Certificate]]:
        """e2LD -> certificates with a SAN under that e2LD."""
        if self._certs_by_e2ld is None:
            index: Dict[str, List[Certificate]] = {}
            for certificate in self._corpus.certificates():
                for registrable in certificate.e2lds():
                    index.setdefault(registrable, []).append(certificate)
            self._certs_by_e2ld = index
        return self._certs_by_e2ld

    def _candidates(self, lookup: str) -> Sequence[Certificate]:
        """Certificates joining *lookup*, in corpus order.

        Columnar corpora answer this from their sorted e2LD index without
        hydrating the rest of the corpus; plain corpora fall back to the
        one-shot full index build.
        """
        indexed = getattr(self._corpus, "certificates_for_e2ld", None)
        if indexed is not None:
            return indexed(lookup)
        return self._index().get(lookup, ())

    def detect(
        self,
        creation_pairs: Iterable[Tuple[str, Day]],
        findings: Optional[StaleFindings] = None,
    ) -> StaleFindings:
        """Run the full pipeline from raw creation pairs."""
        out = findings if findings is not None else StaleFindings()
        events = find_re_registrations(creation_pairs, self._tlds)
        self.stats = RegistrantJoinStats(re_registration_events=len(events))
        emitted = set()
        for event in events:
            registrable = e2ld(event.domain)
            lookup = registrable if registrable is not None else event.domain
            candidates = self._candidates(lookup)
            if candidates:
                self.stats.events_joining_certificates += 1
            for certificate in candidates:  # candidates by e2LD
                if not certificate.validity.contains(event.creation_day, strict=True):
                    continue
                if not _covers_registration(certificate, event.domain):
                    continue
                key = (certificate.dedup_fingerprint(), event.domain, event.creation_day)
                if key in emitted:
                    continue
                emitted.add(key)
                self.stats.findings += 1
                out.add(
                    StaleCertificate(
                        certificate=certificate,
                        staleness_class=StalenessClass.REGISTRANT_CHANGE,
                        invalidation_day=event.creation_day,
                        affected_domain=event.domain,
                        detail=f"re_registered_after={event.previous_creation_day}",
                    )
                )
        return out


def _covers_registration(certificate: Certificate, domain: str) -> bool:
    """Whether any SAN is at or beneath the re-registered domain."""
    for san in certificate.fqdns():
        if san == domain or san.endswith("." + domain):
            return True
    return False
