"""First-party staleness: key rotation / disuse (paper §3.4, Table 2).

The paper measures only the three third-party classes, but its taxonomy
notes that "the majority of certificate invalidation events lead to stale
certificates controlled by the domain owner" — chiefly key rotation, where
a replacement certificate (new key, same names) is issued while the prior
certificate is still unexpired. The old key remains technically valid but
disused; the security impact is minimal because the owner still controls it.

This detector quantifies that claim over a CT corpus: the first-party
ablation bench checks that rotation staleness dwarfs the third-party
classes, exactly as §3.4 asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.stale import StaleCertificate, StalenessClass, StaleFindings
from repro.ct.dedup import CertificateCorpus
from repro.pki.certificate import Certificate


@dataclass(frozen=True)
class Rotation:
    """A detected key rotation: *superseded* gives way to *replacement*."""

    superseded: Certificate
    replacement: Certificate

    @property
    def overlap_days(self) -> int:
        """Days the disused key remains valid after its replacement."""
        return max(0, self.superseded.not_after - self.replacement.not_before)


class KeyRotationDetector:
    """Finds same-name, different-key reissuance with validity overlap."""

    def __init__(self, corpus: CertificateCorpus) -> None:
        self._corpus = corpus

    def find_rotations(self) -> List[Rotation]:
        """Group certificates by identical SAN sets and issuer; each
        consecutive pair with a key change and overlapping validity is a
        rotation (ACME renewals are the dominant source)."""
        groups: Dict[Tuple[FrozenSet[str], str], List[Certificate]] = {}
        for certificate in self._corpus.certificates():
            key = (certificate.fqdns(), certificate.issuer_name)
            groups.setdefault(key, []).append(certificate)
        rotations: List[Rotation] = []
        for members in groups.values():
            if len(members) < 2:
                continue
            members.sort(key=lambda c: (c.not_before, c.serial))
            for previous, current in zip(members, members[1:]):
                if current.not_before > previous.not_after:
                    continue  # gap: expiry-driven renewal, nothing stale
                if current.subject_key.key_id == previous.subject_key.key_id:
                    continue  # key reuse: nothing became disused
                rotations.append(Rotation(superseded=previous, replacement=current))
        return rotations

    def detect(self, findings: Optional[StaleFindings] = None) -> StaleFindings:
        """Emit first-party stale-certificate records for every rotation."""
        out = findings if findings is not None else StaleFindings()
        for rotation in self.find_rotations():
            if rotation.overlap_days <= 0:
                continue
            out.add(
                StaleCertificate(
                    certificate=rotation.superseded,
                    staleness_class=StalenessClass.FIRST_PARTY_KEY_ROTATION,
                    invalidation_day=rotation.replacement.not_before,
                    detail=f"replaced_by={rotation.replacement.serial}",
                )
            )
        return out
