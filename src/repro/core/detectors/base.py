"""Common detector protocol.

Every staleness detector — the three batch pipelines of Sections 4.1–4.3
and their incremental streaming counterparts — shares one shape: construct
it from the data it joins against, feed it the dataset it consumes via
``detect(inputs, findings)``, and read join accounting from ``stats``.
The batch pipeline and the streaming engine both iterate registries of
detectors with this shape instead of hard-coding each class, and the
sharded parallel engine (:mod:`repro.parallel`) relies on detectors being
uniformly constructible and picklable inside worker processes.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, runtime_checkable

from repro.core.stale import StaleFindings


@runtime_checkable
class Detector(Protocol):
    """The shape shared by all staleness detectors.

    ``inputs`` is whatever dataset the detector joins: a CRL series for
    key compromise, (domain, creation day) pairs for registrant change, a
    :class:`~repro.dns.snapshots.SnapshotStore` for managed TLS, or an
    event iterable for the incremental stream detectors. ``detect``
    appends to (and returns) *findings*; ``stats`` exposes the detector's
    join accounting (``None`` where a detector keeps no counters).
    """

    def detect(
        self, inputs: Any, findings: Optional[StaleFindings] = None
    ) -> StaleFindings:
        ...

    @property
    def stats(self) -> Any:
        ...
