"""Managed-TLS departure via daily DNS diffing (paper §4.3).

A Cloudflare-managed certificate is identifiable by the
``sni*.cloudflaressl.com`` SAN entry accompanying customer domains. A
*departure* is detected when any Cloudflare nameserver or CNAME
(``*.ns.cloudflare.com`` / ``*.cdn.cloudflare.com``) present for a domain on
one scan day is absent on the next. If the departing domain still has an
unexpired Cloudflare-managed certificate, the CDN retains a valid key for a
domain it no longer serves — a third-party stale certificate from the
departure day to notAfter.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.ct.dedup import CertificateCorpus
from repro.core.stale import StaleCertificate, StalenessClass, StaleFindings
from repro.dns.records import RecordType
from repro.dns.snapshots import SnapshotStore, diff_days
from repro.pki.certificate import Certificate
from repro.util.dates import Day

#: SAN suffix marking Cloudflare-managed certificates.
CLOUDFLARE_MANAGED_SAN_SUFFIX = "cloudflaressl.com"
#: Managed-certificate SAN shape: sni<digits>.cloudflaressl.com.
_SNI_SAN_RE = re.compile(r"^sni\d+\.cloudflaressl\.com$")
#: Delegation names that indicate Cloudflare is serving the domain.
_CLOUDFLARE_DELEGATION_RE = re.compile(
    r"\.(ns|cdn)\.cloudflare\.com$"
)


def is_cloudflare_managed_certificate(certificate: Certificate) -> bool:
    """Whether the certificate is CDN-managed (vs customer-uploaded).

    The sni*.cloudflaressl.com SAN is what distinguishes Cloudflare-managed
    issuance from certificates a customer uploaded themselves (paper §4.3).
    """
    return any(_SNI_SAN_RE.match(san) for san in certificate.san_dns_names)


def has_managed_marker_san(san_dns_names: Iterable[str]) -> bool:
    """Row-level form of :func:`is_cloudflare_managed_certificate`.

    The columnar data plane classifies certificates straight from the
    ``san_dns_names`` cell while building the ``managed`` secondary
    index, without hydrating a :class:`Certificate`.
    """
    return any(_SNI_SAN_RE.match(san) for san in san_dns_names)


def is_cloudflare_delegation(target: str) -> bool:
    return bool(_CLOUDFLARE_DELEGATION_RE.search(target.lower().rstrip(".")))


@dataclass(frozen=True)
class Departure:
    """One detected managed-TLS departure."""

    apex: str
    departure_day: Day
    removed_targets: FrozenSet[str]


@dataclass
class DepartureJoinStats:
    """Accounting for the departure/managed-certificate join."""

    managed_certificates_indexed: int = 0
    departures_detected: int = 0
    findings: int = 0


def find_departures(store: SnapshotStore) -> List[Departure]:
    """Scan consecutive snapshot pairs for Cloudflare delegation loss.

    Real daily scans suffer transient lookup failures; a domain that merely
    *vanished for one day* and reappears still Cloudflare-delegated is scan
    loss, not a departure. The paper compares each day "with neighboring
    days" — so a disappearance only counts when the following scan (when
    one exists) confirms the domain is still gone or no longer delegated to
    Cloudflare.
    """
    departures: List[Departure] = []
    ordered_days = store.days()
    day_index = {d: i for i, d in enumerate(ordered_days)}
    for before, after in store.consecutive_pairs():
        for diff in diff_days(before, after):
            removed = {
                target
                for target in (
                    diff.removed_of(RecordType.NS) | diff.removed_of(RecordType.CNAME)
                )
                if is_cloudflare_delegation(target)
            }
            if not removed:
                continue
            if diff.disappeared:
                if _reappears_on_cloudflare(
                    store, ordered_days, day_index, after.day, diff.apex
                ):
                    continue  # transient scan loss
            else:
                # Verify no Cloudflare delegation remains on the later day:
                # a partial nameserver shuffle within Cloudflare is not a
                # departure.
                obs_after = after.get(diff.apex)
                if obs_after is not None and any(
                    is_cloudflare_delegation(t) for t in obs_after.delegation_targets()
                ):
                    continue
            departures.append(
                Departure(
                    apex=diff.apex,
                    departure_day=diff.day_after,
                    removed_targets=frozenset(removed),
                )
            )
    return departures


#: How many later scans to consult before trusting a disappearance.
#: Consecutive lookup failures happen; the first *observation* decides.
DISAPPEARANCE_LOOKAHEAD_SCANS = 3


def _reappears_on_cloudflare(
    store: SnapshotStore,
    ordered_days: List,
    day_index: Dict,
    after_day,
    apex: str,
) -> bool:
    start = day_index[after_day] + 1
    for position in range(start, min(start + DISAPPEARANCE_LOOKAHEAD_SCANS, len(ordered_days))):
        snapshot = store.get(ordered_days[position])
        obs = snapshot.get(apex) if snapshot is not None else None
        if obs is None:
            continue  # still unobserved; could be another lookup failure
        # First actual observation decides: back on Cloudflare = scan loss.
        return any(is_cloudflare_delegation(t) for t in obs.delegation_targets())
    return False  # never reappeared within the lookahead: trust the loss


class ManagedTlsDetector:
    """Joins DNS-observed departures against Cloudflare-managed certs."""

    def __init__(self, corpus: CertificateCorpus) -> None:
        self._corpus = corpus
        self._managed_by_domain: Optional[Dict[str, List[Certificate]]] = None
        self.stats = DepartureJoinStats()

    def _managed(self) -> "Iterable[Certificate]":
        """The managed certificates, in corpus order.

        Columnar corpora serve these from their precomputed managed-row
        index; plain corpora scan and filter. Both paths re-check the
        marker-SAN predicate so the semantics stay in one place.
        """
        indexed = getattr(self._corpus, "managed_certificates", None)
        source = indexed() if indexed is not None else self._corpus.certificates()
        return (
            certificate
            for certificate in source
            if is_cloudflare_managed_certificate(certificate)
        )

    def _index(self) -> Dict[str, List[Certificate]]:
        """Customer domain -> Cloudflare-managed certificates covering it."""
        if self._managed_by_domain is None:
            index: Dict[str, List[Certificate]] = {}
            for certificate in self._managed():
                for san in certificate.fqdns():
                    if san.endswith("." + CLOUDFLARE_MANAGED_SAN_SUFFIX):
                        continue  # the CDN's own marker SAN
                    index.setdefault(san, []).append(certificate)
            self._managed_by_domain = index
        return self._managed_by_domain

    def detect(
        self,
        store: SnapshotStore,
        findings: Optional[StaleFindings] = None,
    ) -> StaleFindings:
        out = findings if findings is not None else StaleFindings()
        index = self._index()
        departures = find_departures(store)
        self.stats = DepartureJoinStats(
            managed_certificates_indexed=len(
                {c.dedup_fingerprint() for certs in index.values() for c in certs}
            ),
            departures_detected=len(departures),
        )
        emitted: Set[Tuple[str, str, Day]] = set()
        for departure in departures:
            for domain, certificates in _domains_under(index, departure.apex):
                for certificate in certificates:
                    if not certificate.is_valid_on(departure.departure_day):
                        continue
                    key = (
                        certificate.dedup_fingerprint(),
                        domain,
                        departure.departure_day,
                    )
                    if key in emitted:
                        continue
                    emitted.add(key)
                    self.stats.findings += 1
                    out.add(
                        StaleCertificate(
                            certificate=certificate,
                            staleness_class=StalenessClass.MANAGED_TLS_DEPARTURE,
                            invalidation_day=departure.departure_day,
                            affected_domain=domain,
                            detail=f"left={','.join(sorted(departure.removed_targets))}",
                        )
                    )
        return out


def _domains_under(
    index: Dict[str, List[Certificate]], apex: str
) -> Iterable[Tuple[str, List[Certificate]]]:
    """Certificate-covered FQDNs at or beneath a departed apex.

    The scan operates on apexes (e2LDs from zone files); managed
    certificates may cover subdomains (www, mail, ...), all of which become
    stale when the apex leaves the CDN.
    """
    suffix = "." + apex
    for domain, certificates in index.items():
        if domain == apex or domain.endswith(suffix):
            yield domain, certificates
