"""Key-compromise staleness via revocation cross-referencing (paper §4.1).

Pipeline, exactly as the paper describes:

1. Merge the daily CRL collections into one revocation set keyed by
   (authority key id, serial).
2. Cross-reference against the CT corpus to recover certificate content
   (CRLs carry no certificate copy).
3. Filter outliers: revoked before validity began, revoked after expiration,
   and revoked more than 13 months before CRL collection started (stale CRL
   baggage, not contemporary revocation behaviour).
4. Every surviving revocation is a reported invalidation event
   (``REVOKED_ALL``); entries whose reason is keyCompromise form the
   third-party ``KEY_COMPROMISE`` class.

The staleness period conservatively assumes the revocation was issued as
soon as the invalidation occurred: it runs from the revocation day to
notAfter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ct.dedup import CertificateCorpus
from repro.core.stale import StaleCertificate, StalenessClass, StaleFindings
from repro.revocation.crl import CertificateRevocationList, CrlEntry, merge_crl_series
from repro.revocation.reasons import RevocationReason
from repro.util.dates import Day


@dataclass
class RevocationJoinStats:
    """Accounting mirroring the paper's reported filter counts."""

    crl_entries_merged: int = 0
    matched_in_ct: int = 0
    unmatched: int = 0
    filtered_revoked_before_valid: int = 0
    filtered_revoked_after_expiration: int = 0
    filtered_before_cutoff: int = 0
    survivors: int = 0


class KeyCompromiseDetector:
    """Cross-references a CRL series against a CT corpus."""

    def __init__(
        self,
        corpus: CertificateCorpus,
        revocation_cutoff_day: Optional[Day] = None,
    ) -> None:
        """``revocation_cutoff_day``: drop revocations before this day
        (the paper uses 13 months prior to CRL collection start)."""
        self._corpus = corpus
        self._cutoff = revocation_cutoff_day
        self.stats = RevocationJoinStats()

    def detect(
        self,
        crls: Iterable[CertificateRevocationList],
        findings: Optional[StaleFindings] = None,
        apply_filters: bool = True,
    ) -> StaleFindings:
        """Run the pipeline; appends to (and returns) *findings*.

        ``apply_filters=False`` disables step 3 for the ablation bench that
        quantifies the filters' effect.
        """
        out = findings if findings is not None else StaleFindings()
        merged = merge_crl_series(crls)
        self.stats = RevocationJoinStats(crl_entries_merged=len(merged))
        index = self._corpus.by_revocation_key()
        for key, entry in merged.items():
            certificate = index.get(key)
            if certificate is None:
                self.stats.unmatched += 1
                continue
            self.stats.matched_in_ct += 1
            if apply_filters and not self._passes_filters(entry, certificate):
                continue
            self.stats.survivors += 1
            invalidation_day = max(entry.revocation_day, certificate.not_before)
            invalidation_day = min(invalidation_day, certificate.not_after)
            out.add(
                StaleCertificate(
                    certificate=certificate,
                    staleness_class=StalenessClass.REVOKED_ALL,
                    invalidation_day=invalidation_day,
                    detail=f"reason={entry.reason.name.lower()}",
                )
            )
            if entry.reason is RevocationReason.KEY_COMPROMISE:
                out.add(
                    StaleCertificate(
                        certificate=certificate,
                        staleness_class=StalenessClass.KEY_COMPROMISE,
                        invalidation_day=invalidation_day,
                        detail="reason=key_compromise",
                    )
                )
        return out

    def _passes_filters(self, entry: CrlEntry, certificate) -> bool:
        if entry.revocation_day < certificate.not_before:
            self.stats.filtered_revoked_before_valid += 1
            return False
        if entry.revocation_day > certificate.not_after:
            self.stats.filtered_revoked_after_expiration += 1
            return False
        if self._cutoff is not None and entry.revocation_day < self._cutoff:
            self.stats.filtered_before_cutoff += 1
            return False
        return True


def monthly_key_compromise_by_issuer(
    findings: StaleFindings,
) -> Dict[Tuple[str, str], int]:
    """(month, issuer) -> count of key-compromise revocations (Figure 4)."""
    from repro.util.dates import month_key

    series: Dict[Tuple[str, str], int] = {}
    for finding in findings.of_class(StalenessClass.KEY_COMPROMISE):
        key = (month_key(finding.invalidation_day), finding.certificate.issuer_name)
        series[key] = series.get(key, 0) + 1
    return series
