"""The three third-party stale-certificate detection pipelines.

Each detector mirrors one methodology subsection of the paper:

* :class:`KeyCompromiseDetector` — Section 4.1: cross-reference daily CRL
  collections with the CT corpus, filter outliers, split out the
  key-compromise reason.
* :class:`RegistrantChangeDetector` — Section 4.2: intersect registry
  creation dates with certificate validity windows.
* :class:`ManagedTlsDetector` — Section 4.3: day-over-day disappearance of
  Cloudflare NS/CNAME delegation for domains holding Cloudflare-managed
  certificates.

All three (and their incremental streaming counterparts in
:mod:`repro.stream.detectors`) satisfy the :class:`Detector` protocol:
``detect(inputs, findings)`` plus a ``stats`` accounting attribute. The
batch pipeline and the stream engine iterate detector registries of this
shape rather than hard-coding the classes.
"""

from repro.core.detectors.base import Detector
from repro.core.detectors.key_compromise import KeyCompromiseDetector, RevocationJoinStats
from repro.core.detectors.registrant_change import (
    RegistrantChangeDetector,
    RegistrantJoinStats,
)
from repro.core.detectors.managed_tls import (
    CLOUDFLARE_MANAGED_SAN_SUFFIX,
    DepartureJoinStats,
    ManagedTlsDetector,
    is_cloudflare_managed_certificate,
)
from repro.core.detectors.first_party import KeyRotationDetector, Rotation

__all__ = [
    "Detector",
    "KeyCompromiseDetector",
    "RevocationJoinStats",
    "RegistrantChangeDetector",
    "RegistrantJoinStats",
    "ManagedTlsDetector",
    "DepartureJoinStats",
    "CLOUDFLARE_MANAGED_SAN_SUFFIX",
    "is_cloudflare_managed_certificate",
    "KeyRotationDetector",
    "Rotation",
]
