"""Certificate-lifetime policy simulation (paper Section 6).

Two complementary estimates of what shorter maximum lifetimes would buy:

* **Staleness-days reduction** (Figure 9): take every stale certificate
  with lifetime greater than the hypothetical cap *n*, pull its expiration
  in so its total lifetime is *n* (certificates shorter than *n* are
  untouched), and compare total staleness-days before and after. A finding
  whose invalidation lands after the capped expiry contributes zero.

* **Stale-certificate elimination** (Figure 8): survival analysis on
  days-from-issuance-to-invalidation. A cap of *n* days eliminates — as an
  optimistic upper bound, assuming no renewal — every stale certificate
  whose invalidation event occurred more than *n* days after issuance.

The paper evaluates caps of 45, 90, and 215 days against today's 398.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.stale import StaleCertificate, StalenessClass, StaleFindings
from repro.util.stats import SurvivalCurve

#: Candidate maximum lifetimes studied in Section 6 (days).
STUDIED_CAPS = (45, 90, 215)


@dataclass(frozen=True)
class CapResult:
    """Effect of one lifetime cap on one staleness class."""

    staleness_class: StalenessClass
    cap_days: int
    baseline_staleness_days: int
    capped_staleness_days: int
    baseline_stale_certificates: int
    eliminated_stale_certificates: int

    @property
    def staleness_days_reduction(self) -> float:
        """Fractional reduction in total staleness-days (Figure 9)."""
        if self.baseline_staleness_days == 0:
            return 0.0
        return 1.0 - self.capped_staleness_days / self.baseline_staleness_days

    @property
    def certificate_reduction(self) -> float:
        """Fractional elimination of stale certificates (Figure 8 readoff)."""
        if self.baseline_stale_certificates == 0:
            return 0.0
        return self.eliminated_stale_certificates / self.baseline_stale_certificates


def capped_staleness_days(finding: StaleCertificate, cap_days: int) -> int:
    """Staleness-days of one finding under a hypothetical lifetime cap.

    Certificates already within the cap are unmodified. For longer ones the
    expiry moves to ``notBefore + cap``; if the invalidation event falls
    after that new expiry, the certificate is never stale at all.
    """
    certificate = finding.certificate
    if certificate.lifetime_days <= cap_days:
        return finding.staleness_days
    capped_not_after = certificate.not_before + cap_days
    if finding.invalidation_day > capped_not_after:
        return 0
    return capped_not_after - finding.invalidation_day


class LifetimePolicySimulator:
    """Evaluates hypothetical maximum lifetimes over measured findings."""

    def __init__(self, findings: StaleFindings) -> None:
        self._findings = findings

    def evaluate(self, cls: StalenessClass, cap_days: int) -> CapResult:
        items = self._findings.of_class(cls)
        baseline_days = sum(f.staleness_days for f in items)
        capped_days = 0
        eliminated = 0
        for finding in items:
            contribution = capped_staleness_days(finding, cap_days)
            capped_days += contribution
            if contribution == 0 and finding.staleness_days > 0:
                eliminated += 1
            elif (
                contribution == 0
                and finding.staleness_days == 0
                and finding.days_to_invalidation > cap_days
            ):
                eliminated += 1
        return CapResult(
            staleness_class=cls,
            cap_days=cap_days,
            baseline_staleness_days=baseline_days,
            capped_staleness_days=capped_days,
            baseline_stale_certificates=len(items),
            eliminated_stale_certificates=eliminated,
        )

    def sweep(
        self,
        cls: StalenessClass,
        caps: Sequence[int] = STUDIED_CAPS,
    ) -> List[CapResult]:
        return [self.evaluate(cls, cap) for cap in caps]

    def full_matrix(
        self,
        classes: Optional[Sequence[StalenessClass]] = None,
        caps: Sequence[int] = STUDIED_CAPS,
    ) -> Dict[Tuple[StalenessClass, int], CapResult]:
        """Every (class, cap) pair — the data behind Figure 9 a/b/c."""
        if classes is None:
            classes = (
                StalenessClass.KEY_COMPROMISE,
                StalenessClass.REGISTRANT_CHANGE,
                StalenessClass.MANAGED_TLS_DEPARTURE,
            )
        matrix: Dict[Tuple[StalenessClass, int], CapResult] = {}
        for cls in classes:
            if not self._findings.of_class(cls):
                continue
            for cap in caps:
                matrix[(cls, cap)] = self.evaluate(cls, cap)
        return matrix

    def overall_staleness_reduction(
        self,
        cap_days: int,
        classes: Optional[Sequence[StalenessClass]] = None,
    ) -> float:
        """Pooled staleness-days reduction across classes — the abstract's
        '90 days yields a 75% decrease' headline."""
        if classes is None:
            classes = (
                StalenessClass.KEY_COMPROMISE,
                StalenessClass.REGISTRANT_CHANGE,
                StalenessClass.MANAGED_TLS_DEPARTURE,
            )
        baseline = 0
        capped = 0
        for cls in classes:
            result = self.evaluate(cls, cap_days)
            baseline += result.baseline_staleness_days
            capped += result.capped_staleness_days
        if baseline == 0:
            return 0.0
        return 1.0 - capped / baseline


def survival_curve_for(findings: StaleFindings, cls: StalenessClass) -> SurvivalCurve:  # repro-lint: disable=RL703  # paper API: Figure 8 entry point
    """Days-to-invalidation survival curve (Figure 8) for one class."""
    return findings.survival_curve(cls)


def survival_elimination_estimates(
    findings: StaleFindings,
    caps: Sequence[int] = STUDIED_CAPS,
    classes: Optional[Sequence[StalenessClass]] = None,
) -> Dict[Tuple[StalenessClass, int], float]:
    """Upper-bound share of stale certs eliminated per (class, cap).

    Reads S(cap) off each class's survival curve, as the paper does when it
    reports 56% / 49.5% at the 90-day cap.
    """
    if classes is None:
        classes = (
            StalenessClass.KEY_COMPROMISE,
            StalenessClass.REGISTRANT_CHANGE,
            StalenessClass.MANAGED_TLS_DEPARTURE,
        )
    estimates: Dict[Tuple[StalenessClass, int], float] = {}
    for cls in classes:
        if not findings.of_class(cls):
            continue
        curve = findings.survival_curve(cls)
        for cap in caps:
            estimates[(cls, cap)] = curve.reduction_if_capped(cap)
    return estimates
