"""Certificate-information and invalidation-event taxonomies.

Encodes paper Tables 1 and 2 as queryable data structures, plus the
classifier that maps an observed operational change onto an invalidation
event with its security implications. The core design argument of Section 3
is that RFC 5280 reason codes are a poor basis for a taxonomy; this module
is the replacement the paper proposes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple


class CertificateInfoCategory(enum.Enum):
    """Table 1: the four higher-level roles of certificate information."""

    SUBSCRIBER_AUTHENTICATION = "subscriber_authentication"
    KEY_AUTHORIZATION = "key_authorization"
    ISSUER_INFORMATION = "issuer_information"
    CERTIFICATE_METADATA = "certificate_metadata"


@dataclass(frozen=True)
class CategoryDescription:
    """One row of Table 1."""

    category: CertificateInfoCategory
    description: str
    related_fields: Tuple[str, ...]


#: Table 1, verbatim structure.
CERTIFICATE_INFORMATION_TAXONOMY: Tuple[CategoryDescription, ...] = (
    CategoryDescription(
        CertificateInfoCategory.SUBSCRIBER_AUTHENTICATION,
        "Subscriber identifiers: domain + crypto. keys",
        ("Subject Name", "SAN", "Subject Public Key", "Subject Key ID"),
    ),
    CategoryDescription(
        CertificateInfoCategory.KEY_AUTHORIZATION,
        "Permissions + constraints on key utilization",
        ("Basic Constraints", "Key Usage", "Extended Key Usage"),
    ),
    CategoryDescription(
        CertificateInfoCategory.ISSUER_INFORMATION,
        "Details of CA that issued certificate",
        (
            "Issuer Name",
            "Authority Key ID",
            "Signature",
            "CRL Distribution Points",
            "Authority Info. Access",
            "Certificate Policy",
        ),
    ),
    CategoryDescription(
        CertificateInfoCategory.CERTIFICATE_METADATA,
        "Meta-information about the certificate itself",
        ("Serial #", "Precert. Poison", "Signed Cert. Timestamps"),
    ),
)


class ControlledBy(enum.Enum):
    """Who ends up controlling the stale certificate's key."""

    FIRST_PARTY = "first_party"
    THIRD_PARTY = "third_party"


class SecurityImplication(enum.Enum):
    """Severity classes used in Table 2."""

    DOMAIN_IMPERSONATION = "tls_domain_impersonation"
    OVER_PERMISSIONED = "over_permissioned_key_use"
    MINIMAL = "minimal"


class InvalidationEvent(enum.Enum):
    """Table 2: certificate invalidation events."""

    DOMAIN_OWNERSHIP_CHANGE = "domain_ownership_change"
    DOMAIN_USE_CHANGE = "domain_use_change"
    KEY_OWNERSHIP_CHANGE = "key_ownership_change"  # key compromise
    KEY_USE_CHANGE = "key_use_change"  # rotation / disuse
    MANAGED_TLS_DEPARTURE = "managed_tls_departure"
    KEY_AUTHORIZATION_CHANGE = "key_authorization_change"
    REVOCATION_INFO_CHANGE = "revocation_info_change"


@dataclass(frozen=True)
class InvalidationEventSpec:
    """One row of Table 2."""

    event: InvalidationEvent
    category: CertificateInfoCategory
    example: str
    controlled_by: ControlledBy
    implication: SecurityImplication


#: Table 2, verbatim structure. Managed TLS departure is the starred row:
#: formally a key-use change, but with third-party consequences.
INVALIDATION_EVENTS: Tuple[InvalidationEventSpec, ...] = (
    InvalidationEventSpec(
        InvalidationEvent.DOMAIN_OWNERSHIP_CHANGE,
        CertificateInfoCategory.SUBSCRIBER_AUTHENTICATION,
        "Domain registrant change (§5.2)",
        ControlledBy.THIRD_PARTY,
        SecurityImplication.DOMAIN_IMPERSONATION,
    ),
    InvalidationEventSpec(
        InvalidationEvent.DOMAIN_USE_CHANGE,
        CertificateInfoCategory.SUBSCRIBER_AUTHENTICATION,
        "Domain expiration + no new owner",
        ControlledBy.FIRST_PARTY,
        SecurityImplication.MINIMAL,
    ),
    InvalidationEventSpec(
        InvalidationEvent.KEY_OWNERSHIP_CHANGE,
        CertificateInfoCategory.SUBSCRIBER_AUTHENTICATION,
        "Key compromise (§5.1)",
        ControlledBy.THIRD_PARTY,
        SecurityImplication.DOMAIN_IMPERSONATION,
    ),
    InvalidationEventSpec(
        InvalidationEvent.KEY_USE_CHANGE,
        CertificateInfoCategory.SUBSCRIBER_AUTHENTICATION,
        "Key disuse: e.g., rotation",
        ControlledBy.FIRST_PARTY,
        SecurityImplication.MINIMAL,
    ),
    InvalidationEventSpec(
        InvalidationEvent.MANAGED_TLS_DEPARTURE,
        CertificateInfoCategory.SUBSCRIBER_AUTHENTICATION,
        "Managed TLS departure (§5.3)",
        ControlledBy.THIRD_PARTY,
        SecurityImplication.DOMAIN_IMPERSONATION,
    ),
    InvalidationEventSpec(
        InvalidationEvent.KEY_AUTHORIZATION_CHANGE,
        CertificateInfoCategory.KEY_AUTHORIZATION,
        "Key scope reduction",
        ControlledBy.FIRST_PARTY,
        SecurityImplication.OVER_PERMISSIONED,
    ),
    InvalidationEventSpec(
        InvalidationEvent.REVOCATION_INFO_CHANGE,
        CertificateInfoCategory.ISSUER_INFORMATION,
        "CA infrastructure change",
        ControlledBy.FIRST_PARTY,
        SecurityImplication.MINIMAL,
    ),
)

_SPEC_BY_EVENT: Dict[InvalidationEvent, InvalidationEventSpec] = {
    spec.event: spec for spec in INVALIDATION_EVENTS
}


def spec_for(event: InvalidationEvent) -> InvalidationEventSpec:
    """The Table 2 row for an event."""
    return _SPEC_BY_EVENT[event]


def third_party_events() -> List[InvalidationEvent]:
    """The three scenarios enabling impersonation by an outside party."""
    return [
        spec.event
        for spec in INVALIDATION_EVENTS
        if spec.controlled_by is ControlledBy.THIRD_PARTY
    ]


def classify_invalidation(
    domain_owner_changed: bool = False,
    domain_in_use_change: bool = False,
    key_unauthorized_access: bool = False,
    key_rotated: bool = False,
    former_managed_tls_holds_key: bool = False,
    key_authorization_changed: bool = False,
    ca_infrastructure_changed: bool = False,
) -> List[InvalidationEventSpec]:
    """Map observed operational changes onto Table 2 rows.

    Multiple events can coexist (the paper's critique of CRL's single-reason
    restriction), so a list is returned, most severe first.
    """
    events: List[InvalidationEventSpec] = []
    if key_unauthorized_access:
        events.append(spec_for(InvalidationEvent.KEY_OWNERSHIP_CHANGE))
    if domain_owner_changed:
        events.append(spec_for(InvalidationEvent.DOMAIN_OWNERSHIP_CHANGE))
    if former_managed_tls_holds_key:
        events.append(spec_for(InvalidationEvent.MANAGED_TLS_DEPARTURE))
    if key_rotated:
        events.append(spec_for(InvalidationEvent.KEY_USE_CHANGE))
    if domain_in_use_change:
        events.append(spec_for(InvalidationEvent.DOMAIN_USE_CHANGE))
    if key_authorization_changed:
        events.append(spec_for(InvalidationEvent.KEY_AUTHORIZATION_CHANGE))
    if ca_infrastructure_changed:
        events.append(spec_for(InvalidationEvent.REVOCATION_INFO_CHANGE))
    severity_rank = {
        SecurityImplication.DOMAIN_IMPERSONATION: 0,
        SecurityImplication.OVER_PERMISSIONED: 1,
        SecurityImplication.MINIMAL: 2,
    }
    events.sort(key=lambda spec: severity_rank[spec.implication])
    return events
