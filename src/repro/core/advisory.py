"""Stale-certificate advisory for domain acquirers (BygoneSSL-style).

The paper builds on BygoneSSL [31]: when you acquire a domain, any
unexpired certificate issued *before* your acquisition is controlled by
someone else — the previous registrant, their CDN, or their hosting
provider — and can be used to impersonate you until it expires. This module
turns the paper's measurement machinery into the actionable tool a
registrant (or registrar) would run before/after acquiring a name:

* enumerate pre-acquisition certificates still valid from CT;
* classify who likely controls each key (self-managed vs managed TLS);
* compute the exposure window and the best available remediation.

Revocation-based remediation is flagged as unreliable, per Section 2.4; the
only guaranteed end of exposure is the latest notAfter.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.detectors.managed_tls import is_cloudflare_managed_certificate
from repro.ct.dedup import CertificateCorpus
from repro.pki.certificate import Certificate
from repro.psl.registered import DomainName, e2ld
from repro.util.dates import Day, day_to_iso


class KeyController(enum.Enum):
    """Who most likely holds the private key of a pre-acquisition cert."""

    PREVIOUS_REGISTRANT = "previous_registrant"
    MANAGED_TLS_PROVIDER = "managed_tls_provider"
    UNKNOWN_THIRD_PARTY = "unknown_third_party"


class Remediation(enum.Enum):
    """Available responses, best first (paper Sections 2.4 and 6)."""

    REQUEST_REVOCATION = "request_revocation"  # helps only checking clients
    WAIT_FOR_EXPIRY = "wait_for_expiry"  # the reliable backstop
    ALREADY_EXPIRED = "already_expired"


@dataclass(frozen=True)
class Exposure:
    """One pre-acquisition certificate that threatens the new owner."""

    certificate: Certificate
    controller: KeyController
    acquisition_day: Day
    matched_names: tuple

    @property
    def exposed_until(self) -> Day:
        return self.certificate.not_after

    @property
    def exposure_days_remaining(self) -> int:
        return max(0, self.certificate.not_after - self.acquisition_day)

    @property
    def remediation(self) -> Remediation:
        if self.certificate.not_after < self.acquisition_day:
            return Remediation.ALREADY_EXPIRED
        if self.certificate.crl_url or self.certificate.ocsp_url:
            return Remediation.REQUEST_REVOCATION
        return Remediation.WAIT_FOR_EXPIRY

    def describe(self) -> str:
        return (
            f"{self.certificate.issuer_name} serial {self.certificate.serial}: "
            f"covers {', '.join(self.matched_names)}; "
            f"key held by {self.controller.value}; "
            f"valid until {day_to_iso(self.exposed_until)} "
            f"({self.exposure_days_remaining} days of exposure); "
            f"remediation: {self.remediation.value}"
        )


@dataclass
class AdvisoryReport:
    """Full due-diligence result for one acquisition."""

    domain: str
    acquisition_day: Day
    exposures: List[Exposure] = field(default_factory=list)

    @property
    def is_clean(self) -> bool:
        return not self.exposures

    @property
    def exposure_ends(self) -> Optional[Day]:
        """The day the last pre-acquisition certificate expires."""
        if not self.exposures:
            return None
        return max(e.exposed_until for e in self.exposures)

    @property
    def total_exposure_days(self) -> int:
        return sum(e.exposure_days_remaining for e in self.exposures)

    def summary(self) -> str:
        if self.is_clean:
            return (
                f"{self.domain}: no unexpired pre-acquisition certificates found; "
                "safe to deploy."
            )
        return (
            f"{self.domain}: {len(self.exposures)} unexpired pre-acquisition "
            f"certificate(s); third-party impersonation possible until "
            f"{day_to_iso(self.exposure_ends)}."
        )


class StaleCertificateAdvisor:
    """Answers 'who else can impersonate this domain?' from a CT corpus."""

    def __init__(self, corpus: CertificateCorpus) -> None:
        self._corpus = corpus

    def check_acquisition(self, domain: str, acquisition_day: Day) -> AdvisoryReport:
        """Report every certificate issued before *acquisition_day* that is
        still valid on it and covers *domain* or any name beneath it."""
        target = DomainName(domain).name
        registrable = e2ld(target) or target
        report = AdvisoryReport(domain=target, acquisition_day=acquisition_day)
        for certificate in self._corpus.certificates():
            if certificate.not_before >= acquisition_day:
                continue  # issued under (presumably) the new owner's watch
            if certificate.not_after < acquisition_day:
                continue  # expired: no live exposure
            matched = tuple(
                sorted(
                    name
                    for name in certificate.fqdns()
                    if name == registrable or name.endswith("." + registrable)
                )
            )
            if not matched:
                continue
            report.exposures.append(
                Exposure(
                    certificate=certificate,
                    controller=self._classify_controller(certificate),
                    acquisition_day=acquisition_day,
                    matched_names=matched,
                )
            )
        report.exposures.sort(key=lambda e: -e.exposure_days_remaining)
        return report

    def monitor_new_issuance(
        self, domain: str, since_day: Day
    ) -> List[Certificate]:
        """Post-acquisition CT monitoring: certificates issued for the
        domain after *since_day* that the owner should recognize (a basic
        CT-monitor alerting workflow)."""
        target = DomainName(domain).name
        return sorted(
            (
                certificate
                for certificate in self._corpus.certificates()
                if certificate.not_before >= since_day
                and certificate.covers_name(target)
            ),
            key=lambda c: c.not_before,
        )

    @staticmethod
    def _classify_controller(certificate: Certificate) -> KeyController:
        if is_cloudflare_managed_certificate(certificate):
            return KeyController.MANAGED_TLS_PROVIDER
        if certificate.subject_key.owner_id.startswith(("cdn:", "host:")):
            return KeyController.MANAGED_TLS_PROVIDER
        if certificate.subject_key.owner_id.startswith("registrant-"):
            return KeyController.PREVIOUS_REGISTRANT
        return KeyController.UNKNOWN_THIRD_PARTY
