"""Error hygiene: RL501 bare except, RL502 swallowed broad except.

A CRL series with one malformed delta, a WHOIS record with a bizarre
date, a checkpoint truncated by a crash — measurement code meets garbage
constantly, and a handler that silently swallows it turns a data-quality
incident into a finding count that is quietly wrong. Handlers must be
typed, and broad handlers must either re-raise or leave a structured
record behind.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.base import FileContext, Rule, dotted_name, register
from repro.lint.findings import Finding, Fix

BROAD_NAMES = ("Exception", "BaseException")

#: Call shapes accepted as "leaves a record behind": the repro.obs.log
#: bridge, stdlib logging methods on any logger object, warnings, and
#: stderr prints.
LOG_FUNC_NAMES = {"log", "print", "warn"}
LOG_METHOD_NAMES = {
    "log", "debug", "info", "warning", "warn", "error", "exception", "critical",
}


def _is_broad(annotation: ast.expr) -> bool:
    if isinstance(annotation, ast.Tuple):
        return any(_is_broad(element) for element in annotation.elts)
    name = dotted_name(annotation)
    return name is not None and name.split(".")[-1] in BROAD_NAMES


def _handler_reports(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in LOG_FUNC_NAMES:
                return True
            if isinstance(func, ast.Attribute) and func.attr in LOG_METHOD_NAMES:
                return True
    return False


@register
class BareExceptRule(Rule):
    """RL501: no bare ``except:`` clauses."""

    code = "RL501"
    name = "bare-except"
    rationale = (
        "A bare except: catches KeyboardInterrupt and SystemExit, so a "
        "stuck collection run cannot even be Ctrl-C'd cleanly; every "
        "handler must name what it expects (at minimum Exception)."
    )
    fixable = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    self,
                    node,
                    "bare 'except:' also catches KeyboardInterrupt/"
                    "SystemExit; name the exception (at minimum Exception)",
                    fix=Fix(
                        kind="bare_except",
                        start=(node.lineno, node.col_offset + 1),
                        end=(node.lineno, node.col_offset + 1),
                    ),
                )


@register
class SwallowedExceptionRule(Rule):
    """RL502: broad handlers must re-raise or leave a structured record."""

    code = "RL502"
    name = "swallowed-exception"
    rationale = (
        "except Exception that neither re-raises nor logs converts a "
        "data-quality incident (corrupt CRL delta, malformed WHOIS date) "
        "into silently wrong finding counts; broad handlers must raise, "
        "or record the failure via repro.obs.log / logging / stderr."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.ExceptHandler)
                and node.type is not None
                and _is_broad(node.type)
                and not _handler_reports(node)
            ):
                yield ctx.finding(
                    self,
                    node,
                    "broad exception handler neither re-raises nor logs; "
                    "swallowing here turns data-quality incidents into "
                    "silently wrong results",
                )
