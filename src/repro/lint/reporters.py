"""Text and JSON rendering of a :class:`~repro.lint.engine.LintReport`."""

from __future__ import annotations

import json
from typing import List

from repro.lint.engine import LintReport

JSON_SCHEMA_VERSION = 1


def render_text(report: LintReport) -> str:
    lines: List[str] = [finding.render() for finding in report.findings]
    for path, code, text in report.unused_baseline:
        lines.append(
            f"note: baseline entry no longer matches anything and can be "
            f"removed: {path} {code} ({text!r})"
        )
    for path in report.stale_baseline:
        lines.append(
            f"error: baseline names a file that no longer exists: {path}"
        )
    counts = report.counts_by_code()
    if counts:
        summary = ", ".join(f"{code}×{count}" for code, count in sorted(counts.items()))
        lines.append(
            f"{len(report.findings)} finding(s) in {report.files_scanned} "
            f"file(s): {summary}"
        )
    else:
        suffix = (
            f" ({len(report.baselined)} baselined)" if report.baselined else ""
        )
        lines.append(
            f"clean: {report.files_scanned} file(s), 0 findings{suffix}"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": report.files_scanned,
        "clean": report.clean,
        "findings": [finding.to_record() for finding in report.findings],
        "baselined": len(report.baselined),
        "unused_baseline": [
            {"path": path, "code": code, "text": text}
            for path, code, text in report.unused_baseline
        ],
        "stale_baseline": list(report.stale_baseline),
        "counts": report.counts_by_code(),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
