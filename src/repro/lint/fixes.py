"""Mechanical fixes for the fixable rule subset (``repro lint --fix``).

Two strategies exist, both pure text surgery guided by AST positions the
rules attach to their findings:

* ``wrap_sorted`` (RL103) — wrap the offending iterable expression in
  ``sorted(...)``.
* ``bare_except`` (RL501) — rewrite ``except:`` to ``except Exception:``.

Fixes are applied bottom-up (document order reversed) so earlier edits
never invalidate later positions, and the result is idempotent: fixed
code no longer produces the finding, so a second ``--fix`` pass is a
no-op.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding

_BARE_EXCEPT = re.compile(r"except\s*:")


def apply_fixes(source: str, findings: Sequence[Finding]) -> Tuple[str, int]:
    """Apply every carried fix to *source*; returns (new source, applied)."""
    fixes = [f for f in findings if f.fix is not None]
    # Bottom-up: later document positions first.
    fixes.sort(key=lambda f: (f.fix.start[0], f.fix.start[1]), reverse=True)
    lines = source.splitlines(keepends=True)
    applied = 0
    for finding in fixes:
        fix = finding.fix
        if fix.kind == "wrap_sorted":
            if _insert(lines, fix.end, ")") and _insert(lines, fix.start, "sorted("):
                applied += 1
        elif fix.kind == "bare_except":
            line_index = fix.start[0] - 1
            if 0 <= line_index < len(lines):
                new_line, count = _BARE_EXCEPT.subn(
                    "except Exception:", lines[line_index], count=1
                )
                if count:
                    lines[line_index] = new_line
                    applied += 1
    return "".join(lines), applied


def _insert(lines: List[str], position: Tuple[int, int], text: str) -> bool:
    line_index, col = position[0] - 1, position[1] - 1
    if not (0 <= line_index < len(lines)):
        return False
    line = lines[line_index]
    if col > len(line):
        return False
    lines[line_index] = line[:col] + text + line[col:]
    return True


def fix_files(
    findings: Sequence[Finding],
    sources: Optional[Dict[str, str]] = None,
) -> Dict[str, int]:
    """Group *findings* by file, rewrite each once; returns path → applied.

    Every file is read at most once and written at most once regardless
    of how many fixes land in it; when *sources* already holds the text
    (the lint run that produced the findings read it), the file is not
    read at all — one write per fixed file is the only I/O.
    """
    by_path: Dict[str, List[Finding]] = {}
    for finding in findings:
        if finding.fix is not None:
            by_path.setdefault(finding.path, []).append(finding)
    results: Dict[str, int] = {}
    for path in sorted(by_path):
        source = (sources or {}).get(path)
        if source is None:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        fixed, applied = apply_fixes(source, by_path[path])
        if applied and fixed != source:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(fixed)
            results[path] = applied
    return results
