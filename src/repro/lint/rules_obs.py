"""Observability hygiene: metric names and live-telemetry invariants.

RL301 — the batch pipeline, shard workers, and stream engine all report
into one metric namespace; a literal name at a call site (or a typo'd
constant) silently splits a series in two — half the findings counted
under one name, half under another — which is exactly the drift
``repro/obs/names.py`` exists to prevent.

RL302 — the live-telemetry equivalents: progress phases must be string
literals declared in ``repro.obs.names.PROGRESS_PHASES`` (an undeclared
or dynamic phase forks the timeline the same way a literal metric name
forks a series), and every ``threading.Thread`` in engine code must be
a daemon (a non-daemon sampler thread turns a crashed run into a hung
process — the one failure mode a heartbeat must never add).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.base import FileContext, ImportMap, ProjectIndex, ProjectRule, register
from repro.lint.findings import Finding

REGISTRY_METHODS = ("counter", "gauge", "histogram")
NAMES_MODULE = "repro.obs.names"


@register
class MetricNameRule(ProjectRule):
    """RL301: metric names must be constants declared in repro.obs.names."""

    code = "RL301"
    name = "undeclared-metric-name"
    rationale = (
        "Batch, parallel, and stream runs share one metric namespace; a "
        "literal or undeclared name at a counter/gauge/histogram call "
        "site splits a time series in two the moment a second call site "
        "drifts, so every name must be a constant declared in "
        "repro.obs.names."
    )
    scope = ("src/repro/",)
    exclude = ("src/repro/obs/",)

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        declared = index.metric_constants()
        for path in sorted(index.files):
            if not self.applies_to(path):
                continue
            ctx = index.files[path]
            imports = ImportMap(ctx.tree)
            for node in ast.walk(ctx.tree):
                finding = self._check_call(ctx, imports, node, declared)
                if finding is not None:
                    yield finding

    def _check_call(
        self,
        ctx: FileContext,
        imports: ImportMap,
        node: ast.AST,
        declared: Optional[Set[str]],
    ) -> Optional[Finding]:
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in REGISTRY_METHODS
            and node.args
        ):
            return None
        # Skip registry-internal plumbing (self.counter(...) definitions).
        if isinstance(node.func.value, ast.Name) and node.func.value.id in (
            "self",
            "cls",
        ):
            return None
        name_arg = node.args[0]
        if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str):
            return ctx.finding(
                self,
                name_arg,
                f"literal metric name {name_arg.value!r}; declare it as a "
                f"constant in {NAMES_MODULE} and reference that",
            )
        if isinstance(name_arg, ast.Attribute) and isinstance(
            name_arg.value, ast.Name
        ):
            module = imports.resolve(name_arg.value.id)
            if module != NAMES_MODULE:
                return ctx.finding(
                    self,
                    name_arg,
                    f"metric name read from '{module}', not {NAMES_MODULE}; "
                    "all names live in one module so series cannot drift",
                )
            if declared is not None and name_arg.attr not in declared:
                return ctx.finding(
                    self,
                    name_arg,
                    f"metric name constant '{name_arg.attr}' is not declared "
                    f"in {NAMES_MODULE}",
                )
            return None
        if isinstance(name_arg, ast.Name):
            origin = imports.resolve(name_arg.id)
            if origin.startswith(NAMES_MODULE + "."):
                constant = origin.rsplit(".", 1)[1]
                if declared is not None and constant not in declared:
                    return ctx.finding(
                        self,
                        name_arg,
                        f"metric name constant '{constant}' is not declared "
                        f"in {NAMES_MODULE}",
                    )
                return None
        return ctx.finding(
            self,
            name_arg,
            "metric name is not a repro.obs.names constant; dynamic names "
            "fragment the shared series namespace",
        )


PHASE_PROGRESS_CALLS = (
    "repro.obs.phase_progress",
    "repro.obs.live.phase_progress",
)


@register
class LiveTelemetryRule(ProjectRule):
    """RL302: progress phases declared in names.py; samplers daemonized."""

    code = "RL302"
    name = "live-telemetry-hygiene"
    rationale = (
        "Live timelines aggregate by phase name across engines, so every "
        "phase_progress() call must pass a string literal declared in "
        "repro.obs.names.PROGRESS_PHASES — a dynamic or undeclared phase "
        "forks the timeline silently; and background threads in engine "
        "code must be daemon=True so a crashed run exits instead of "
        "hanging on its own sampler."
    )
    scope = ("src/repro/",)

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        declared = index.progress_phases()
        for path in sorted(index.files):
            if not self.applies_to(path):
                continue
            ctx = index.files[path]
            imports = ImportMap(ctx.tree)
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                target = imports.resolve_call(node)
                if target in PHASE_PROGRESS_CALLS:
                    finding = self._check_phase(ctx, node, declared)
                    if finding is not None:
                        yield finding
                elif target == "threading.Thread":
                    finding = self._check_thread(ctx, node)
                    if finding is not None:
                        yield finding

    def _check_phase(
        self,
        ctx: FileContext,
        node: ast.Call,
        declared: Optional[Set[str]],
    ) -> Optional[Finding]:
        if not node.args:
            return ctx.finding(
                self, node, "phase_progress() needs a literal phase name"
            )
        phase_arg = node.args[0]
        if not (
            isinstance(phase_arg, ast.Constant)
            and isinstance(phase_arg.value, str)
        ):
            return ctx.finding(
                self,
                phase_arg,
                "progress phase must be a string literal (dynamic phase "
                "names fork the timeline and defeat this very check)",
            )
        if declared is not None and phase_arg.value not in declared:
            return ctx.finding(
                self,
                phase_arg,
                f"progress phase {phase_arg.value!r} is not declared in "
                "repro.obs.names.PROGRESS_PHASES",
            )
        return None

    def _check_thread(
        self, ctx: FileContext, node: ast.Call
    ) -> Optional[Finding]:
        for keyword in node.keywords:
            if (
                keyword.arg == "daemon"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return None
        return ctx.finding(
            self,
            node,
            "threading.Thread in engine code must pass daemon=True; a "
            "non-daemon background thread keeps a crashed run alive",
        )
