"""Observability hygiene: metric names and live-telemetry invariants.

RL301 — the batch pipeline, shard workers, and stream engine all report
into one metric namespace; a literal name at a call site (or a typo'd
constant) silently splits a series in two — half the findings counted
under one name, half under another — which is exactly the drift
``repro/obs/names.py`` exists to prevent.

RL302 — the live-telemetry equivalents: progress phases must be string
literals declared in ``repro.obs.names.PROGRESS_PHASES`` (an undeclared
or dynamic phase forks the timeline the same way a literal metric name
forks a series), and every ``threading.Thread`` in engine code must be
a daemon (a non-daemon sampler thread turns a crashed run into a hung
process — the one failure mode a heartbeat must never add).

Both rules consume the per-file call-site facts extracted by
:mod:`repro.lint.flow.facts` (``ObsUse`` records) instead of re-walking
ASTs, so the parallel engine's parent process never re-parses files the
workers already analyzed.
"""

from __future__ import annotations

from typing import Iterator, Optional, Set

from repro.lint.base import ProjectIndex, ProjectRule, register
from repro.lint.findings import Finding

NAMES_MODULE = "repro.obs.names"


@register
class MetricNameRule(ProjectRule):
    """RL301: metric names must be constants declared in repro.obs.names."""

    code = "RL301"
    name = "undeclared-metric-name"
    rationale = (
        "Batch, parallel, and stream runs share one metric namespace; a "
        "literal or undeclared name at a counter/gauge/histogram call "
        "site splits a time series in two the moment a second call site "
        "drifts, so every name must be a constant declared in "
        "repro.obs.names."
    )
    scope = ("src/repro/",)
    exclude = ("src/repro/obs/",)

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        declared = index.metric_constants()
        for path in sorted(index.files):
            if not self.applies_to(path):
                continue
            facts = index.facts_for(path)
            if facts is None:
                continue
            for use in facts.obs_uses:
                message = self._message(use, declared)
                if message is not None:
                    yield Finding(
                        path=path,
                        line=use.line,
                        col=use.col,
                        code=self.code,
                        rule=self.name,
                        message=message,
                        line_text=use.line_text,
                    )

    def _message(self, use, declared: Optional[Set[str]]) -> Optional[str]:
        if use.kind == "metric_literal":
            return (
                f"literal metric name {use.value!r}; declare it as a "
                f"constant in {NAMES_MODULE} and reference that"
            )
        if use.kind == "metric_foreign":
            return (
                f"metric name read from '{use.value}', not {NAMES_MODULE}; "
                "all names live in one module so series cannot drift"
            )
        if use.kind in ("metric_attr", "metric_name"):
            if declared is not None and use.value not in declared:
                return (
                    f"metric name constant '{use.value}' is not declared "
                    f"in {NAMES_MODULE}"
                )
            return None
        if use.kind == "metric_other":
            return (
                "metric name is not a repro.obs.names constant; dynamic "
                "names fragment the shared series namespace"
            )
        return None


@register
class LiveTelemetryRule(ProjectRule):
    """RL302: progress phases declared in names.py; samplers daemonized."""

    code = "RL302"
    name = "live-telemetry-hygiene"
    rationale = (
        "Live timelines aggregate by phase name across engines, so every "
        "phase_progress() call must pass a string literal declared in "
        "repro.obs.names.PROGRESS_PHASES — a dynamic or undeclared phase "
        "forks the timeline silently; and background threads in engine "
        "code must be daemon=True so a crashed run exits instead of "
        "hanging on its own sampler."
    )
    scope = ("src/repro/",)

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        declared = index.progress_phases()
        for path in sorted(index.files):
            if not self.applies_to(path):
                continue
            facts = index.facts_for(path)
            if facts is None:
                continue
            for use in facts.obs_uses:
                message = self._message(use, declared)
                if message is not None:
                    yield Finding(
                        path=path,
                        line=use.line,
                        col=use.col,
                        code=self.code,
                        rule=self.name,
                        message=message,
                        line_text=use.line_text,
                    )

    def _message(self, use, declared: Optional[Set[str]]) -> Optional[str]:
        if use.kind == "phase_missing":
            return "phase_progress() needs a literal phase name"
        if use.kind == "phase_dynamic":
            return (
                "progress phase must be a string literal (dynamic phase "
                "names fork the timeline and defeat this very check)"
            )
        if use.kind == "phase_literal":
            if declared is not None and use.value not in declared:
                return (
                    f"progress phase {use.value!r} is not declared in "
                    "repro.obs.names.PROGRESS_PHASES"
                )
            return None
        if use.kind == "thread_nondaemon":
            return (
                "threading.Thread in engine code must pass daemon=True; a "
                "non-daemon background thread keeps a crashed run alive"
            )
        return None
