"""Observability hygiene: RL301 metric names must come from repro.obs.names.

The batch pipeline, shard workers, and stream engine all report into one
metric namespace; a literal name at a call site (or a typo'd constant)
silently splits a series in two — half the findings counted under one
name, half under another — which is exactly the drift
``repro/obs/names.py`` exists to prevent.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.base import FileContext, ImportMap, ProjectIndex, ProjectRule, register
from repro.lint.findings import Finding

REGISTRY_METHODS = ("counter", "gauge", "histogram")
NAMES_MODULE = "repro.obs.names"


@register
class MetricNameRule(ProjectRule):
    """RL301: metric names must be constants declared in repro.obs.names."""

    code = "RL301"
    name = "undeclared-metric-name"
    rationale = (
        "Batch, parallel, and stream runs share one metric namespace; a "
        "literal or undeclared name at a counter/gauge/histogram call "
        "site splits a time series in two the moment a second call site "
        "drifts, so every name must be a constant declared in "
        "repro.obs.names."
    )
    scope = ("src/repro/",)
    exclude = ("src/repro/obs/",)

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        declared = index.metric_constants()
        for path in sorted(index.files):
            if not self.applies_to(path):
                continue
            ctx = index.files[path]
            imports = ImportMap(ctx.tree)
            for node in ast.walk(ctx.tree):
                finding = self._check_call(ctx, imports, node, declared)
                if finding is not None:
                    yield finding

    def _check_call(
        self,
        ctx: FileContext,
        imports: ImportMap,
        node: ast.AST,
        declared: Optional[Set[str]],
    ) -> Optional[Finding]:
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in REGISTRY_METHODS
            and node.args
        ):
            return None
        # Skip registry-internal plumbing (self.counter(...) definitions).
        if isinstance(node.func.value, ast.Name) and node.func.value.id in (
            "self",
            "cls",
        ):
            return None
        name_arg = node.args[0]
        if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str):
            return ctx.finding(
                self,
                name_arg,
                f"literal metric name {name_arg.value!r}; declare it as a "
                f"constant in {NAMES_MODULE} and reference that",
            )
        if isinstance(name_arg, ast.Attribute) and isinstance(
            name_arg.value, ast.Name
        ):
            module = imports.resolve(name_arg.value.id)
            if module != NAMES_MODULE:
                return ctx.finding(
                    self,
                    name_arg,
                    f"metric name read from '{module}', not {NAMES_MODULE}; "
                    "all names live in one module so series cannot drift",
                )
            if declared is not None and name_arg.attr not in declared:
                return ctx.finding(
                    self,
                    name_arg,
                    f"metric name constant '{name_arg.attr}' is not declared "
                    f"in {NAMES_MODULE}",
                )
            return None
        if isinstance(name_arg, ast.Name):
            origin = imports.resolve(name_arg.id)
            if origin.startswith(NAMES_MODULE + "."):
                constant = origin.rsplit(".", 1)[1]
                if declared is not None and constant not in declared:
                    return ctx.finding(
                        self,
                        name_arg,
                        f"metric name constant '{constant}' is not declared "
                        f"in {NAMES_MODULE}",
                    )
                return None
        return ctx.finding(
            self,
            name_arg,
            "metric name is not a repro.obs.names constant; dynamic names "
            "fragment the shared series namespace",
        )
