"""Committed baseline of grandfathered findings.

A baseline lets the linter land with a non-empty repo without a flag-day
cleanup: existing findings are recorded once (``--update-baseline``) and
matched — not reported — on later runs, while any *new* finding still
fails. Entries match on (path, code, stripped line text) with
multiplicity, so findings survive unrelated edits that shift line
numbers but die with the line that caused them.

Two staleness signals keep the file honest: entries whose file no longer
exists are an error (CI's baseline self-check), and entries that no
finding matched are reported as removable.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.lint.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint-baseline.json"

Key = Tuple[str, str, str]


class Baseline:
    """Multiset of grandfathered findings keyed by (path, code, line text)."""

    def __init__(self, entries: Iterable[Dict[str, object]] = ()) -> None:
        self.entries: List[Dict[str, object]] = [dict(e) for e in entries]

    # -- persistence ---------------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ValueError(f"{path}: not a lint baseline file")
        return cls(payload["entries"])

    def save(self, path: str) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": sorted(
                self.entries,
                key=lambda e: (e.get("path", ""), e.get("code", ""),
                               e.get("line", 0)),
            ),
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        return cls(
            {
                "path": f.path,
                "code": f.code,
                "line": f.line,
                "text": f.line_text,
            }
            for f in findings
        )

    # -- matching ------------------------------------------------------------

    def _keys(self) -> Counter:
        return Counter(
            (str(e.get("path", "")), str(e.get("code", "")), str(e.get("text", "")))
            for e in self.entries
        )

    def partition(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[Key]]:
        """Split findings into (new, baselined); also return unused keys."""
        budget = self._keys()
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            key = finding.baseline_key()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        unused = sorted(key for key, count in budget.items() if count > 0)
        return new, baselined, unused

    def stale_paths(self) -> List[str]:
        """Baselined paths that no longer exist on disk (an error: the
        entry can never match again and only hides future findings in a
        resurrected file of the same name)."""
        return sorted(
            {
                str(e.get("path", ""))
                for e in self.entries
                if not os.path.exists(str(e.get("path", "")))
            }
        )
