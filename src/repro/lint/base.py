"""Rule protocol, file/project contexts, and the rule registry.

Rules come in two shapes. A :class:`Rule` inspects one parsed file at a
time via ``check(ctx)``. A :class:`ProjectRule` runs once per lint
invocation via ``check_project(index)`` and may correlate facts across
files (the detector-protocol rules resolve registry entries in one module
against class definitions in another).

Every rule declares a stable ``code`` (``RL...``), a human ``name``, a
``rationale`` (which engine invariant it protects — surfaced by
``--list-rules`` and ``docs/LINTS.md``), and a path scope. Scoping is
prefix-based over repo-relative POSIX paths so that, for example, the
wall-clock rule binds simulation and detection code but not the
observability layer, whose entire job is reading wall clocks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

from repro.lint.findings import Finding, Fix


@dataclass
class FileContext:
    """One parsed source file, as handed to per-file rules."""

    path: str  # repo-relative POSIX path
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: str, source: str) -> "FileContext":
        return cls(
            path=path,
            source=source,
            tree=ast.parse(source, filename=path),
            lines=source.splitlines(),
        )

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        fix: Optional[Fix] = None,
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            path=self.path,
            line=lineno,
            col=col,
            code=rule.code,
            rule=rule.name,
            message=message,
            line_text=self.line_text(lineno),
            fix=fix,
        )


@dataclass
class ClassInfo:
    """A class definition and every member name it provides.

    Members cover method definitions, class-level assignments, and
    ``self.<attr> = ...`` targets inside any method — the batch detectors
    expose ``stats`` as a plain instance attribute, which is just as much
    a protocol member as a ``@property``.
    """

    name: str
    path: str
    lineno: int
    col: int
    members: Set[str] = field(default_factory=set)

    @classmethod
    def from_node(cls, path: str, node: ast.ClassDef) -> "ClassInfo":
        members: Set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                members.add(stmt.name)
                for sub in ast.walk(stmt):
                    if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                        targets = (
                            sub.targets
                            if isinstance(sub, ast.Assign)
                            else [sub.target]
                        )
                        for target in targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                members.add(target.attr)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        members.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                members.add(stmt.target.id)
        return cls(
            name=node.name,
            path=path,
            lineno=node.lineno,
            col=node.col_offset,
            members=members,
        )


class ProjectIndex:
    """Cross-file facts shared by project rules.

    Built lazily from the parsed file set: class definitions by name,
    the metric-name constants declared in ``repro/obs/names.py``, and —
    for the flow rules — per-file :class:`repro.lint.flow.facts.ModuleFacts`
    linked into a whole-program graph. The index is pure AST — nothing is
    imported or executed.

    ``files`` may be a plain ``{path: FileContext}`` dict or any mapping
    that parses lazily (the parallel engine hands in a disk-backed map so
    the parent process only parses the files a rule actually opens);
    ``facts`` may pre-seed extracted module facts from worker processes.
    """

    METRIC_NAMES_SUFFIX = "repro/obs/names.py"

    def __init__(
        self,
        files: Dict[str, FileContext],
        facts: Optional[Dict[str, object]] = None,
    ) -> None:
        self.files = files
        self._facts: Dict[str, object] = dict(facts) if facts else {}
        self._facts_failed: Set[str] = set()
        self._classes: Optional[Dict[str, ClassInfo]] = None
        self._metric_constants: Optional[Set[str]] = None
        self._progress_phases: Optional[Set[str]] = None
        self._rng_labels: Optional[Tuple] = None
        self._rng_labels_loaded = False
        self._program: Optional[object] = None
        self._program_built = False

    # -- extracted module facts (flow tier) ---------------------------------

    def facts_for(self, path: str):
        """:class:`ModuleFacts` for *path*, extracted on first use.

        Returns ``None`` when the file is not in the scanned set or fact
        extraction failed — callers skip rather than guess.
        """
        if path in self._facts:
            return self._facts[path]
        if path in self._facts_failed or path not in self.files:
            return None
        from repro.lint.flow.facts import extract_module_facts

        ctx = self.files[path]
        try:
            facts = extract_module_facts(path, tree=ctx.tree, lines=ctx.lines)
        except Exception:  # repro-lint: disable=RL502  # failure is recorded; facts are optional acceleration
            self._facts_failed.add(path)
            return None
        self._facts[path] = facts
        return facts

    def all_facts(self) -> Dict[str, object]:
        """Facts for every scanned file (failed extractions omitted)."""
        out: Dict[str, object] = {}
        for path in sorted(self.files):
            facts = self.facts_for(path)
            if facts is not None:
                out[path] = facts
        return out

    def program(self):
        """The linked :class:`~repro.lint.flow.graphs.ProgramGraph`.

        Built once per lint run from :meth:`all_facts`; ``None`` when the
        scanned set is empty.
        """
        if not self._program_built:
            self._program_built = True
            from repro.lint.flow.graphs import ProgramGraph

            facts = self.all_facts()
            self._program = ProgramGraph.build(facts) if facts else None
        return self._program

    def line_text(self, path: str, lineno: int) -> str:
        """Stripped source line for baseline keys on cross-file findings."""
        ctx = self.files.get(path) if hasattr(self.files, "get") else None
        lines: Optional[List[str]] = getattr(ctx, "lines", None)
        if lines is None:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    lines = handle.read().splitlines()
            except OSError:
                return ""
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return ""

    def suppressions_for(self, path: str) -> Dict[int, frozenset]:
        """Inline suppression map for *path* (from facts when available)."""
        facts = self._facts.get(path)
        if facts is not None:
            return {line: frozenset(codes)
                    for line, codes in facts.suppressions}
        ctx = self.files.get(path) if hasattr(self.files, "get") else None
        if ctx is not None:
            from repro.lint.suppress import parse_suppressions

            return parse_suppressions(ctx.lines)
        return {}

    @property
    def classes(self) -> Dict[str, ClassInfo]:
        if self._classes is None:
            self._classes = {}
            for path in sorted(self.files):
                facts = self.facts_for(path)
                if facts is not None:
                    for info in facts.class_infos:
                        # First definition wins; class names are unique in
                        # practice and determinism matters more than picking
                        # "the right" duplicate.
                        self._classes.setdefault(info.name, info)
                    continue
                ctx = self.files[path]
                for node in ast.walk(ctx.tree):
                    if isinstance(node, ast.ClassDef):
                        self._classes.setdefault(
                            node.name, ClassInfo.from_node(path, node)
                        )
        return self._classes

    def find_file(self, suffix: str) -> Optional[FileContext]:
        for path in sorted(self.files):
            if path.endswith(suffix):
                return self.files[path]
        return None

    def metric_constants(self) -> Optional[Set[str]]:
        """Constant names declared in ``repro.obs.names`` (AST-parsed).

        Returns ``None`` when the module is not in the scanned set and
        cannot be read from the conventional location — rules then skip
        the declared-ness check rather than guessing.
        """
        if self._metric_constants is None:
            ctx = self.find_file(self.METRIC_NAMES_SUFFIX)
            if ctx is None:
                ctx = self._read_names_module()
            if ctx is None:
                return None
            constants: Set[str] = set()
            for stmt in ctx.tree.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            constants.add(target.id)
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    constants.add(stmt.target.id)
            self._metric_constants = constants
        return self._metric_constants

    def progress_phases(self) -> Optional[Set[str]]:
        """Phase names in ``repro.obs.names.PROGRESS_PHASES`` (AST-parsed).

        Same contract as :meth:`metric_constants`: ``None`` when the
        declaration cannot be found, so rules skip rather than guess.
        """
        if self._progress_phases is None:
            ctx = self.find_file(self.METRIC_NAMES_SUFFIX)
            if ctx is None:
                ctx = self._read_names_module()
            if ctx is None:
                return None
            phases: Set[str] = set()
            for stmt in ctx.tree.body:
                if isinstance(stmt, ast.Assign):
                    targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
                    value = stmt.value
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    targets = [stmt.target]
                    value = stmt.value
                else:
                    continue
                if not any(target.id == "PROGRESS_PHASES" for target in targets):
                    continue
                if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    for element in value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            phases.add(element.value)
            self._progress_phases = phases
        return self._progress_phases

    def rng_labels(self) -> Optional[Tuple[Tuple[str, ...], ...]]:
        """Label tuples in ``repro.obs.names.RNG_LABELS`` (AST-parsed).

        Each entry is a tuple of literal label components (``"*"`` marks a
        declared runtime-varying component). Same contract as
        :meth:`metric_constants`: ``None`` when the declaration cannot be
        found, so RL702's declared-ness checks skip rather than guess.
        """
        if not self._rng_labels_loaded:
            self._rng_labels_loaded = True
            ctx = self.find_file(self.METRIC_NAMES_SUFFIX)
            if ctx is None:
                ctx = self._read_names_module()
            if ctx is None:
                return None
            entries = []
            for stmt in ctx.tree.body:
                if isinstance(stmt, ast.Assign):
                    targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
                    value = stmt.value
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    targets = [stmt.target]
                    value = stmt.value
                else:
                    continue
                if not any(target.id == "RNG_LABELS" for target in targets):
                    continue
                if not isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    continue
                for element in value.elts:
                    if not isinstance(element, (ast.Tuple, ast.List)):
                        continue
                    labels = tuple(
                        part.value
                        for part in element.elts
                        if isinstance(part, ast.Constant)
                        and isinstance(part.value, str)
                    )
                    if labels:
                        entries.append(labels)
                self._rng_labels = tuple(entries)
        return self._rng_labels

    def rng_labels_site(self) -> Optional[Tuple[str, int]]:
        """(path, line) of the ``RNG_LABELS`` declaration, for findings."""
        ctx = self.find_file(self.METRIC_NAMES_SUFFIX)
        if ctx is None:
            ctx = self._read_names_module()
        if ctx is None:
            return None
        for stmt in ctx.tree.body:
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                targets = [stmt.target]
            if any(target.id == "RNG_LABELS" for target in targets):
                return (ctx.path, stmt.lineno)
        return None

    def _read_names_module(self) -> Optional[FileContext]:
        import os

        for candidate in (
            os.path.join("src", *self.METRIC_NAMES_SUFFIX.split("/")),
            os.path.join(*self.METRIC_NAMES_SUFFIX.split("/")),
        ):
            if os.path.exists(candidate):
                try:
                    with open(candidate, "r", encoding="utf-8") as handle:
                        return FileContext.parse(
                            candidate.replace(os.sep, "/"), handle.read()
                        )
                except (OSError, SyntaxError):
                    return None
        return None


class Rule:
    """Base class for per-file rules."""

    code: str = "RL000"
    name: str = "unnamed"
    rationale: str = ""
    fixable: bool = False
    #: Path prefixes (repo-relative, POSIX) the rule binds; empty = all.
    scope: Tuple[str, ...] = ()
    #: Path prefixes excluded even when inside ``scope``.
    exclude: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if any(path.startswith(prefix) for prefix in self.exclude):
            return False
        if not self.scope:
            return True
        return any(path.startswith(prefix) for prefix in self.scope)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    @classmethod
    def describe(cls) -> Dict[str, str]:
        return {
            "code": cls.code,
            "name": cls.name,
            "rationale": cls.rationale,
            "fixable": "yes" if cls.fixable else "no",
        }


class ProjectRule(Rule):
    """Base class for rules that correlate facts across files."""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        raise NotImplementedError


#: Every registered rule class, in code order. Populated by ``register``
#: at import time only — read-only afterwards, so fork-safe by freeze.
RULE_CLASSES: List[Type[Rule]] = []  # repro-lint: disable=RL201


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (idempotent)."""
    if rule_class not in RULE_CLASSES:
        RULE_CLASSES.append(rule_class)
        RULE_CLASSES.sort(key=lambda cls: cls.code)
    return rule_class


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in code order."""
    import repro.lint.rules_data  # noqa: F401  (registration side effect)
    import repro.lint.rules_determinism  # noqa: F401
    import repro.lint.rules_except  # noqa: F401
    import repro.lint.rules_flow  # noqa: F401
    import repro.lint.rules_forksafety  # noqa: F401
    import repro.lint.rules_obs  # noqa: F401
    import repro.lint.rules_protocol  # noqa: F401
    import repro.lint.rules_serve  # noqa: F401

    return [rule_class() for rule_class in RULE_CLASSES]


def is_set_producing(node: ast.AST) -> bool:
    """True for expressions that statically evaluate to a set.

    Deliberately conservative — direct set displays, comprehensions,
    ``set()``/``frozenset()`` calls, set-method calls on those, and set
    algebra over them. Variables of set type are not inferred; consumers
    (RL103 and the flow tier's ``set_iter`` taint source) trade recall
    for a near-zero false-positive rate.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return is_set_producing(node.func.value)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return is_set_producing(node.left) or is_set_producing(node.right)
    return False


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render an ``ast.Name``/``ast.Attribute`` chain as ``a.b.c``."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Local-name → canonical dotted-path resolution for one module.

    ``import datetime as _dt`` maps ``_dt`` → ``datetime``;
    ``from datetime import date`` maps ``date`` → ``datetime.date``. Used
    by rules that forbid (or require) specific callables regardless of
    the aliases a module imports them under.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, dotted: str) -> str:
        """Canonicalize the head of *dotted* through the import aliases."""
        head, sep, rest = dotted.partition(".")
        resolved = self.aliases.get(head, head)
        return resolved + sep + rest if sep else resolved

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        raw = dotted_name(call.func)
        return self.resolve(raw) if raw is not None else None
