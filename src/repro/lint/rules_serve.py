"""Serve-path error contract: RL503 handlers must answer in the error model.

The query service promises that every failure — expected or not —
reaches the client as the JSON error model and never as a traceback or,
worse, a silently wrong 200. An ``except`` clause inside the serve
subsystem that neither re-raises (``raise ApiError(...)`` routes into
the model) nor builds a :func:`repro.serve.app.json_error` response has
swallowed a failure the client will never see.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.base import FileContext, Rule, dotted_name, register
from repro.lint.findings import Finding

#: The one sanctioned error-model constructor in the serve subsystem.
ERROR_MODEL_FUNC = "json_error"


def _handler_answers(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises or builds a JSON error response."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and name.split(".")[-1] == ERROR_MODEL_FUNC:
                return True
    return False


@register
class ServeErrorModelRule(Rule):
    """RL503: serve except clauses must surface failures to the client."""

    code = "RL503"
    name = "serve-swallowed-error"
    rationale = (
        "A serve-path handler that catches an exception without "
        "re-raising or returning json_error(...) hides the failure from "
        "the HTTP client: the response is a 200 built from partial state "
        "or no response at all, violating the API's one-error-model "
        "contract (404/400/405/500, never a traceback, never silence)."
    )
    scope = ("src/repro/serve/",)
    #: The host loop may legitimately catch KeyboardInterrupt to stop
    #: serving — there is no client left to answer at that point.
    exclude = ("src/repro/serve/server.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and not _handler_answers(node):
                yield ctx.finding(
                    self,
                    node,
                    "serve handler swallows the exception instead of "
                    "answering with the JSON error model; raise ApiError "
                    "(or re-raise) or return json_error(...)",
                )
