"""Cross-file flow rules: RL701 taint paths, RL702 RNG labels, RL703 dead exports.

These are the linter's whole-program tier, built on
:mod:`repro.lint.flow`. They exist because the per-file rules cannot see
a nondeterministic value *produced* in one module and *written* in
another, a label collision between RNG forks declared in different
files, or a public symbol nothing in the program ever touches.

RL701 findings carry the complete source→sink hop chain (rendered by
both reporters and queryable with ``repro lint --explain PATH:LINE``)
and may be suppressed at either end of the path — the source line or the
sink line — so the justification comment can sit wherever it reads best.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.base import ProjectIndex, ProjectRule, register
from repro.lint.findings import Finding

#: RL703 only runs when the scanned set contains the real CLI entry
#: point; on the tiny synthetic trees the test suite lints, *everything*
#: is unreachable from a CLI that is not there.
_CLI_ANCHOR_SUFFIXES = ("repro/cli.py",)
_ROOT_MODULES = ("repro.cli", "repro.__main__")
#: Directories scanned from disk for extra references (entry points that
#: live outside the default ``src tests`` lint set).
_EXTRA_REF_DIRS = ("benchmarks", "examples")


@register
class NondetFlowRule(ProjectRule):
    """RL701: no nondeterminism source may flow into a run artifact."""

    code = "RL701"
    name = "nondet-flows-to-artifact"
    rationale = (
        "The headline invariant — batch == stream == sharded, byte for "
        "byte, given a seed — dies the moment a wall-clock read, global "
        "random draw, os.listdir order, or unsorted set iteration reaches "
        "a dataset segment, findings file, checkpoint, serve response, or "
        "metric label. The per-file rules see the source; this one proves "
        "the path to the sink, across functions and modules, and attaches "
        "it to the finding."
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        program = index.program()
        if program is None:
            return
        from repro.lint.flow.taint import analyze_taint

        report = analyze_taint(program)
        for flow in report.flows:
            message = (
                f"{flow.kind}-nondeterminism from {flow.source_kind} "
                f"({flow.source_detail} at "
                f"{flow.source_path}:{flow.source_line}) reaches "
                f"{flow.sink} sink {flow.callee}() through a "
                f"{len(flow.hops)}-hop path"
            )
            yield Finding(
                path=flow.path,
                line=flow.line,
                col=flow.col,
                code=self.code,
                rule=self.name,
                message=message,
                line_text=index.line_text(flow.path, flow.line),
                hops=flow.hops,
            )


@register
class RngLabelRegistryRule(ProjectRule):
    """RL702: RNG fork labels are collision-free and declared."""

    code = "RL702"
    name = "rng-label-registry"
    rationale = (
        "Labelled RNG forks only isolate subsystems if the label "
        "namespace is actually disjoint: two RngStream(seed, \"tls\") "
        "sites in different files silently share one stream, re-coupling "
        "draws the labels were meant to separate. Every root fork's label "
        "tuple must be unique tree-wide and declared in "
        "repro.obs.names.RNG_LABELS (runtime-varying components declared "
        "as '*'), so the namespace is auditable in one place."
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        program = index.program()
        if program is None:
            return
        from repro.lint.flow.graphs import collect_rng_labels

        sites = [
            site for site in collect_rng_labels(program)
            if site.site.kind == "root" and not site.site.variadic
        ]

        by_tuple: Dict[Tuple[str, ...], List] = {}
        for site in sites:
            by_tuple.setdefault(site.labels, []).append(site)
        for labels in sorted(by_tuple):
            group = by_tuple[labels]
            if "*" in labels or len(group) < 2:
                continue
            first = group[0]
            for site in group[1:]:
                yield self._finding(
                    site,
                    f"RNG label tuple {labels!r} collides with the fork at "
                    f"{first.path}:{first.site.line}; the two streams are "
                    "identical, re-coupling draws across call sites",
                )

        declared = index.rng_labels()
        if declared is None:
            return
        declared_set = set(declared)
        used: Set[Tuple[str, ...]] = set()
        for site in sites:
            used.add(site.labels)
            if site.labels not in declared_set:
                yield self._finding(
                    site,
                    f"RNG label tuple {site.labels!r} is not declared in "
                    "repro.obs.names.RNG_LABELS; declare it (use '*' for "
                    "runtime-varying components) so the stream namespace "
                    "stays auditable",
                )
        unused = sorted(declared_set - used)
        if unused:
            location = index.rng_labels_site()
            # Stale declarations are only reportable when the declaring
            # file is itself in the scanned set — a partial lint (one
            # subdirectory, a synthetic test tree) sees few fork sites
            # and would call the whole registry stale.
            if location is not None and location[0] in index.files:
                path, line = location
                for labels in unused:
                    yield Finding(
                        path=path,
                        line=line,
                        col=1,
                        code=self.code,
                        rule=self.name,
                        message=(
                            f"RNG_LABELS declares {labels!r} but no fork "
                            "site uses it; remove the stale entry"
                        ),
                        line_text=index.line_text(path, line),
                    )

    def _finding(self, site, message: str) -> Finding:
        return Finding(
            path=site.path,
            line=site.site.line,
            col=site.site.col,
            code=self.code,
            rule=self.name,
            message=message,
            line_text=site.site.line_text,
        )


@register
class DeadExportRule(ProjectRule):
    """RL703: public symbols reachable from no engine, CLI, or test."""

    code = "RL703"
    name = "dead-export"
    rationale = (
        "A public symbol no engine, CLI entry point, test, or benchmark "
        "references is untested surface area that will silently rot — "
        "the SoK survey's auditable-namespace argument applied to our own "
        "API. Reachability is computed over the alias-resolved reference "
        "graph (package re-exports chased, star imports conservative); "
        "delete the symbol, mark it private, or suppress with a "
        "justification."
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        facts_map = index.all_facts()
        if not any(
            path.endswith(_CLI_ANCHOR_SUFFIXES) for path in facts_map
        ):
            return
        live = _live_prefixes(facts_map)
        for path in sorted(facts_map):
            facts = facts_map[path]
            if not facts.module.startswith("repro."):
                continue
            if facts.module in _ROOT_MODULES or path.endswith("__main__.py"):
                continue
            for definfo in facts.defs:
                if not definfo.public or definfo.decorated:
                    continue
                symbol = f"{facts.module}.{definfo.name}"
                if symbol in live:
                    continue
                yield Finding(
                    path=path,
                    line=definfo.line,
                    col=definfo.col + 1,
                    code=self.code,
                    rule=self.name,
                    message=(
                        f"public {definfo.kind} '{definfo.name}' is "
                        "referenced by no engine, CLI entry point, test, or "
                        "benchmark; delete it, mark it private, or suppress "
                        "with a justification"
                    ),
                    line_text=index.line_text(path, definfo.line),
                )


def _live_prefixes(facts_map: Dict[str, object]) -> Set[str]:
    """Dotted names (and their prefixes) reachable from anything scanned.

    Seeds with every attributed reference in the program plus references
    found in ``benchmarks/``/``examples/`` on disk, then propagates
    through import aliases to a fixpoint so package re-exports keep their
    targets alive, and marks star-import targets wholesale (conservative:
    a ``*`` import may use anything).
    """
    closure: Set[str] = set()

    def add_with_prefixes(dotted: str) -> None:
        parts = dotted.split(".")
        for cut in range(1, len(parts) + 1):
            closure.add(".".join(parts[:cut]))

    all_facts = list(facts_map.values())
    all_facts.extend(_extra_reference_facts())
    modules = {facts.module: facts for facts in all_facts}

    for facts in all_facts:
        for ref in facts.module_refs:
            add_with_prefixes(ref)
        for definfo in facts.defs:
            for ref in definfo.refs:
                add_with_prefixes(ref)
        for star in facts.star_imports:
            target = modules.get(star)
            if target is not None:
                for definfo in target.defs:
                    add_with_prefixes(f"{target.module}.{definfo.name}")

    changed = True
    rounds = 0
    while changed and rounds < 16:
        changed = False
        rounds += 1
        for facts in all_facts:
            for local, target in facts.imports:
                if f"{facts.module}.{local}" in closure and target not in closure:
                    add_with_prefixes(target)
                    changed = True
    return closure


def _extra_reference_facts() -> List:
    """Facts for ``benchmarks/``/``examples/`` files found on disk.

    These directories hold entry points that reference public API but are
    outside the default lint set; missing them would flag live symbols as
    dead. Unreadable or unparsable files are skipped — this is a
    reference sweep, not a lint pass.
    """
    import os

    from repro.lint.flow.facts import extract_module_facts

    out: List = []
    for base in _EXTRA_REF_DIRS:
        if not os.path.isdir(base):
            continue
        for root, dirs, names in os.walk(base):
            dirs[:] = sorted(d for d in dirs if d != "__pycache__")
            for name in sorted(names):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(root, name).replace(os.sep, "/")
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        source = handle.read()
                    out.append(extract_module_facts(path, source=source))
                except Exception:  # repro-lint: disable=RL502  # unreadable extra dirs only shrink the liveness set
                    continue
    return out
