"""Bundle data-plane hygiene: RL601 — bundle I/O goes through repro.data.

The bundle data plane has one front door, :mod:`repro.data`
(``Dataset.open`` / ``open_bundle`` / ``write_dataset``), which reads
both the columnar layout and the legacy JSONL dict layout. Code that
imports the deprecated ``repro.ecosystem.persistence`` shim, or
hardcodes a legacy bundle filename like ``corpus.jsonl.gz``, bypasses
the layout detection — it silently breaks the moment a directory holds
columnar segments, and it pins the on-disk dict format the deprecation
path exists to retire.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.base import FileContext, ImportMap, Rule, register
from repro.lint.findings import Finding

#: The deprecated shim module; only repro.data may sit behind it.
LEGACY_MODULE = "repro.ecosystem.persistence"
LEGACY_FUNCS = ("load_bundle", "save_bundle")

#: On-disk names of the legacy JSONL layout. Declared (once) in
#: repro/data/legacy.py; a literal anywhere else re-encodes the layout.
LEGACY_FILENAMES = (
    "corpus.jsonl.gz",
    "revocations.jsonl.gz",
    "whois_pairs.jsonl.gz",
    "dns_snapshots.jsonl.gz",
)


@register
class LegacyBundleAccessRule(Rule):
    """RL601: route bundle reads/writes through the repro.data API."""

    code = "RL601"
    name = "legacy-bundle-access"
    rationale = (
        "Bundle directories now come in two layouts (columnar segments "
        "and legacy JSONL); repro.data.open_bundle detects which one it "
        "is looking at. Importing the deprecated "
        "repro.ecosystem.persistence shim or hardcoding a legacy "
        "filename skips that detection, so the caller breaks on "
        "columnar bundles and keeps the retired dict layout alive."
    )
    scope = ("src/repro/",)
    #: repro.data owns both layouts; the shim module is the one
    #: sanctioned importer of the legacy reader/writer; this module
    #: necessarily spells the forbidden filenames to recognize them.
    exclude = (
        "src/repro/data/",
        "src/repro/ecosystem/persistence.py",
        "src/repro/lint/rules_data.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        qualified = {f"{LEGACY_MODULE}.{func}" for func in LEGACY_FUNCS}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == LEGACY_MODULE or alias.name.startswith(
                        LEGACY_MODULE + "."
                    ):
                        yield self._import_finding(ctx, node)
                        break
            elif isinstance(node, ast.ImportFrom) and not node.level:
                resolved = {
                    f"{node.module}.{alias.name}"
                    for alias in node.names
                    if node.module and alias.name != "*"
                }
                if node.module == LEGACY_MODULE or any(
                    name == LEGACY_MODULE or name in qualified
                    for name in resolved
                ):
                    yield self._import_finding(ctx, node)
            elif isinstance(node, ast.Call):
                resolved_call = imports.resolve_call(node)
                if resolved_call in qualified:
                    func = resolved_call.rsplit(".", 1)[1]
                    replacement = (
                        "repro.data.open_bundle"
                        if func == "load_bundle"
                        else "repro.data.write_dataset"
                    )
                    yield ctx.finding(
                        self,
                        node,
                        f"call to deprecated {resolved_call}; use "
                        f"{replacement} (reads/writes both layouts)",
                    )
            elif (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value in LEGACY_FILENAMES
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"hardcoded legacy bundle filename {node.value!r}; the "
                    "layout belongs to repro.data.legacy — open the "
                    "directory with repro.data.open_bundle instead",
                )

    def _import_finding(self, ctx: FileContext, node: ast.AST) -> Finding:
        return ctx.finding(
            self,
            node,
            f"import of deprecated {LEGACY_MODULE}; use repro.data "
            "(open_bundle/write_dataset handle both bundle layouts)",
        )
