"""Inline suppression comments.

``# repro-lint: disable=RL101`` at the end of a line suppresses findings
of that code reported *on that physical line* (multiple codes separate
with commas; ``disable=all`` suppresses everything). Suppressions are
deliberately line-scoped: a justification comment sits next to exactly
the construct it excuses, and moving the construct moves — or breaks —
the excuse with it.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Sequence

_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+?)\s*(?:#|$)"
)

ALL = "all"


def parse_suppressions(lines: Sequence[str]) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line number → codes suppressed on that line."""
    out: Dict[int, FrozenSet[str]] = {}
    for index, line in enumerate(lines, start=1):
        if "repro-lint" not in line:
            continue
        match = _PATTERN.search(line)
        if match is None:
            continue
        codes = frozenset(
            part.strip().upper() if part.strip() != ALL else ALL
            for part in match.group(1).split(",")
            if part.strip()
        )
        if codes:
            out[index] = codes
    return out


def is_suppressed(
    suppressions: Dict[int, FrozenSet[str]], line: int, code: str
) -> bool:
    codes = suppressions.get(line)
    return codes is not None and (code.upper() in codes or ALL in codes)
