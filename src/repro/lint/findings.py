"""Lint findings and their canonical ordering.

A :class:`Finding` is one rule violation at one source location. Findings
are value objects: the engine sorts them into a deterministic order
(path, line, column, code) so that text output, JSON output, and baseline
files are stable across runs and platforms — the same property the
detection engines guarantee for staleness findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


@dataclass(frozen=True)
class Hop:
    """One step of a cross-file dataflow path attached to a finding.

    RL701 findings carry the complete source→sink chain as a tuple of
    hops: the nondeterminism source, every propagation step (assignment,
    call, return), and the artifact sink. ``note`` says what happened at
    this location (``"source: os.listdir order"``, ``"passed to
    write_rows()"``, ``"sink: write_dataset"``).
    """

    path: str
    line: int
    note: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.note}"

    def to_record(self) -> Dict[str, Any]:
        return {"path": self.path, "line": self.line, "note": self.note}


@dataclass(frozen=True)
class Fix:
    """A mechanical edit that resolves a finding.

    ``kind`` selects the strategy in :mod:`repro.lint.fixes`;
    ``start``/``end`` are 1-based (line, column) positions delimiting the
    expression the fix rewrites (``end`` is exclusive in columns, matching
    ``ast`` end offsets).
    """

    kind: str
    start: Tuple[int, int]
    end: Tuple[int, int]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    path: str
    line: int
    col: int
    code: str
    rule: str
    message: str
    #: The stripped source line, used for baseline matching (line numbers
    #: drift as files are edited; the offending text usually does not).
    line_text: str = ""
    fix: Optional[Fix] = field(default=None, compare=False)
    #: Source→sink dataflow path (RL701); empty for location findings.
    #: The finding itself sits at the sink; ``hops[0]`` is the source.
    hops: Tuple[Hop, ...] = ()

    @property
    def fixable(self) -> bool:
        return self.fix is not None

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity used to match this finding against a baseline entry."""
        return (self.path, self.code, self.line_text)

    def to_record(self) -> Dict[str, Any]:
        record = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "rule": self.rule,
            "message": self.message,
            "fixable": self.fixable,
        }
        # Key present only for path findings, so the schema of location
        # findings (and every existing consumer) is unchanged.
        if self.hops:
            record["hops"] = [hop.to_record() for hop in self.hops]
        return record

    def render(self) -> str:
        head = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if not self.hops:
            return head
        steps = "\n".join(f"    {i}. {hop.render()}"
                          for i, hop in enumerate(self.hops, start=1))
        return f"{head}\n{steps}"
