"""Determinism rules: RL101 wall clock, RL102 global random, RL103 set order.

These protect the reproduction's headline claim — batch, stream, and
sharded-parallel runs are finding-for-finding identical given a seed.
Wall-clock reads make a simulated 2013–2023 timeline depend on the day
the code runs; the process-global ``random`` module entangles every
subsystem's draws through shared hidden state (the repo's
:mod:`repro.util.rng` label-forked streams exist precisely to prevent
that); and bare ``set`` iteration order is salted per process, so any
merge or ordering path that walks a set unsorted can reorder findings
between two identical runs.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.base import FileContext, ImportMap, Rule, is_set_producing, register
from repro.lint.findings import Finding, Fix

SIMULATION_SCOPE = ("src/repro/",)
#: The observability layer's whole job is reading wall clocks and process
#: state; determinism rules bind everything else under ``src/repro/``.
OBS_EXCLUDE = ("src/repro/obs/",)


@register
class WallClockRule(Rule):
    """RL101: no wall-clock reads in simulation or detection paths."""

    code = "RL101"
    name = "wall-clock-read"
    rationale = (
        "Simulation and detection paths must derive every timestamp from "
        "the simulated timeline (repro.util.dates Day ordinals); a "
        "datetime.now()/time.time() read makes results depend on when the "
        "run happens, breaking seeded reproducibility."
    )
    scope = SIMULATION_SCOPE
    exclude = OBS_EXCLUDE

    FORBIDDEN: Set[str] = {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve_call(node)
            if resolved in self.FORBIDDEN:
                yield ctx.finding(
                    self,
                    node,
                    f"wall-clock read {resolved}() in a simulation/detection "
                    "path; derive time from the simulated timeline "
                    "(repro.util.dates) instead",
                )


@register
class GlobalRandomRule(Rule):
    """RL102: no process-global ``random`` state; fork RngStream instead."""

    code = "RL102"
    name = "global-random"
    rationale = (
        "Module-level random.* draws share one hidden global stream, so a "
        "new draw anywhere perturbs every later draw everywhere; all "
        "randomness must come from repro.util.rng label-forked RngStream "
        "instances (explicitly seeded random.Random is the one allowed "
        "primitive, used by RngStream itself)."
    )
    scope = SIMULATION_SCOPE

    ALLOWED = {"random.Random"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = sorted(
                    alias.name
                    for alias in node.names
                    if alias.name not in ("Random",)
                )
                if bad:
                    yield ctx.finding(
                        self,
                        node,
                        "importing module-level random state "
                        f"({', '.join(bad)}) from 'random'; draw from a "
                        "repro.util.rng RngStream fork instead",
                    )
            elif isinstance(node, ast.Call):
                resolved = imports.resolve_call(node)
                if (
                    resolved is not None
                    and resolved.startswith("random.")
                    and resolved not in self.ALLOWED
                    and resolved.count(".") == 1
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"{resolved}() draws from the process-global RNG; "
                        "use a repro.util.rng RngStream fork so draws in "
                        "one subsystem never perturb another",
                    )


# Shared with the flow tier's ``set_iter`` taint source; the single
# definition lives in :mod:`repro.lint.base`.
_is_set_producing = is_set_producing


@register
class UnsortedSetIterationRule(Rule):
    """RL103: iterating a bare set without ``sorted(...)``."""

    code = "RL103"
    name = "unsorted-set-iteration"
    rationale = (
        "Set iteration order is hash-salted per process; a merge or "
        "ordering path that walks a set unsorted can emit findings in a "
        "different order on every run and between shard workers, breaking "
        "the batch == stream == parallel equivalence. Wrap the iterable "
        "in sorted(...)."
    )
    scope = SIMULATION_SCOPE
    fixable = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for iter_expr in iters:
                if _is_set_producing(iter_expr):
                    fix = None
                    if (
                        getattr(iter_expr, "end_lineno", None) is not None
                        and getattr(iter_expr, "end_col_offset", None) is not None
                    ):
                        fix = Fix(
                            kind="wrap_sorted",
                            start=(iter_expr.lineno, iter_expr.col_offset + 1),
                            end=(iter_expr.end_lineno, iter_expr.end_col_offset + 1),
                        )
                    yield ctx.finding(
                        self,
                        iter_expr,
                        "iteration over a bare set has hash-salted, "
                        "per-process order; wrap the iterable in sorted(...)",
                        fix=fix,
                    )
