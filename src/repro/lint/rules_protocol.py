"""Protocol conformance: RL401/RL402 — registered detectors define the protocol.

The batch pipeline, shard workers, and stream engine never hard-code a
detector class; they iterate registries. That only works while every
registered class actually provides the members the iterating engine
calls — a detector missing ``restore_state`` passes every test that
doesn't resume a checkpoint, then crashes a six-month watch run on day
170. These rules resolve the registry expressions to their classes (pure
AST, across files) and verify each class defines the full protocol.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.base import FileContext, ProjectIndex, ProjectRule, register
from repro.lint.findings import Finding


def _instantiated_class_names(node: ast.AST) -> List[str]:
    """Names called within *node*, in source order (candidate classes)."""
    return [
        call.func.id
        for call in ast.walk(node)
        if isinstance(call, ast.Call) and isinstance(call.func, ast.Name)
    ]


def _self_attr_classes(tree: ast.Module) -> Dict[str, str]:
    """Map ``self.<attr>`` → class name for ``self.x = ClassName(...)``."""
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        if not isinstance(node.value.func, ast.Name):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                mapping[target.attr] = node.value.func.id
    return mapping


class _RegistryProtocolRule(ProjectRule):
    """Shared machinery: find the registry, resolve classes, check members."""

    #: Repo-relative path suffix of the module holding the registry.
    anchor_suffix: str = ""
    #: Name of the registry variable (plain or ``self.<name>`` attribute).
    anchor_name: str = ""
    required_members: Tuple[str, ...] = ()

    def registry_classes(self, ctx: FileContext) -> List[Tuple[str, ast.stmt]]:
        """(class name, registry stmt) for every class the registry holds."""
        raise NotImplementedError

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        ctx = index.find_file(self.anchor_suffix)
        if ctx is None:
            return
        seen: Set[str] = set()
        for class_name, stmt in self.registry_classes(ctx):
            if class_name in seen:
                continue
            seen.add(class_name)
            info = index.classes.get(class_name)
            if info is None:
                # Registered but not found in the scanned file set: either
                # the scan was partial (fine) or the class does not exist
                # (the import would fail long before lint matters).
                continue
            missing = sorted(set(self.required_members) - info.members)
            if missing:
                class_ctx = index.files.get(info.path)
                target = class_ctx if class_ctx is not None else ctx
                node = _AnchorNode(info.lineno, info.col)
                yield target.finding(
                    self,
                    node,
                    f"class {class_name} is registered in "
                    f"{self.anchor_name} but does not define: "
                    f"{', '.join(missing)} (required by every engine that "
                    "iterates the registry)",
                )

    def _find_assignments(self, ctx: FileContext) -> List[ast.stmt]:
        found: List[ast.stmt] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == self.anchor_name
                    ) or (
                        isinstance(target, ast.Attribute)
                        and target.attr == self.anchor_name
                    ):
                        found.append(node)
        return found


class _AnchorNode:
    """Minimal node stand-in carrying a location for Finding construction."""

    def __init__(self, lineno: int, col_offset: int) -> None:
        self.lineno = lineno
        self.col_offset = col_offset


@register
class BatchDetectorProtocolRule(_RegistryProtocolRule):
    """RL401: DETECTOR_REGISTRY build targets satisfy the Detector protocol."""

    code = "RL401"
    name = "batch-detector-protocol"
    rationale = (
        "MeasurementPipeline, the shard workers, and the stream "
        "verification path construct detectors through DETECTOR_REGISTRY "
        "build callables and then call detect() and read stats; a "
        "registered class missing either breaks every engine at once."
    )
    anchor_suffix = "repro/core/pipeline.py"
    anchor_name = "DETECTOR_REGISTRY"
    required_members = ("detect", "stats")

    def registry_classes(self, ctx: FileContext) -> List[Tuple[str, ast.stmt]]:
        out: List[Tuple[str, ast.stmt]] = []
        for stmt in self._find_assignments(ctx):
            value = stmt.value
            if value is None:
                continue
            for node in ast.walk(value):
                if isinstance(node, ast.Call):
                    # Detector construction happens inside the per-entry
                    # ``build`` callables; the spec wrapper class itself is
                    # instantiated at the top level and is not a detector.
                    for keyword in node.keywords:
                        if keyword.arg == "build":
                            out.extend(
                                (name, stmt)
                                for name in _instantiated_class_names(keyword.value)
                            )
        return out


@register
class StreamDetectorProtocolRule(_RegistryProtocolRule):
    """RL402: the stream engine's detector tuple satisfies the full protocol."""

    code = "RL402"
    name = "stream-detector-protocol"
    rationale = (
        "The stream engine dispatches, finalizes, checkpoints, and "
        "restores detectors purely through the uniform registry shape "
        "(name/event_type/consume/finalize/stats/restore_state); a "
        "wrapper missing one member works until the first checkpoint "
        "resume or finalize touches it mid-collection."
    )
    anchor_suffix = "repro/stream/engine.py"
    anchor_name = "_detectors"
    required_members = (
        "name",
        "event_type",
        "consume",
        "finalize",
        "stats",
        "restore_state",
    )

    def registry_classes(self, ctx: FileContext) -> List[Tuple[str, ast.stmt]]:
        self_attrs = _self_attr_classes(ctx.tree)
        out: List[Tuple[str, ast.stmt]] = []
        for stmt in self._find_assignments(ctx):
            value = stmt.value
            if value is None:
                continue
            for node in ast.walk(value):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in self_attrs
                ):
                    out.append((self_attrs[node.attr], stmt))
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Name
                ):
                    out.append((node.func.id, stmt))
        return out
