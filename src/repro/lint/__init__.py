"""``repro.lint`` — AST-based invariant checking for the reproduction.

The detection engines' headline guarantee (batch == stream == sharded,
finding for finding, given a seed) rests on invariants no type checker
sees: no wall-clock reads in simulated paths, all randomness through
label-forked streams, sorted iteration wherever order reaches output,
fork-safe module state, one shared metric namespace, and full protocol
conformance for every registered detector. This package turns those
invariants into CI-gated rules:

``RL000``  parse/IO error (the linter never crashes on bad input)
``RL101``  wall-clock read in a simulation/detection path
``RL102``  process-global ``random`` use
``RL103``  unsorted iteration over a bare set  *(fixable)*
``RL201``  mutable module-level state in worker-reachable code
``RL301``  metric name not declared in ``repro.obs.names``
``RL302``  live-telemetry hygiene (declared phases, daemon threads)
``RL401``  batch ``DETECTOR_REGISTRY`` protocol conformance
``RL402``  stream detector registry protocol conformance
``RL501``  bare ``except:``  *(fixable)*
``RL502``  broad handler that swallows without re-raise or log
``RL503``  serve-path handler that swallows errors outside the error model
``RL601``  segment/bundle access outside the Dataset API
``RL701``  nondeterminism source flows into a run artifact (hop chain)
``RL702``  RNG fork label collision / undeclared / stale declaration
``RL703``  public symbol reachable from no engine, CLI, test, or benchmark

RL7xx are the whole-program tier (:mod:`repro.lint.flow`): per-file facts
are linked into import/call graphs and a taint dataflow, so RL701
findings carry the full source→sink path and can be suppressed at either
end of it. Run ``python -m repro lint [PATHS...]`` (``--jobs N``
parallelizes with identical output; ``--explain PATH:LINE`` prints the
flows through a location; ``--dump-graph FILE`` writes the program
graph); see ``docs/LINTS.md`` for the full catalogue, suppression syntax
(``# repro-lint: disable=RLxxx``), and baseline semantics.
"""

from repro.lint.base import (
    RULE_CLASSES,
    FileContext,
    ImportMap,
    ProjectIndex,
    ProjectRule,
    Rule,
    all_rules,
    register,
)
from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.lint.engine import LintReport, LintRunner, collect_files
from repro.lint.findings import Finding, Fix, Hop
from repro.lint.fixes import apply_fixes, fix_files
from repro.lint.reporters import render_json, render_text
from repro.lint.runner import run_cli
from repro.lint.suppress import parse_suppressions

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "FileContext",
    "Finding",
    "Fix",
    "Hop",
    "ImportMap",
    "LintReport",
    "LintRunner",
    "ProjectIndex",
    "ProjectRule",
    "RULE_CLASSES",
    "Rule",
    "all_rules",
    "apply_fixes",
    "collect_files",
    "fix_files",
    "parse_suppressions",
    "register",
    "render_json",
    "render_text",
    "run_cli",
]
