"""The lint engine: file collection, rule dispatch, suppression, baseline.

Dependency-free by design — ``ast`` + the standard library only — so the
linter runs in CI before anything is installed and can never be broken
by the code it checks. Files are collected deterministically (sorted
walk), findings are reported in (path, line, col, code) order, and a
file that fails to parse is itself a finding (``RL000``) rather than a
crash.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.base import (
    FileContext,
    ProjectIndex,
    ProjectRule,
    Rule,
    all_rules,
)
from repro.lint.baseline import Baseline
from repro.lint.findings import Finding
from repro.lint.suppress import is_suppressed, parse_suppressions

PARSE_ERROR_CODE = "RL000"

#: Directory names never descended into. ``lint_fixtures`` holds the test
#: corpus of deliberate violations; linting it would make the tree
#: permanently dirty.
SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    "build",
    "dist",
    "lint_fixtures",
    "node_modules",
}


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand *paths* (files or directories) into sorted ``.py`` files."""
    seen: Dict[str, None] = {}
    for path in paths:
        if os.path.isfile(path):
            seen.setdefault(_normalize(path))
            continue
        for root, dirs, names in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs
                if d not in SKIP_DIRS and not d.endswith(".egg-info")
            )
            for name in sorted(names):
                if name.endswith(".py"):
                    seen.setdefault(_normalize(os.path.join(root, name)))
    return sorted(seen)


def _normalize(path: str) -> str:
    """Repo-relative POSIX path when under the cwd, else as given."""
    relative = os.path.relpath(path)
    if not relative.startswith(".."):
        path = relative
    return path.replace(os.sep, "/")


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    #: Baseline entries no finding matched — removable.
    unused_baseline: List[Tuple[str, str, str]] = field(default_factory=list)
    #: Baseline entries naming files that no longer exist — an error.
    stale_baseline: List[str] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings and not self.stale_baseline

    def counts_by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts


class LintRunner:
    """Runs a rule set over a file set, applying suppressions + baseline."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        baseline: Optional[Baseline] = None,
    ) -> None:
        self.rules = list(rules) if rules is not None else all_rules()
        self.baseline = baseline

    # -- entry points --------------------------------------------------------

    def run(self, paths: Sequence[str]) -> LintReport:
        files = collect_files(paths)
        contexts: Dict[str, FileContext] = {}
        findings: List[Finding] = []
        for path in files:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as error:
                findings.append(_io_finding(path, str(error)))
                continue
            context, parse_finding = _parse(path, source)
            if parse_finding is not None:
                findings.append(parse_finding)
                continue
            contexts[path] = context
        findings.extend(self.run_contexts(contexts))
        report = LintReport(files_scanned=len(files))
        self._finish(report, findings)
        return report

    def run_source(self, source: str, path: str) -> List[Finding]:
        """Lint one in-memory source under a synthetic *path* (tests)."""
        context, parse_finding = _parse(path, source)
        if parse_finding is not None:
            return [parse_finding]
        return self.run_contexts({path: context})

    def run_contexts(self, contexts: Dict[str, FileContext]) -> List[Finding]:
        findings: List[Finding] = []
        index = ProjectIndex(contexts)
        for path in sorted(contexts):
            context = contexts[path]
            for rule in self.rules:
                if isinstance(rule, ProjectRule) or not rule.applies_to(path):
                    continue
                findings.extend(rule.check(context))
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                findings.extend(rule.check_project(index))
        suppression_cache: Dict[str, Dict] = {}
        kept: List[Finding] = []
        for finding in findings:
            context = contexts.get(finding.path)
            if context is not None:
                if finding.path not in suppression_cache:
                    suppression_cache[finding.path] = parse_suppressions(
                        context.lines
                    )
                if is_suppressed(
                    suppression_cache[finding.path], finding.line, finding.code
                ):
                    continue
            kept.append(finding)
        kept.sort(key=Finding.sort_key)
        return kept

    # -- internals -----------------------------------------------------------

    def _finish(self, report: LintReport, findings: List[Finding]) -> None:
        findings.sort(key=Finding.sort_key)
        if self.baseline is not None:
            new, baselined, unused = self.baseline.partition(findings)
            report.findings = new
            report.baselined = baselined
            report.unused_baseline = unused
            report.stale_baseline = self.baseline.stale_paths()
        else:
            report.findings = findings


def _parse(
    path: str, source: str
) -> Tuple[Optional[FileContext], Optional[Finding]]:
    try:
        return FileContext.parse(path, source), None
    except SyntaxError as error:
        return None, Finding(
            path=path,
            line=error.lineno or 1,
            col=(error.offset or 1),
            code=PARSE_ERROR_CODE,
            rule="parse-error",
            message=f"file does not parse: {error.msg}",
        )


def _io_finding(path: str, message: str) -> Finding:
    return Finding(
        path=path,
        line=1,
        col=1,
        code=PARSE_ERROR_CODE,
        rule="io-error",
        message=f"file is unreadable: {message}",
    )
