"""The lint engine: file collection, rule dispatch, suppression, baseline.

Dependency-free by design — ``ast`` + the standard library only — so the
linter runs in CI before anything is installed and can never be broken
by the code it checks. Files are collected deterministically (sorted
walk), findings are reported in (path, line, col, code) order, and a
file that fails to parse is itself a finding (``RL000``) rather than a
crash.

With ``jobs > 1`` the read/parse/per-file-rule/fact-extraction phase
fans out over a process pool; workers return picklable findings plus
:class:`~repro.lint.flow.facts.ModuleFacts` (never ASTs), and the parent
assembles the whole-program index for the cross-file rules. The final
sort guarantees output is byte-identical for every worker count.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.lint.base import (
    FileContext,
    ProjectIndex,
    ProjectRule,
    Rule,
    all_rules,
)
from repro.lint.baseline import Baseline
from repro.lint.findings import Finding
from repro.lint.suppress import is_suppressed, parse_suppressions

PARSE_ERROR_CODE = "RL000"

#: Below this file count the pool costs more than it saves.
_MIN_FILES_FOR_POOL = 8

#: Directory names never descended into. ``lint_fixtures`` holds the test
#: corpus of deliberate violations; linting it would make the tree
#: permanently dirty.
SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    "build",
    "dist",
    "lint_fixtures",
    "node_modules",
}


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand *paths* (files or directories) into sorted ``.py`` files."""
    seen: Dict[str, None] = {}
    for path in paths:
        if os.path.isfile(path):
            seen.setdefault(_normalize(path))
            continue
        for root, dirs, names in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs
                if d not in SKIP_DIRS and not d.endswith(".egg-info")
            )
            for name in sorted(names):
                if name.endswith(".py"):
                    seen.setdefault(_normalize(os.path.join(root, name)))
    return sorted(seen)


def _normalize(path: str) -> str:
    """Repo-relative POSIX path when under the cwd, else as given."""
    relative = os.path.relpath(path)
    if not relative.startswith(".."):
        path = relative
    return path.replace(os.sep, "/")


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    #: Baseline entries no finding matched — removable.
    unused_baseline: List[Tuple[str, str, str]] = field(default_factory=list)
    #: Baseline entries naming files that no longer exist — an error.
    stale_baseline: List[str] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings and not self.stale_baseline

    def counts_by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts


class _LazyFileMap:
    """Mapping of path → :class:`FileContext`, parsed from disk on access.

    The parallel engine's parent process hands this to the project index
    so cross-file rules that genuinely need a parse (the protocol rules
    open two anchor files) get one, while everything fact-driven touches
    no AST at all. Files that fail to read or parse on access simply
    disappear from ``get`` — their findings were already reported by the
    worker that first saw them.
    """

    def __init__(self, paths: Sequence[str]) -> None:
        self._paths = sorted(paths)
        self._path_set = set(self._paths)
        self._cache: Dict[str, Optional[FileContext]] = {}

    def __iter__(self) -> Iterator[str]:
        return iter(self._paths)

    def __len__(self) -> int:
        return len(self._paths)

    def __contains__(self, path: str) -> bool:
        return path in self._path_set

    def __getitem__(self, path: str) -> FileContext:
        context = self.get(path)
        if context is None:
            raise KeyError(path)
        return context

    def get(self, path: str, default: Optional[FileContext] = None):
        if path not in self._cache:
            context: Optional[FileContext] = None
            if path in self._path_set:
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        context = FileContext.parse(path, handle.read())
                except (OSError, SyntaxError):
                    context = None
            self._cache[path] = context
        found = self._cache[path]
        return found if found is not None else default


def _analyze_file(path: str):
    """Worker-side analysis of one file (also the serial building block).

    Returns ``(path, findings, facts)`` — findings from the per-file
    rules (or the RL000 parse/IO finding), and extracted module facts
    (``None`` when the file did not parse or extraction failed). All
    three are plain picklable values.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as error:
        return (path, [_io_finding(path, str(error))], None)
    context, parse_finding = _parse(path, source)
    if parse_finding is not None:
        return (path, [parse_finding], None)
    findings: List[Finding] = []
    for rule in all_rules():
        if isinstance(rule, ProjectRule) or not rule.applies_to(path):
            continue
        findings.extend(rule.check(context))
    from repro.lint.flow.facts import extract_module_facts

    try:
        facts = extract_module_facts(path, tree=context.tree,
                                     lines=context.lines)
    except Exception:  # repro-lint: disable=RL502  # facts are optional; the file's own findings were already kept
        facts = None
    return (path, findings, facts)


class LintRunner:
    """Runs a rule set over a file set, applying suppressions + baseline."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        baseline: Optional[Baseline] = None,
        jobs: Optional[int] = None,
    ) -> None:
        self._custom_rules = rules is not None
        self.rules = list(rules) if rules is not None else all_rules()
        self.baseline = baseline
        self.jobs = jobs
        #: Set by :meth:`run`: the project index of the last run (for
        #: ``--dump-graph``) and the sources it read (for zero-re-read
        #: ``--fix``; empty after a parallel run, where workers read).
        self.last_index: Optional[ProjectIndex] = None
        self.last_sources: Dict[str, str] = {}

    # -- entry points --------------------------------------------------------

    def run(self, paths: Sequence[str]) -> LintReport:
        files = collect_files(paths)
        jobs = self._effective_jobs(len(files))
        if jobs > 1:
            findings = self._run_parallel(files, jobs)
        else:
            findings = self._run_serial(files)
        report = LintReport(files_scanned=len(files))
        self._finish(report, findings)
        return report

    def run_source(self, source: str, path: str) -> List[Finding]:
        """Lint one in-memory source under a synthetic *path* (tests)."""
        context, parse_finding = _parse(path, source)
        if parse_finding is not None:
            return [parse_finding]
        return self.run_contexts({path: context})

    def run_contexts(self, contexts: Dict[str, FileContext]) -> List[Finding]:
        findings: List[Finding] = []
        index = ProjectIndex(contexts)
        for path in sorted(contexts):
            context = contexts[path]
            for rule in self.rules:
                if isinstance(rule, ProjectRule) or not rule.applies_to(path):
                    continue
                findings.extend(rule.check(context))
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                findings.extend(rule.check_project(index))
        self.last_index = index
        return self._suppress_and_sort(findings, index)

    # -- execution strategies ------------------------------------------------

    def _effective_jobs(self, file_count: int) -> int:
        if self._custom_rules:
            return 1  # a custom rule set may not be picklable/importable
        jobs = self.jobs if self.jobs is not None else 1
        if jobs < 2 or file_count < _MIN_FILES_FOR_POOL:
            return 1
        return min(jobs, file_count)

    def _run_serial(self, files: List[str]) -> List[Finding]:
        contexts: Dict[str, FileContext] = {}
        findings: List[Finding] = []
        self.last_sources = {}
        for path in files:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as error:
                findings.append(_io_finding(path, str(error)))
                continue
            context, parse_finding = _parse(path, source)
            if parse_finding is not None:
                findings.append(parse_finding)
                continue
            contexts[path] = context
            self.last_sources[path] = source
        findings.extend(self.run_contexts(contexts))
        return findings

    def _run_parallel(self, files: List[str], jobs: int) -> List[Finding]:
        from concurrent.futures import ProcessPoolExecutor

        self.last_sources = {}
        findings: List[Finding] = []
        facts_map: Dict[str, object] = {}
        parsed_paths: List[str] = []
        chunksize = max(1, len(files) // (jobs * 4))
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for path, file_findings, facts in pool.map(
                _analyze_file, files, chunksize=chunksize
            ):
                findings.extend(file_findings)
                if facts is not None:
                    facts_map[path] = facts
                    parsed_paths.append(path)
        index = ProjectIndex(_LazyFileMap(parsed_paths), facts=facts_map)
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                findings.extend(rule.check_project(index))
        self.last_index = index
        return self._suppress_and_sort(findings, index)

    # -- internals -----------------------------------------------------------

    def _suppress_and_sort(
        self, findings: List[Finding], index: ProjectIndex
    ) -> List[Finding]:
        cache: Dict[str, Dict] = {}

        def suppressions(path: str) -> Dict:
            if path not in cache:
                cache[path] = index.suppressions_for(path)
            return cache[path]

        kept: List[Finding] = []
        for finding in findings:
            if is_suppressed(
                suppressions(finding.path), finding.line, finding.code
            ):
                continue
            # Path findings (RL701) may be suppressed at the *source* end
            # of the hop chain too — the justification comment belongs
            # wherever it explains the most.
            if finding.hops:
                source_hop = finding.hops[0]
                if is_suppressed(
                    suppressions(source_hop.path), source_hop.line,
                    finding.code,
                ):
                    continue
            kept.append(finding)
        kept.sort(key=Finding.sort_key)
        return kept

    def _finish(self, report: LintReport, findings: List[Finding]) -> None:
        findings.sort(key=Finding.sort_key)
        if self.baseline is not None:
            new, baselined, unused = self.baseline.partition(findings)
            report.findings = new
            report.baselined = baselined
            report.unused_baseline = unused
            report.stale_baseline = self.baseline.stale_paths()
        else:
            report.findings = findings


def _parse(
    path: str, source: str
) -> Tuple[Optional[FileContext], Optional[Finding]]:
    try:
        return FileContext.parse(path, source), None
    except SyntaxError as error:
        return None, Finding(
            path=path,
            line=error.lineno or 1,
            col=(error.offset or 1),
            code=PARSE_ERROR_CODE,
            rule="parse-error",
            message=f"file does not parse: {error.msg}",
        )


def _io_finding(path: str, message: str) -> Finding:
    return Finding(
        path=path,
        line=1,
        col=1,
        code=PARSE_ERROR_CODE,
        rule="io-error",
        message=f"file is unreadable: {message}",
    )
