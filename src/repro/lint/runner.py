"""CLI entry point for ``python -m repro lint`` (argument handling lives
in :mod:`repro.cli`; this module turns parsed args into a lint run).

Exit codes: 0 clean (no new findings, no stale baseline entries), 1
findings or stale baseline, 2 usage/IO errors.
"""

from __future__ import annotations

import os
import sys
from typing import List

from repro.lint.base import all_rules
from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.lint.engine import LintRunner
from repro.lint.fixes import fix_files
from repro.lint.reporters import render_json, render_text

DEFAULT_PATHS = ("src", "tests")


def run_cli(args) -> int:
    if getattr(args, "list_rules", False):
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}" + ("  [fixable]" if rule.fixable else ""))
            print(f"       {rule.rationale}")
        return 0

    paths: List[str] = list(getattr(args, "paths", None) or DEFAULT_PATHS)
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    baseline = None
    baseline_path = getattr(args, "baseline", None) or DEFAULT_BASELINE_NAME
    explicit_baseline = getattr(args, "baseline", None) is not None
    if os.path.exists(baseline_path):
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError) as error:
            print(f"error: cannot load baseline: {error}", file=sys.stderr)
            return 2
    elif explicit_baseline and not getattr(args, "update_baseline", False):
        print(f"error: baseline not found: {baseline_path}", file=sys.stderr)
        return 2

    runner = LintRunner(baseline=baseline)
    report = runner.run(paths)

    if getattr(args, "fix", False):
        fixed = fix_files(report.findings)
        if fixed:
            total = sum(fixed.values())
            print(
                f"fixed {total} finding(s) in {len(fixed)} file(s): "
                + ", ".join(sorted(fixed)),
                file=sys.stderr,
            )
            # Re-lint so the report describes the post-fix tree.
            report = runner.run(paths)

    if getattr(args, "update_baseline", False):
        Baseline.from_findings(report.findings).save(baseline_path)
        print(
            f"wrote baseline with {len(report.findings)} entr"
            f"{'y' if len(report.findings) == 1 else 'ies'} to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    if getattr(args, "format", "text") == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return 0 if report.clean else 1
