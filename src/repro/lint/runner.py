"""CLI entry point for ``python -m repro lint`` (argument handling lives
in :mod:`repro.cli`; this module turns parsed args into a lint run).

Exit codes: 0 clean (no new findings, no stale baseline entries), 1
findings or stale baseline, 2 usage/IO errors.
"""

from __future__ import annotations

import json
import os
import sys
from typing import List, Optional, Tuple

from repro.lint.base import all_rules
from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.lint.engine import LintRunner
from repro.lint.fixes import fix_files
from repro.lint.reporters import render_json, render_text

DEFAULT_PATHS = ("src", "tests")


def _parse_location(spec: str) -> Optional[Tuple[str, int]]:
    """``PATH:LINE`` → (path, line), or None when malformed."""
    path, sep, line_text = spec.rpartition(":")
    if not sep or not path:
        return None
    try:
        line = int(line_text)
    except ValueError:
        return None
    return (path.replace(os.sep, "/"), line)


def _explain(runner: LintRunner, paths: List[str], spec: str) -> int:
    """Print every flow touching ``PATH:LINE`` (the ``--explain`` mode)."""
    location = _parse_location(spec)
    if location is None:
        print(f"error: --explain wants PATH:LINE, got {spec!r}",
              file=sys.stderr)
        return 2
    from repro.lint.flow.taint import analyze_taint

    runner.run(paths)
    index = runner.last_index
    program = index.program() if index is not None else None
    if program is None:
        print("no files analyzed", file=sys.stderr)
        return 2
    target_path, target_line = location
    flows = analyze_taint(program).flows_at(target_path, target_line)
    if not flows:
        print(f"no recorded nondeterminism flow touches "
              f"{target_path}:{target_line}")
        return 0
    for flow in flows:
        print(
            f"{flow.path}:{flow.line}:{flow.col}: {flow.kind}-"
            f"nondeterminism from {flow.source_kind} reaches "
            f"{flow.sink} sink {flow.callee}()"
        )
        for step, hop in enumerate(flow.hops, start=1):
            print(f"    {step}. {hop.render()}")
    return 0


def run_cli(args) -> int:
    if getattr(args, "list_rules", False):
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}" + ("  [fixable]" if rule.fixable else ""))
            print(f"       {rule.rationale}")
        return 0

    paths: List[str] = list(getattr(args, "paths", None) or DEFAULT_PATHS)
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    baseline = None
    baseline_path = getattr(args, "baseline", None) or DEFAULT_BASELINE_NAME
    explicit_baseline = getattr(args, "baseline", None) is not None
    if os.path.exists(baseline_path):
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError) as error:
            print(f"error: cannot load baseline: {error}", file=sys.stderr)
            return 2
    elif explicit_baseline and not getattr(args, "update_baseline", False):
        print(f"error: baseline not found: {baseline_path}", file=sys.stderr)
        return 2

    jobs = getattr(args, "jobs", None)
    if jobs is None:
        jobs = os.cpu_count() or 1
    runner = LintRunner(baseline=baseline, jobs=jobs)

    explain = getattr(args, "explain", None)
    if explain is not None:
        return _explain(runner, paths, explain)

    report = runner.run(paths)

    if getattr(args, "fix", False):
        fixed = fix_files(report.findings, sources=runner.last_sources)
        if fixed:
            total = sum(fixed.values())
            print(
                f"fixed {total} finding(s) in {len(fixed)} file(s): "
                + ", ".join(sorted(fixed)),
                file=sys.stderr,
            )
            # Re-lint so the report describes the post-fix tree.
            report = runner.run(paths)

    dump_graph = getattr(args, "dump_graph", None)
    if dump_graph:
        from repro.lint.flow.graphs import graph_to_json

        index = runner.last_index
        program = index.program() if index is not None else None
        if program is None:
            print("error: no files analyzed; nothing to dump",
                  file=sys.stderr)
            return 2
        try:
            with open(dump_graph, "w", encoding="utf-8") as handle:
                json.dump(graph_to_json(program), handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
        except OSError as error:
            print(f"error: cannot write graph: {error}", file=sys.stderr)
            return 2
        print(f"wrote program graph to {dump_graph}", file=sys.stderr)

    if getattr(args, "update_baseline", False):
        Baseline.from_findings(report.findings).save(baseline_path)
        print(
            f"wrote baseline with {len(report.findings)} entr"
            f"{'y' if len(report.findings) == 1 else 'ies'} to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    if getattr(args, "format", "text") == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return 0 if report.clean else 1
