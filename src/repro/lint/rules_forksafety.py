"""Fork-safety rule: RL201 mutable module-level state in worker-reachable code.

The sharded parallel engine forks (or spawns) worker processes that import
the same modules as the parent. Module-level state that is *mutated* at
runtime silently diverges per process: the parent never sees a worker's
writes, and two workers never see each other's. A constant lookup table
defined once and only read is fine; a module-level cache, accumulator, or
registry that code writes into is a latent correctness bug the moment it
is reached from a shard worker or a ``DETECTOR_REGISTRY`` detector.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.lint.base import FileContext, Rule, register
from repro.lint.findings import Finding

#: Methods that mutate the common container types in place.
MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear", "sort", "reverse",
    "add", "discard", "update", "setdefault", "popitem",
    "appendleft", "extendleft", "popleft",
}


def _module_level_names(tree: ast.Module) -> Dict[str, ast.stmt]:
    """Simple ``NAME = ...`` statements at module level, minus dunders."""
    names: Dict[str, ast.stmt] = {}
    for stmt in tree.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and not (
                target.id.startswith("__") and target.id.endswith("__")
            ):
                names.setdefault(target.id, stmt)
    return names


class _MutationFinder(ast.NodeVisitor):
    """Collects module-level names mutated from nested scopes."""

    def __init__(self, candidates: Set[str]) -> None:
        self.candidates = candidates
        self.mutated: Dict[str, int] = {}  # name -> first mutation lineno
        self._depth = 0  # >0 inside a function/method body

    def _record(self, name: str, lineno: int) -> None:
        if name in self.candidates and name not in self.mutated:
            self.mutated[name] = lineno

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef

    def _target_name(self, node: ast.expr):
        # NAME[...] = / NAME.attr = — the root name is what mutates.
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._depth:
            for target in node.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    name = self._target_name(target)
                    if name is not None:
                        self._record(name, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._depth:
            name = self._target_name(node.target)
            if name is not None:
                self._record(name, node.lineno)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        if self._depth:
            for target in node.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    name = self._target_name(target)
                    if name is not None:
                        self._record(name, node.lineno)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        if self._depth:
            for name in node.names:
                self._record(name, node.lineno)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            self._depth
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
            and isinstance(node.func.value, ast.Name)
        ):
            self._record(node.func.value.id, node.lineno)
        self.generic_visit(node)


@register
class MutableModuleStateRule(Rule):
    """RL201: module-level state mutated at runtime in worker-reachable code."""

    code = "RL201"
    name = "mutable-module-state"
    rationale = (
        "Shard workers import the same modules as the parent process; "
        "module-level state that functions mutate diverges silently per "
        "process (the parent never observes worker writes), so any cache "
        "or accumulator reachable from repro.parallel workers or "
        "DETECTOR_REGISTRY detectors must live on an instance that is "
        "explicitly constructed, passed, and merged."
    )
    scope = ("src/repro/",)
    #: The obs layer's process-wide registry/collector indirection is its
    #: documented design (shard snapshots are merged explicitly); the CLI
    #: runs only in the parent process.
    exclude = ("src/repro/obs/", "src/repro/cli.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        candidates = _module_level_names(ctx.tree)
        if not candidates:
            return
        finder = _MutationFinder(set(candidates))
        finder.visit(ctx.tree)
        for name in sorted(finder.mutated):
            stmt = candidates[name]
            yield ctx.finding(
                self,
                stmt,
                f"module-level '{name}' is mutated at runtime (first write "
                f"at line {finder.mutated[name]}); in forked shard workers "
                "this state diverges silently per process — hold it on an "
                "explicitly passed instance instead",
            )
