"""``repro.lint.flow`` — whole-program determinism dataflow analysis.

The per-file rules (RL1xx…RL6xx) check one statement at a time; this
package is the linter's second tier: it extracts a compact, picklable
fact base per module (:mod:`facts`), links the facts into an import
graph, alias-resolved symbol table, and approximate call graph
(:mod:`graphs`), and runs a taint dataflow over function IRs
(:mod:`taint`) so that a nondeterministic value *produced* in one module
and *written* in another is still caught — with the full source→sink hop
chain attached to the finding.

Fact extraction is deliberately AST-free on the output side: a
:class:`~repro.lint.flow.facts.ModuleFacts` is a value object that
crosses process boundaries, which is what lets ``repro lint --jobs N``
parse and analyze files in worker processes and assemble the
whole-program view in the parent.

Public API::

    facts    = extract_module_facts(path, source)      # per file, any process
    program  = ProgramGraph.build({path: facts, ...})  # import graph + symbols
    calls    = build_call_graph(program)               # static + dynamic edges
    report   = analyze_taint(program)                  # TaintReport with flows
    labels   = collect_rng_labels(program)             # fork-site registry
"""

from repro.lint.flow.facts import (
    ModuleFacts,
    extract_module_facts,
    module_name_for_path,
)
from repro.lint.flow.graphs import (
    CallEdge,
    ProgramGraph,
    build_call_graph,
    build_import_graph,
    collect_rng_labels,
    graph_to_json,
)
from repro.lint.flow.taint import TaintFlow, TaintReport, analyze_taint

__all__ = [
    "CallEdge",
    "ModuleFacts",
    "ProgramGraph",
    "TaintFlow",
    "TaintReport",
    "analyze_taint",
    "build_call_graph",
    "build_import_graph",
    "collect_rng_labels",
    "extract_module_facts",
    "graph_to_json",
    "module_name_for_path",
]
