"""Per-module fact extraction for the whole-program flow analysis.

One call to :func:`extract_module_facts` turns one source file into a
:class:`ModuleFacts` — a compact, frozen, *picklable* value object with
everything the cross-file passes need: the alias-resolved import table,
top-level definitions with the references each makes, a linearized taint
IR per function, RNG fork sites, observability call-site facts, class
member tables, and the file's inline suppressions. No ``ast`` node
survives into the output, which is what allows ``repro lint --jobs N``
to extract facts in worker processes and ship them to the parent.

The taint IR is intentionally small: straight-line op lists (assign /
expression / return / order-kill) over flattened expression trees whose
atoms are variable reads, nondeterminism sources, calls, and sanitized
sub-expressions. Branches are linearized, loops are handled by a second
interpretation pass in :mod:`repro.lint.flow.taint`, and anything the
resolver cannot name statically becomes a *dynamic* call — recorded, not
guessed at.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.base import ClassInfo, is_set_producing
from repro.lint.suppress import parse_suppressions

# --------------------------------------------------------------------------
# Policy tables: what taints, what cleans, what is an artifact.
# --------------------------------------------------------------------------

#: Resolved callable → (source kind, taint kind). ``order`` taint means the
#: *sequence* is nondeterministic (hash-salted or filesystem-dependent);
#: ``value`` taint means the value itself differs between identical runs.
TAINT_SOURCES: Dict[str, Tuple[str, str]] = {
    "time.time": ("wall_clock", "value"),
    "time.time_ns": ("wall_clock", "value"),
    "time.monotonic": ("wall_clock", "value"),
    "time.perf_counter": ("wall_clock", "value"),
    "datetime.datetime.now": ("wall_clock", "value"),
    "datetime.datetime.utcnow": ("wall_clock", "value"),
    "datetime.datetime.today": ("wall_clock", "value"),
    "datetime.date.today": ("wall_clock", "value"),
    "os.listdir": ("fs_order", "order"),
    "os.scandir": ("fs_order", "order"),
    "os.walk": ("fs_order", "order"),
    "glob.glob": ("fs_order", "order"),
    "glob.iglob": ("fs_order", "order"),
    "os.getenv": ("env", "value"),
    "os.environ.get": ("env", "value"),
    "id": ("object_id", "value"),
    "hash": ("object_id", "value"),
    "uuid.uuid1": ("wall_clock", "value"),
    "uuid.uuid4": ("global_random", "value"),
}

#: ``random.<anything>`` except these is a global-RNG source.
RANDOM_ALLOWED = {"random.Random"}

#: Builtins whose result does not depend on the argument's iteration
#: order — they kill ``order`` taint (but can never clean ``value``
#: taint: a sorted list of wall-clock stamps is still nondeterministic).
ORDER_SANITIZERS = {"sorted", "min", "max", "sum", "len", "frozenset.__len__"}

#: Resolved function callables that write run artifacts.
SINK_FUNCTIONS: Dict[str, str] = {
    "repro.data.write_dataset": "dataset-write",
    "repro.data.dataset.write_dataset": "dataset-write",
    "repro.util.storage.dump_json": "artifact-json",
    "repro.util.storage.dump_jsonl": "artifact-json",
    "json.dump": "serialized-json",
    "json.dumps": "serialized-json",
}

#: (class-name suffix, method) → sink kind, matched against resolved
#: method callees like ``repro.data.append.AppendSegmentWriter.append_row``.
SINK_METHODS: Dict[Tuple[str, str], str] = {
    ("AppendSegmentWriter", "append_row"): "segment-append",
    ("CheckpointStore", "save"): "checkpoint",
    ("JsonlStore", "write"): "artifact-jsonl",
}

#: Metric mutators whose **label kwargs** become time-series identity.
METRIC_MUTATORS = {"inc", "observe", "set"}
METRIC_FACTORIES = {"counter", "gauge", "histogram"}

#: Marker type for variables holding a metric handle.
METRIC_TYPE = "=metric"

#: Canonical names of the labelled RNG fork primitives.
FORK_ROOTS = {
    "repro.util.rng.RngStream",
    "repro.util.rng.split_seed",
}
#: Module-local wrapper suffixes that relay (seed, *labels) to a fork.
FORK_WRAPPER_SUFFIXES = ("._hash_uniform",)
RNG_STREAM_CLASS = "repro.util.rng.RngStream"

#: Names whose resolution falls back to the builtin when not imported
#: and not defined in the module.
_KNOWN_BUILTINS = {"sorted", "min", "max", "sum", "len", "id", "hash",
                   "set", "frozenset", "list", "tuple", "dict"}

PHASE_PROGRESS_CALLS = (
    "repro.obs.phase_progress",
    "repro.obs.live.phase_progress",
)


# --------------------------------------------------------------------------
# IR value objects.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SourceRef:
    """One nondeterminism source occurrence."""

    kind: str    # wall_clock | global_random | fs_order | set_iter | env | object_id
    taint: str   # "value" | "order"
    line: int
    detail: str  # the resolved callable / construct, for the hop note
    col: int = 1


@dataclass(frozen=True)
class CallIR:
    """One call site, resolver output attached.

    ``callee`` is the canonical dotted target when resolution succeeded
    (module function, class constructor, or ``Class.method`` for typed
    receivers); ``None`` marks a *dynamic* call — the call graph records
    the edge as unresolved and the taint pass assumes a clean result.
    """

    callee: Optional[str]
    line: int
    col: int = 1
    args: Tuple["ExprIR", ...] = ()
    kwargs: Tuple[Tuple[Optional[str], "ExprIR"], ...] = ()
    method: Optional[str] = None   # attribute name for unresolved method calls
    starred: bool = False          # *args/**kwargs present → arg mapping unknown
    metric_chain: bool = False     # receiver is a metrics handle


@dataclass(frozen=True)
class ExprIR:
    """A flattened expression: atoms plus taint kinds killed at this level.

    Atoms are tagged tuples: ``("read", name)``, ``("src", SourceRef)``,
    ``("call", CallIR)``, ``("sub", ExprIR)`` (a sanitized sub-expression
    carrying its own ``kills``).
    """

    atoms: Tuple[Tuple, ...] = ()
    kills: Tuple[str, ...] = ()


@dataclass(frozen=True)
class OpAssign:
    targets: Tuple[str, ...]
    value: ExprIR
    line: int
    merge: bool = False  # True: augment (subscript/attr store, mutator call)


@dataclass(frozen=True)
class OpExpr:
    value: ExprIR
    line: int


@dataclass(frozen=True)
class OpReturn:
    value: Optional[ExprIR]
    line: int


@dataclass(frozen=True)
class OpKill:
    """In-place order sanitization: ``x.sort()``."""

    name: str
    kinds: Tuple[str, ...]
    line: int


@dataclass(frozen=True)
class FunctionIR:
    qualname: str            # "repro.x.f" | "repro.x.Cls.method" | "repro.x.<module>"
    lineno: int
    params: Tuple[str, ...]  # positional + kw-only, in order; methods include self
    ops: Tuple = ()
    is_method: bool = False


@dataclass(frozen=True)
class DefInfo:
    """A top-level definition and the references its body makes."""

    name: str
    kind: str       # "function" | "class" | "constant"
    line: int
    col: int
    public: bool
    decorated: bool
    refs: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ForkSite:
    """One labelled RNG fork call site."""

    line: int
    col: int
    kind: str                 # "root" (RngStream/split_seed/wrapper) | "split"
    labels: Tuple[str, ...]   # literal components; "*" for runtime-varying
    variadic: bool            # *labels relay — nothing to register here
    detail: str               # resolved callable, for messages
    line_text: str = ""


@dataclass(frozen=True)
class ObsUse:
    """One observability call-site fact (RL301/RL302 input)."""

    kind: str   # metric_literal|metric_foreign|metric_attr|metric_name|metric_other
    #         | phase_missing|phase_dynamic|phase_literal|thread_nondaemon
    line: int
    col: int
    value: str = ""       # literal / constant / module, per kind
    line_text: str = ""


@dataclass(frozen=True)
class ModuleFacts:
    """Everything the cross-file passes need to know about one file."""

    path: str
    module: str
    is_package: bool = False
    imports: Tuple[Tuple[str, str], ...] = ()      # local name → dotted target
    star_imports: Tuple[str, ...] = ()
    defs: Tuple[DefInfo, ...] = ()
    module_refs: Tuple[str, ...] = ()
    functions: Tuple[FunctionIR, ...] = ()
    fork_sites: Tuple[ForkSite, ...] = ()
    obs_uses: Tuple[ObsUse, ...] = ()
    class_infos: Tuple[ClassInfo, ...] = ()
    suppressions: Tuple[Tuple[int, Tuple[str, ...]], ...] = ()
    all_names: Tuple[str, ...] = ()

    def import_map(self) -> Dict[str, str]:
        return dict(self.imports)


#: Path components that anchor a dotted module name. Lint runs may see
#: absolute paths (fixture trees under a tmp dir); anchoring on the first
#: known top-level package keeps module naming stable either way.
_MODULE_ANCHORS = ("repro", "tests", "benchmarks", "examples")


def module_name_for_path(path: str) -> str:
    """Dotted module name for a source path.

    ``src/repro/lint/base.py`` → ``repro.lint.base``;
    ``tests/test_cli.py`` → ``tests.test_cli``; package ``__init__.py``
    files name the package itself. Leading directories before the first
    anchor component (``src/``, tmp-dir prefixes) are dropped.
    """
    clean = path.replace("\\", "/")
    if clean.endswith(".py"):
        clean = clean[: -len(".py")]
    parts = [p for p in clean.split("/") if p not in ("", ".", "..")]
    for index, part in enumerate(parts):
        if part in _MODULE_ANCHORS:
            parts = parts[index:]
            break
    else:
        if parts and parts[0] == "src":
            parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else clean


# --------------------------------------------------------------------------
# Extraction.
# --------------------------------------------------------------------------


class _Extractor:
    def __init__(self, path: str, tree: ast.Module, lines: List[str]) -> None:
        self.path = path
        self.tree = tree
        self.lines = lines
        self.module = module_name_for_path(path)
        self.is_package = path.endswith("/__init__.py") or path == "__init__.py"
        self.imports: Dict[str, str] = {}
        self.star_imports: List[str] = []
        self.top_defs: Set[str] = set()
        self.fork_sites: List[ForkSite] = []
        self.obs_uses: List[ObsUse] = []
        # Per-class ``self.<attr>`` types (class name → attr → type marker).
        self.self_attr_types: Dict[str, Dict[str, str]] = {}
        # Local variable types for the function currently being flattened.
        self._var_types: Dict[str, str] = {}
        self._current_class: Optional[str] = None

    # -- driving ------------------------------------------------------------

    def extract(self) -> ModuleFacts:
        self._collect_imports()
        self._collect_top_defs()
        self._collect_self_attr_types()
        defs, module_refs, functions = self._collect_defs_and_functions()
        # Walk order (not just top level) so nested classes keep parity
        # with the AST-walking index the context-based rules used.
        class_infos = tuple(
            ClassInfo.from_node(self.path, node)
            for node in ast.walk(self.tree)
            if isinstance(node, ast.ClassDef)
        )
        self._collect_obs_uses()
        suppressions = tuple(
            (line, tuple(sorted(codes)))
            for line, codes in sorted(parse_suppressions(self.lines).items())
        )
        return ModuleFacts(
            path=self.path,
            module=self.module,
            is_package=self.is_package,
            imports=tuple(sorted(self.imports.items())),
            star_imports=tuple(sorted(set(self.star_imports))),
            defs=defs,
            module_refs=module_refs,
            functions=functions,
            fork_sites=tuple(sorted(self.fork_sites,
                                    key=lambda s: (s.line, s.col))),
            obs_uses=tuple(self.obs_uses),
            class_infos=class_infos,
            suppressions=suppressions,
            all_names=self._collect_all_names(),
        )

    # -- imports ------------------------------------------------------------

    def _collect_imports(self) -> None:
        package = self.module if self.is_package else self.module.rpartition(".")[0]
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    up = package.split(".") if package else []
                    up = up[: len(up) - (node.level - 1)] if node.level > 1 else up
                    base = ".".join(up + ([node.module] if node.module else []))
                if not base:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        self.star_imports.append(base)
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{base}.{alias.name}"

    def _collect_top_defs(self) -> None:
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self.top_defs.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.top_defs.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                self.top_defs.add(stmt.target.id)

    def _collect_self_attr_types(self) -> None:
        for cls in self.tree.body:
            if not isinstance(cls, ast.ClassDef):
                continue
            table: Dict[str, str] = {}
            for node in ast.walk(cls):
                if not (isinstance(node, ast.Assign)
                        and isinstance(node.value, ast.Call)):
                    continue
                marker = self._type_of_call(node.value)
                if marker is None:
                    continue
                for target in node.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        table[target.attr] = marker
            if table:
                self.self_attr_types[cls.name] = table

    def _type_of_call(self, call: ast.Call) -> Optional[str]:
        """Type marker when *call* constructs a class or a metric handle."""
        resolved = self._resolve_callable_name(call.func)
        if resolved is None:
            if (isinstance(call.func, ast.Attribute)
                    and call.func.attr in METRIC_FACTORIES):
                return METRIC_TYPE
            return None
        last = resolved.rsplit(".", 1)[-1]
        if last in METRIC_FACTORIES:
            return METRIC_TYPE
        if last[:1].isupper():
            return resolved
        return None

    # -- defs, references, function IRs -------------------------------------

    def _collect_defs_and_functions(self):
        defs: List[DefInfo] = []
        module_refs: Set[str] = set()
        functions: List[FunctionIR] = []
        module_ops: List = []

        self._var_types = self._scan_var_types(self.tree.body, params=None)
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defs.append(self._def_info(stmt, "function"))
                for deco in stmt.decorator_list:
                    module_refs.update(self._refs_in(deco))
                functions.append(self._function_ir(stmt, class_name=None))
            elif isinstance(stmt, ast.ClassDef):
                defs.append(self._def_info(stmt, "class"))
                for deco in stmt.decorator_list + stmt.bases:
                    module_refs.update(self._refs_in(deco))
                self._current_class = stmt.name
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        functions.append(
                            self._function_ir(sub, class_name=stmt.name)
                        )
                self._current_class = None
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                continue
            else:
                module_refs.update(self._refs_in(stmt))
                if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    defs.extend(self._constant_defs(stmt))
                self._current_class = None
                module_ops.extend(self._ops_for_stmt(stmt))
        functions.append(
            FunctionIR(
                qualname=f"{self.module}.<module>",
                lineno=1,
                params=(),
                ops=tuple(module_ops),
            )
        )
        return tuple(defs), tuple(sorted(module_refs)), tuple(functions)

    def _constant_defs(self, stmt) -> List[DefInfo]:
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        out = []
        for target in targets:
            if isinstance(target, ast.Name):
                out.append(DefInfo(
                    name=target.id,
                    kind="constant",
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    public=not target.id.startswith("_"),
                    decorated=False,
                ))
        return out

    def _def_info(self, node, kind: str) -> DefInfo:
        return DefInfo(
            name=node.name,
            kind=kind,
            line=node.lineno,
            col=node.col_offset,
            public=not node.name.startswith("_"),
            decorated=bool(node.decorator_list),
            refs=tuple(sorted(self._refs_in(node))),
        )

    def _refs_in(self, node: ast.AST) -> Set[str]:
        """Canonical dotted references made anywhere inside *node*."""
        refs: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Import, ast.ImportFrom)):
                continue
            if isinstance(sub, ast.Attribute) and isinstance(sub.ctx, ast.Load):
                dotted = self._dotted_parts(sub)
                if dotted is None:
                    continue
                head, rest = dotted[0], dotted[1:]
                base = self._resolve_head(head)
                if base is not None:
                    refs.add(".".join([base] + list(rest)))
            elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                base = self._resolve_head(sub.id)
                if base is not None:
                    refs.add(base)
        return refs

    def _resolve_head(self, name: str) -> Optional[str]:
        if name in self.imports:
            return self.imports[name]
        if name in self.top_defs:
            return f"{self.module}.{name}"
        return None

    @staticmethod
    def _dotted_parts(node: ast.AST) -> Optional[List[str]]:
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            parts.append(current.id)
            return list(reversed(parts))
        return None

    # -- function IR ---------------------------------------------------------

    def _function_ir(self, node, class_name: Optional[str]) -> FunctionIR:
        params = [a.arg for a in node.args.posonlyargs + node.args.args
                  + node.args.kwonlyargs]
        qual = (f"{self.module}.{class_name}.{node.name}" if class_name
                else f"{self.module}.{node.name}")
        outer_types = self._var_types
        self._current_class = class_name
        self._var_types = self._scan_var_types(node.body, params=node.args)
        ops: List = []
        for stmt in node.body:
            ops.extend(self._ops_for_stmt(stmt))
        self._var_types = outer_types
        self._current_class = None
        return FunctionIR(
            qualname=qual,
            lineno=node.lineno,
            params=tuple(params),
            ops=tuple(ops),
            is_method=class_name is not None,
        )

    def _scan_var_types(self, body, params) -> Dict[str, str]:
        types: Dict[str, str] = {}
        if params is not None:
            for arg in params.posonlyargs + params.args + params.kwonlyargs:
                if arg.annotation is not None:
                    dotted = self._dotted_parts(arg.annotation)
                    if dotted:
                        base = self._resolve_head(dotted[0])
                        resolved = ".".join([base] + dotted[1:]) if base else None
                        if resolved and resolved.rsplit(".", 1)[-1][:1].isupper():
                            types[arg.arg] = resolved
        for stmt in body:
            for node in ast.walk(stmt):
                if (isinstance(node, ast.Assign)
                        and isinstance(node.value, ast.Call)):
                    marker = self._type_of_call(node.value)
                    if marker is None:
                        continue
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            types[target.id] = marker
        return types

    # -- statements → ops ----------------------------------------------------

    _MUTATORS = {"append", "extend", "add", "update", "insert", "setdefault",
                 "appendleft", "push"}

    def _ops_for_stmt(self, stmt) -> List:
        ops: List = []
        if isinstance(stmt, ast.Assign):
            plain: List[str] = []
            merged: List[str] = []
            for target in stmt.targets:
                plain_t, merged_t = self._target_names(target)
                plain.extend(plain_t)
                merged.extend(merged_t)
            value = self._flatten(stmt.value)
            if plain:
                ops.append(OpAssign(tuple(plain), value, stmt.lineno))
            if merged:
                ops.append(OpAssign(tuple(merged), value, stmt.lineno, merge=True))
            if not plain and not merged:
                ops.append(OpExpr(value, stmt.lineno))
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                plain, merged = self._target_names(stmt.target)
                names = tuple(plain + merged)
                value = self._flatten(stmt.value)
                if names:
                    ops.append(OpAssign(names, value, stmt.lineno,
                                        merge=bool(merged)))
                else:
                    ops.append(OpExpr(value, stmt.lineno))
        elif isinstance(stmt, ast.AugAssign):
            plain, merged = self._target_names(stmt.target)
            names = tuple(plain + merged)
            value = self._flatten(stmt.value)
            if names:
                ops.append(OpAssign(names, value, stmt.lineno, merge=True))
        elif isinstance(stmt, ast.Expr):
            ops.extend(self._ops_for_expr_stmt(stmt))
        elif isinstance(stmt, ast.Return):
            value = self._flatten(stmt.value) if stmt.value is not None else None
            ops.append(OpReturn(value, stmt.lineno))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            plain, merged = self._target_names(stmt.target)
            iter_ir = self._flatten(stmt.iter, iteration=True)
            ops.append(OpAssign(tuple(plain + merged), iter_ir, stmt.lineno,
                                merge=True))
            for sub in stmt.body + stmt.orelse:
                ops.extend(self._ops_for_stmt(sub))
        elif isinstance(stmt, ast.While):
            ops.append(OpExpr(self._flatten(stmt.test), stmt.lineno))
            for sub in stmt.body + stmt.orelse:
                ops.extend(self._ops_for_stmt(sub))
        elif isinstance(stmt, ast.If):
            ops.append(OpExpr(self._flatten(stmt.test), stmt.lineno))
            for sub in stmt.body + stmt.orelse:
                ops.extend(self._ops_for_stmt(sub))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                ctx_ir = self._flatten(item.context_expr)
                if item.optional_vars is not None:
                    plain, merged = self._target_names(item.optional_vars)
                    names = tuple(plain + merged)
                    if names:
                        ops.append(OpAssign(names, ctx_ir, stmt.lineno))
                        continue
                ops.append(OpExpr(ctx_ir, stmt.lineno))
            for sub in stmt.body:
                ops.extend(self._ops_for_stmt(sub))
        elif isinstance(stmt, ast.Try):
            blocks = [stmt.body, stmt.orelse, stmt.finalbody]
            for handler in stmt.handlers:
                blocks.append(handler.body)
            for block in blocks:
                for sub in block:
                    ops.extend(self._ops_for_stmt(sub))
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef, ast.Import, ast.ImportFrom,
                               ast.Global, ast.Nonlocal, ast.Pass,
                               ast.Break, ast.Continue)):
            pass
        elif isinstance(stmt, (ast.Raise, ast.Assert, ast.Delete)):
            for node in ast.iter_child_nodes(stmt):
                if isinstance(node, ast.expr):
                    ops.append(OpExpr(self._flatten(node), stmt.lineno))
        else:  # Match and anything future: flatten child expressions.
            for node in ast.iter_child_nodes(stmt):
                if isinstance(node, ast.expr):
                    ops.append(OpExpr(self._flatten(node), stmt.lineno))
        return ops

    def _ops_for_expr_stmt(self, stmt: ast.Expr) -> List:
        value = stmt.value
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
            recv = self._receiver_name(value.func.value)
            if recv is not None:
                if value.func.attr == "sort" and not value.args:
                    return [OpKill(recv, ("order",), stmt.lineno)]
                if value.func.attr in self._MUTATORS:
                    parts: List[ExprIR] = [self._flatten(a) for a in value.args]
                    parts.extend(self._flatten(k.value) for k in value.keywords)
                    atoms: List[Tuple] = []
                    for part in parts:
                        atoms.append(("sub", part))
                    merged = ExprIR(atoms=tuple(atoms))
                    # Still surface the call itself (it may be a sink on a
                    # typed receiver, e.g. writer.append_row(row)).
                    return [
                        OpExpr(self._flatten(value), stmt.lineno),
                        OpAssign((recv,), merged, stmt.lineno, merge=True),
                    ]
        return [OpExpr(self._flatten(value), stmt.lineno)]

    def _receiver_name(self, node: ast.AST) -> Optional[str]:
        """``x`` or ``self.attr`` receiver spelling, else None."""
        if isinstance(node, ast.Name):
            return node.id
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return f"self.{node.attr}"
        return None

    def _target_names(self, target) -> Tuple[List[str], List[str]]:
        """(plain overwrite names, merge-into names) for an assign target."""
        plain: List[str] = []
        merged: List[str] = []
        if isinstance(target, ast.Name):
            plain.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                p, m = self._target_names(elt)
                plain.extend(p)
                merged.extend(m)
        elif isinstance(target, ast.Starred):
            p, m = self._target_names(target.value)
            plain.extend(p)
            merged.extend(m)
        elif isinstance(target, ast.Attribute):
            recv = self._receiver_name(target)
            if recv is not None:
                plain.append(recv)
            else:
                base = self._receiver_name(target.value)
                if base is not None:
                    merged.append(base)
        elif isinstance(target, ast.Subscript):
            base = self._receiver_name(target.value)
            if base is not None:
                merged.append(base)
        return plain, merged

    # -- expressions → ExprIR ------------------------------------------------

    def _flatten(self, node: ast.AST, iteration: bool = False) -> ExprIR:
        atoms: List[Tuple] = []
        self._flatten_into(node, atoms, iteration=iteration)
        return ExprIR(atoms=tuple(atoms))

    def _flatten_into(self, node, atoms: List[Tuple], iteration: bool = False):
        if node is None:
            return
        if iteration and is_set_producing(node):
            atoms.append(("src", SourceRef(
                kind="set_iter",
                taint="order",
                line=getattr(node, "lineno", 1),
                detail="unsorted set iteration",
                col=getattr(node, "col_offset", 0) + 1,
            )))
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                atoms.append(("read", node.id))
            return
        if isinstance(node, ast.Constant):
            return
        if isinstance(node, ast.Call):
            self._flatten_call(node, atoms)
            return
        if isinstance(node, ast.Attribute):
            recv = self._receiver_name(node)
            if recv is not None and recv.startswith("self."):
                atoms.append(("read", recv))
                return
            self._flatten_into(node.value, atoms)
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            for gen in node.generators:
                self._flatten_into(gen.iter, atoms, iteration=True)
                for cond in gen.ifs:
                    self._flatten_into(cond, atoms)
            if isinstance(node, ast.DictComp):
                self._flatten_into(node.key, atoms)
                self._flatten_into(node.value, atoms)
            else:
                self._flatten_into(node.elt, atoms)
            return
        if isinstance(node, ast.Lambda):
            return  # opaque; calls through it are dynamic anyway
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._flatten_into(child, atoms)
            elif isinstance(child, ast.FormattedValue):
                self._flatten_into(child.value, atoms)

    def _flatten_call(self, node: ast.Call, atoms: List[Tuple]) -> None:
        resolved = self._resolve_callable_name(node.func)
        line = node.lineno

        self._maybe_fork_site(node, resolved)

        # Nondeterminism sources: the call result is tainted regardless of
        # its arguments (it is the order/value that is nondeterministic).
        source = self._source_for(resolved)
        if source is not None:
            kind, taint = source
            atoms.append(("src", SourceRef(kind=kind, taint=taint, line=line,
                                           detail=f"{resolved}()",
                                           col=node.col_offset + 1)))
            return

        # Order sanitizers: the arguments' order taint dies here.
        if resolved in ORDER_SANITIZERS:
            inner: List[Tuple] = []
            for arg in node.args:
                self._flatten_into(arg, inner)
            for kw in node.keywords:
                self._flatten_into(kw.value, inner)
            atoms.append(("sub", ExprIR(atoms=tuple(inner), kills=("order",))))
            return

        # RNG forks are deterministic by construction.
        if resolved in FORK_ROOTS or (
            resolved is not None
            and resolved.endswith(FORK_WRAPPER_SUFFIXES)
        ):
            return

        method = None
        metric_chain = False
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            metric_chain = self._is_metric_receiver(node.func.value, method)
        starred = any(isinstance(a, ast.Starred) for a in node.args) or any(
            kw.arg is None for kw in node.keywords
        )
        args = tuple(self._flatten(a.value if isinstance(a, ast.Starred) else a)
                     for a in node.args)
        kwargs = tuple((kw.arg, self._flatten(kw.value))
                       for kw in node.keywords)
        atoms.append(("call", CallIR(
            callee=resolved,
            line=line,
            col=node.col_offset + 1,
            args=args,
            kwargs=kwargs,
            method=method,
            starred=starred,
            metric_chain=metric_chain,
        )))

    def _source_for(self, resolved: Optional[str]):
        if resolved is None:
            return None
        if resolved in TAINT_SOURCES:
            return TAINT_SOURCES[resolved]
        if (resolved.startswith("random.")
                and resolved not in RANDOM_ALLOWED
                and resolved.count(".") == 1):
            return ("global_random", "value")
        return None

    def _is_metric_receiver(self, recv: ast.AST, method: str) -> bool:
        if method not in METRIC_MUTATORS:
            return False
        if (isinstance(recv, ast.Call)
                and isinstance(recv.func, ast.Attribute)
                and recv.func.attr in METRIC_FACTORIES):
            return True
        name = self._receiver_name(recv)
        if name is None:
            return False
        if name.startswith("self."):
            table = self.self_attr_types.get(self._current_class or "", {})
            return table.get(name[len("self."):]) == METRIC_TYPE
        return self._var_types.get(name) == METRIC_TYPE

    # -- callable resolution -------------------------------------------------

    def _resolve_callable_name(self, func: ast.AST) -> Optional[str]:
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.imports:
                return self.imports[name]
            if name in self.top_defs:
                return f"{self.module}.{name}"
            if name in _KNOWN_BUILTINS:
                return name
            return None
        parts = self._dotted_parts(func)
        if parts is None:
            return None
        head, rest = parts[0], parts[1:]
        if head == "self":
            cls = self._current_class
            if cls is None:
                return None
            if len(rest) == 1:
                return f"{self.module}.{cls}.{rest[0]}"
            if len(rest) == 2:
                attr_type = self.self_attr_types.get(cls, {}).get(rest[0])
                if attr_type and attr_type != METRIC_TYPE:
                    return f"{attr_type}.{rest[1]}"
            return None
        if head in self.imports:
            return ".".join([self.imports[head]] + rest)
        if head in self._var_types and len(rest) == 1:
            var_type = self._var_types[head]
            if var_type != METRIC_TYPE:
                return f"{var_type}.{rest[0]}"
            return None
        if head in self.top_defs:
            return ".".join([self.module, head] + rest)
        return None

    # -- RNG fork sites ------------------------------------------------------

    def _maybe_fork_site(self, node: ast.Call, resolved: Optional[str]) -> None:
        kind = None
        label_args: Sequence[ast.expr] = ()
        detail = resolved or ""
        if resolved in FORK_ROOTS:
            kind, label_args = "root", node.args[1:]
        elif resolved is not None and resolved.endswith(FORK_WRAPPER_SUFFIXES):
            kind, label_args = "root", node.args[1:]
        elif resolved is not None and resolved == f"{RNG_STREAM_CLASS}.split":
            kind, label_args = "split", node.args
            detail = "RngStream.split"
        elif (isinstance(node.func, ast.Attribute)
              and node.func.attr == "split" and node.args):
            recv = self._receiver_name(node.func.value)
            if recv is not None and "rng" in recv.rsplit(".", 1)[-1].lower():
                kind, label_args = "split", node.args
                detail = f"{recv}.split"
        if kind is None:
            return
        variadic = any(isinstance(a, ast.Starred) for a in node.args)
        labels = tuple(
            a.value if isinstance(a, ast.Constant) and isinstance(a.value, str)
            else "*"
            for a in label_args
            if not isinstance(a, ast.Starred)
        )
        self.fork_sites.append(ForkSite(
            line=node.lineno,
            col=node.col_offset + 1,
            kind=kind,
            labels=labels,
            variadic=variadic,
            detail=detail,
            line_text=self._line_text(node.lineno),
        ))

    # -- observability facts -------------------------------------------------

    def _collect_obs_uses(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            self._metric_use(node)
            resolved = self._resolve_dotted_loose(node.func)
            if resolved in PHASE_PROGRESS_CALLS:
                self._phase_use(node)
            elif resolved == "threading.Thread":
                self._thread_use(node)

    def _resolve_dotted_loose(self, func: ast.AST) -> Optional[str]:
        """Import-alias resolution without local-type smarts (rule parity
        with :class:`repro.lint.base.ImportMap`)."""
        parts = self._dotted_parts(func)
        if parts is None:
            return None
        head, rest = parts[0], parts[1:]
        base = self.imports.get(head, head)
        return ".".join([base] + rest)

    def _metric_use(self, node: ast.Call) -> None:
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr in METRIC_FACTORIES
                and node.args):
            return
        if isinstance(node.func.value, ast.Name) and node.func.value.id in (
            "self", "cls",
        ):
            return
        name_arg = node.args[0]
        line, col = name_arg.lineno, name_arg.col_offset + 1
        text = self._line_text(line)
        if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str):
            self.obs_uses.append(ObsUse("metric_literal", line, col,
                                        name_arg.value, text))
            return
        if isinstance(name_arg, ast.Attribute) and isinstance(
            name_arg.value, ast.Name
        ):
            module = self.imports.get(name_arg.value.id, name_arg.value.id)
            if module != "repro.obs.names":
                self.obs_uses.append(ObsUse("metric_foreign", line, col,
                                            module, text))
            else:
                self.obs_uses.append(ObsUse("metric_attr", line, col,
                                            name_arg.attr, text))
            return
        if isinstance(name_arg, ast.Name):
            origin = self.imports.get(name_arg.id, name_arg.id)
            if origin.startswith("repro.obs.names."):
                self.obs_uses.append(ObsUse("metric_name", line, col,
                                            origin.rsplit(".", 1)[1], text))
                return
        self.obs_uses.append(ObsUse("metric_other", line, col, "", text))

    def _phase_use(self, node: ast.Call) -> None:
        if not node.args:
            self.obs_uses.append(ObsUse(
                "phase_missing", node.lineno, node.col_offset + 1, "",
                self._line_text(node.lineno),
            ))
            return
        phase_arg = node.args[0]
        line, col = phase_arg.lineno, phase_arg.col_offset + 1
        if not (isinstance(phase_arg, ast.Constant)
                and isinstance(phase_arg.value, str)):
            self.obs_uses.append(ObsUse("phase_dynamic", line, col, "",
                                        self._line_text(line)))
            return
        self.obs_uses.append(ObsUse("phase_literal", line, col,
                                    phase_arg.value, self._line_text(line)))

    def _thread_use(self, node: ast.Call) -> None:
        for keyword in node.keywords:
            if (keyword.arg == "daemon"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True):
                return
        self.obs_uses.append(ObsUse(
            "thread_nondaemon", node.lineno, node.col_offset + 1, "",
            self._line_text(node.lineno),
        ))

    # -- misc ----------------------------------------------------------------

    def _collect_all_names(self) -> Tuple[str, ...]:
        for stmt in self.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "__all__":
                        value = stmt.value
                        if isinstance(value, (ast.List, ast.Tuple)):
                            return tuple(
                                e.value for e in value.elts
                                if isinstance(e, ast.Constant)
                                and isinstance(e.value, str)
                            )
        return ()

    def _line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


def extract_module_facts(
    path: str,
    source: Optional[str] = None,
    tree: Optional[ast.Module] = None,
    lines: Optional[List[str]] = None,
) -> ModuleFacts:
    """Extract :class:`ModuleFacts` from one file.

    Pass ``source`` (parsed here), a pre-parsed ``tree`` + ``lines`` pair
    (the lint engine reuses its own parse), or neither — then the file is
    read from disk. Raises ``SyntaxError`` on unparsable source and
    ``OSError`` on unreadable files, same as the engine's own steps.
    """
    if tree is None:
        if source is None:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        tree = ast.parse(source, filename=path)
        lines = source.splitlines()
    if lines is None:
        lines = source.splitlines() if source is not None else []
    return _Extractor(path, tree, lines).extract()
