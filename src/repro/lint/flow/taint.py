"""Interprocedural taint dataflow over extracted function IRs.

The engine answers one question: *can a nondeterministic value or
ordering reach a run artifact?* It interprets each function's linearized
op list abstractly — variables map to sets of taint values — and builds
per-function **summaries** (what the return value carries, which
parameters flow to sinks) so taint crosses function boundaries along the
resolved call graph. Summaries compose under a bounded fixpoint, so a
source three calls away from its sink still produces one finding with
the complete hop chain.

Design limits, on purpose:

* **Dynamic calls drop taint.** A call the resolver could not name
  statically returns a clean value; the call graph records the dynamic
  edge so the blind spot is visible, but the engine never guesses.
* **Branches are linearized** and loops interpreted twice (one carry
  pass), trading path-sensitivity for speed and determinism.
* **Strong updates** on plain assignment: ``files = sorted(files)``
  really does clean ``files`` — the idiomatic sanitizer must win or the
  analysis would drown its own signal in false positives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.lint.findings import Hop
from repro.lint.flow.facts import (
    CallIR,
    ExprIR,
    FunctionIR,
    METRIC_MUTATORS,
    OpAssign,
    OpExpr,
    OpKill,
    OpReturn,
    SINK_FUNCTIONS,
    SINK_METHODS,
)
from repro.lint.flow.graphs import ProgramGraph

#: Builtins that forward their argument's taint (including order).
_PASSTHROUGH = {"list", "tuple", "dict", "set", "frozenset"}

_MAX_ROUNDS = 5
_MAX_HOPS = 12
_MAX_VALS_PER_VAR = 16


@dataclass(frozen=True)
class TaintVal:
    """One abstract taint carried by a variable or expression.

    ``origin`` is ``("src", source_kind, path, line, detail)`` for a real
    nondeterminism source, or ``("param", name)`` for the symbolic marker
    used while computing a function summary.
    """

    kind: str                 # "value" | "order"
    origin: Tuple
    hops: Tuple[Hop, ...] = ()


@dataclass(frozen=True)
class _Flow:
    """A taint value arriving at a sink (origin may still be a param)."""

    origin: Tuple
    kind: str
    sink: str                 # sink kind, e.g. "dataset-write"
    callee: str               # short callee name at the sink call
    path: str
    line: int
    col: int
    hops: Tuple[Hop, ...]


@dataclass(frozen=True)
class _Summary:
    returns: FrozenSet[TaintVal] = frozenset()
    #: Param-origin flows only; src-origin flows are reported where found.
    sink_flows: FrozenSet[_Flow] = frozenset()


@dataclass(frozen=True)
class TaintFlow:
    """One confirmed source→sink dataflow, ready to become a finding."""

    path: str                 # sink location
    line: int
    col: int
    kind: str                 # "value" | "order"
    source_kind: str          # wall_clock | fs_order | ...
    source_path: str
    source_line: int
    source_detail: str
    sink: str
    callee: str
    hops: Tuple[Hop, ...]

    def sort_key(self):
        return (self.path, self.line, self.col, self.source_path,
                self.source_line, self.kind, self.sink)


@dataclass
class TaintReport:
    """All flows found in one program, deterministically ordered."""

    flows: Tuple[TaintFlow, ...] = ()

    def flows_at(self, path: str, line: int) -> Tuple[TaintFlow, ...]:
        """Flows whose sink **or** any hop touches ``path:line``.

        Backs ``repro lint --explain PATH:LINE``.
        """
        hits = []
        for flow in self.flows:
            if (flow.path == path and flow.line == line) or any(
                hop.path == path and hop.line == line for hop in flow.hops
            ):
                hits.append(flow)
        return tuple(hits)


def classify_sink(resolved: Optional[str], call: CallIR) -> Optional[str]:
    """Sink kind when this call writes a run artifact, else None."""
    if call.metric_chain and call.method in METRIC_MUTATORS:
        return "metric-label"
    if resolved is None:
        return None
    if resolved in SINK_FUNCTIONS:
        return SINK_FUNCTIONS[resolved]
    parts = resolved.rsplit(".", 2)
    if len(parts) == 3:
        kind = SINK_METHODS.get((parts[1], parts[2]))
        if kind is not None:
            return kind
    return None


class _Interpreter:
    """Abstract interpretation of one function body."""

    def __init__(
        self,
        program: ProgramGraph,
        summaries: Dict[str, _Summary],
        path: str,
        func: FunctionIR,
    ) -> None:
        self.program = program
        self.summaries = summaries
        self.path = path
        self.func = func
        self.env: Dict[str, FrozenSet[TaintVal]] = {}
        self.returns: Set[TaintVal] = set()
        self.flows: Set[_Flow] = set()

    def run(self) -> Tuple[FrozenSet[TaintVal], FrozenSet[_Flow]]:
        for param in self.func.params:
            self.env[param] = frozenset({
                TaintVal("value", ("param", param)),
                TaintVal("order", ("param", param)),
            })
        # Two passes: the second carries loop-back taint (an append inside
        # a loop feeding a call earlier in the linearized order).
        for _ in range(2):
            for op in self.func.ops:
                self._step(op)
        return frozenset(self.returns), frozenset(self.flows)

    # -- op interpretation ---------------------------------------------------

    def _step(self, op) -> None:
        if isinstance(op, OpAssign):
            vals = self._eval(op.value)
            for name in op.targets:
                if op.merge:
                    vals = vals | self.env.get(name, frozenset())
                self.env[name] = _cap(vals)
        elif isinstance(op, OpExpr):
            self._eval(op.value)
        elif isinstance(op, OpReturn):
            if op.value is not None:
                self.returns.update(self._eval(op.value))
        elif isinstance(op, OpKill):
            vals = self.env.get(op.name)
            if vals:
                self.env[op.name] = frozenset(
                    v for v in vals if v.kind not in op.kinds
                )

    # -- expression evaluation -----------------------------------------------

    def _eval(self, expr: ExprIR) -> FrozenSet[TaintVal]:
        vals: Set[TaintVal] = set()
        for atom in expr.atoms:
            tag = atom[0]
            if tag == "read":
                vals.update(self.env.get(atom[1], frozenset()))
            elif tag == "src":
                ref = atom[1]
                vals.add(TaintVal(
                    kind=ref.taint,
                    origin=("src", ref.kind, self.path, ref.line, ref.detail),
                    hops=(Hop(self.path, ref.line,
                              f"nondeterministic source: {ref.detail}"),),
                ))
            elif tag == "sub":
                vals.update(self._eval(atom[1]))
            elif tag == "call":
                vals.update(self._eval_call(atom[1]))
        if expr.kills:
            vals = {v for v in vals if v.kind not in expr.kills}
        return _cap(frozenset(vals))

    def _eval_call(self, call: CallIR) -> FrozenSet[TaintVal]:
        arg_vals = [self._eval(arg) for arg in call.args]
        kw_vals = [(name, self._eval(ir)) for name, ir in call.kwargs]
        resolved = self.program.resolve_callable(call.callee)
        short = _short_name(resolved or call.callee or call.method)

        # External sinks (json.dump) never resolve to an analyzed
        # function; the extractor's alias-resolved spelling still names
        # them, so classify against that when resolution fails.
        sink = classify_sink(resolved if resolved is not None else call.callee,
                             call)
        if sink is not None:
            sunk: List[FrozenSet[TaintVal]] = (
                [vals for _n, vals in kw_vals] if sink == "metric-label"
                else arg_vals + [vals for _n, vals in kw_vals]
            )
            for vals in sunk:
                for val in vals:
                    self._emit(_Flow(
                        origin=val.origin,
                        kind=val.kind,
                        sink=sink,
                        callee=short,
                        path=self.path,
                        line=call.line,
                        col=call.col,
                        hops=val.hops + (Hop(
                            self.path, call.line,
                            f"sink: {sink} via {short}()",
                        ),),
                    ))

        summary = self.summaries.get(resolved) if resolved else None
        if summary is None:
            if call.callee in _PASSTHROUGH and not call.starred:
                passed: Set[TaintVal] = set()
                for vals in arg_vals:
                    passed.update(vals)
                return _cap(frozenset(passed))
            return frozenset()  # dynamic or external: conservatively clean

        param_map = self._map_params(resolved, call, arg_vals, kw_vals)
        result: Set[TaintVal] = set()
        for ret in summary.returns:
            if ret.origin[0] == "src":
                hops = ret.hops + (Hop(
                    self.path, call.line, f"tainted by {short}() return",
                ),)
                if len(hops) <= _MAX_HOPS:
                    result.add(TaintVal(ret.kind, ret.origin, hops))
            else:
                for val in param_map.get(ret.origin[1], ()):
                    if val.kind != ret.kind:
                        continue
                    hops = val.hops + (Hop(
                        self.path, call.line, f"passed into {short}()",
                    ),) + ret.hops
                    if len(hops) <= _MAX_HOPS:
                        result.add(TaintVal(val.kind, val.origin, hops))
        for flow in summary.sink_flows:
            for val in param_map.get(flow.origin[1], ()):
                if val.kind != flow.kind:
                    continue
                hops = val.hops + (Hop(
                    self.path, call.line, f"passed into {short}()",
                ),) + flow.hops
                if len(hops) <= _MAX_HOPS:
                    self._emit(_Flow(
                        origin=val.origin,
                        kind=val.kind,
                        sink=flow.sink,
                        callee=flow.callee,
                        path=flow.path,
                        line=flow.line,
                        col=flow.col,
                        hops=hops,
                    ))
        return _cap(frozenset(result))

    def _map_params(
        self,
        resolved: str,
        call: CallIR,
        arg_vals: List[FrozenSet[TaintVal]],
        kw_vals: List[Tuple[Optional[str], FrozenSet[TaintVal]]],
    ) -> Dict[str, FrozenSet[TaintVal]]:
        if call.starred:
            return {}
        entry = self.program.functions.get(resolved)
        if entry is None:
            return {}
        params = list(entry[1].params)
        # Bound calls (method on an instance, constructor) bind the first
        # parameter implicitly.
        if params and params[0] in ("self", "cls") and (
            call.method is not None or resolved.endswith(".__init__")
        ):
            params = params[1:]
        mapping: Dict[str, FrozenSet[TaintVal]] = {}
        for index, vals in enumerate(arg_vals):
            if index < len(params) and vals:
                mapping[params[index]] = vals
        for name, vals in kw_vals:
            if name is not None and vals:
                mapping[name] = vals
        return mapping

    def _emit(self, flow: _Flow) -> None:
        if len(flow.hops) <= _MAX_HOPS:
            self.flows.add(flow)


def _cap(vals: FrozenSet[TaintVal]) -> FrozenSet[TaintVal]:
    if len(vals) <= _MAX_VALS_PER_VAR:
        return vals
    ranked = sorted(vals, key=lambda v: (len(v.hops), v.origin, v.kind))
    return frozenset(ranked[:_MAX_VALS_PER_VAR])


def _short_name(dotted: Optional[str]) -> str:
    if not dotted:
        return "<dynamic>"
    return dotted.rsplit(".", 1)[-1]


def analyze_taint(
    program: ProgramGraph,
    exclude_sink_prefixes: Tuple[str, ...] = ("repro.obs.", "repro.obs"),
) -> TaintReport:
    """Run the whole-program taint analysis.

    ``exclude_sink_prefixes`` drops flows whose *sink* lives in a module
    with one of these prefixes — telemetry is allowed to serialize wall
    clock and RSS; that is its job. Sources in excluded modules still
    propagate: an obs helper returning wall clock that lands in a
    findings file is a real finding at the findings file's sink.
    """
    summaries: Dict[str, _Summary] = {
        qualname: _Summary() for qualname in program.functions
    }
    flows_by_fn: Dict[str, FrozenSet[_Flow]] = {}
    for _round in range(_MAX_ROUNDS):
        next_summaries: Dict[str, _Summary] = {}
        changed = False
        for qualname in sorted(program.functions):
            path, func = program.functions[qualname]
            interp = _Interpreter(program, summaries, path, func)
            returns, flows = interp.run()
            param_flows = frozenset(
                f for f in flows if f.origin[0] == "param"
            )
            flows_by_fn[qualname] = frozenset(
                f for f in flows if f.origin[0] == "src"
            )
            summary = _Summary(returns=returns, sink_flows=param_flows)
            next_summaries[qualname] = summary
            if summaries.get(qualname) != summary:
                changed = True
        summaries = next_summaries
        if not changed:
            break

    best: Dict[Tuple, TaintFlow] = {}
    for qualname in sorted(flows_by_fn):
        for flow in flows_by_fn[qualname]:
            sink_module = program.files[flow.path].module
            if any(
                sink_module == prefix.rstrip(".")
                or sink_module.startswith(prefix if prefix.endswith(".")
                                          else prefix + ".")
                for prefix in exclude_sink_prefixes
            ):
                continue
            _tag, source_kind, source_path, source_line, detail = flow.origin
            record = TaintFlow(
                path=flow.path,
                line=flow.line,
                col=flow.col,
                kind=flow.kind,
                source_kind=source_kind,
                source_path=source_path,
                source_line=source_line,
                source_detail=detail,
                sink=flow.sink,
                callee=flow.callee,
                hops=flow.hops,
            )
            key = record.sort_key()
            kept = best.get(key)
            if kept is None or len(record.hops) < len(kept.hops):
                best[key] = record
    flows = tuple(sorted(best.values(), key=TaintFlow.sort_key))
    return TaintReport(flows=flows)
