"""Whole-program linking: import graph, symbol table, call graph.

:class:`ProgramGraph` joins per-file :class:`~repro.lint.flow.facts.ModuleFacts`
into one queryable view. Resolution is *approximate by design*: names are
chased through import aliases and package re-exports, attribute calls are
typed only when the receiver's constructor or annotation named a class,
and everything else stays a **dynamic** edge — recorded so consumers can
see where static reasoning stopped, never silently guessed at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.flow.facts import (
    CallIR,
    DefInfo,
    ExprIR,
    ForkSite,
    FunctionIR,
    ModuleFacts,
    OpAssign,
    OpExpr,
    OpReturn,
)

_RESOLVE_DEPTH = 12


@dataclass(frozen=True)
class CallEdge:
    """One edge of the approximate call graph.

    ``callee`` is the canonical qualname when resolution succeeded;
    ``dynamic`` edges keep whatever partial spelling the extractor had
    (``.method`` suffix for attribute calls on untyped receivers).
    """

    caller: str
    callee: str
    path: str
    line: int
    dynamic: bool = False


@dataclass
class ProgramGraph:
    """Linked whole-program view over extracted module facts."""

    files: Dict[str, ModuleFacts] = field(default_factory=dict)
    modules: Dict[str, ModuleFacts] = field(default_factory=dict)
    #: Canonical dotted symbol → (path, definition).
    symbols: Dict[str, Tuple[str, DefInfo]] = field(default_factory=dict)
    #: Canonical qualname → (path, function IR).
    functions: Dict[str, Tuple[str, FunctionIR]] = field(default_factory=dict)

    @classmethod
    def build(cls, files: Dict[str, ModuleFacts]) -> "ProgramGraph":
        graph = cls(files=dict(files))
        for path in sorted(files):
            facts = files[path]
            graph.modules[facts.module] = facts
        for path in sorted(files):
            facts = files[path]
            for definfo in facts.defs:
                graph.symbols[f"{facts.module}.{definfo.name}"] = (path, definfo)
            for func in facts.functions:
                graph.functions[func.qualname] = (path, func)
        return graph

    # -- resolution ----------------------------------------------------------

    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        """Canonical symbol/function name for *dotted*, chasing re-exports.

        ``repro.data.write_dataset`` (a package re-export) resolves to
        ``repro.data.dataset.write_dataset``; a class resolves to itself
        (callers map constructor calls to ``__init__`` separately).
        Returns ``None`` when the name leads outside the analyzed program
        or through an alias chain we cannot follow.
        """
        seen: Set[str] = set()
        current = dotted
        for _ in range(_RESOLVE_DEPTH):
            if current is None or current in seen:
                return None
            seen.add(current)
            if current in self.functions or current in self.symbols:
                return current
            chased = self._chase_alias(current)
            if chased == current:
                return None
            current = chased
        return None

    def _chase_alias(self, dotted: str) -> Optional[str]:
        module, rest = self._split_module(dotted)
        if module is None or not rest:
            return None
        facts = self.modules[module]
        imports = facts.import_map()
        head = rest[0]
        if head in imports:
            return ".".join([imports[head]] + rest[1:])
        # ``repro.x.Cls.method`` where ``repro.x.Cls`` is a known class.
        if len(rest) >= 2:
            prefix = f"{module}.{'.'.join(rest[:-1])}"
            if prefix in self.symbols:
                return None
        return None

    def _split_module(self, dotted: str) -> Tuple[Optional[str], List[str]]:
        """Longest known module prefix of *dotted* plus the remainder."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return prefix, parts[cut:]
        return None, parts

    def resolve_callable(self, dotted: Optional[str]) -> Optional[str]:
        """Like :meth:`resolve`, but maps class names to ``__init__``."""
        canonical = self.resolve(dotted)
        if canonical is None:
            return None
        if canonical in self.functions:
            return canonical
        entry = self.symbols.get(canonical)
        if entry is not None and entry[1].kind == "class":
            init = f"{canonical}.__init__"
            if init in self.functions:
                return init
        return canonical


def build_import_graph(
    program: ProgramGraph,
) -> Dict[str, Tuple[str, ...]]:
    """Module → imported modules, alias-resolved.

    Internal edges point at analyzed modules; imports of external code
    keep their top-level package name (``json``, ``os``) so the dump
    still shows the stdlib surface each module touches.
    """
    edges: Dict[str, Tuple[str, ...]] = {}
    for module in sorted(program.modules):
        facts = program.modules[module]
        targets: Set[str] = set()
        for _local, dotted in facts.imports:
            resolved = _owning_module(program, dotted)
            targets.add(resolved if resolved is not None else dotted.split(".")[0])
        for star in facts.star_imports:
            resolved = _owning_module(program, star)
            targets.add(resolved if resolved is not None else star.split(".")[0])
        targets.discard(module)
        edges[module] = tuple(sorted(targets))
    return edges


def _owning_module(program: ProgramGraph, dotted: str) -> Optional[str]:
    parts = dotted.split(".")
    for cut in range(len(parts), 0, -1):
        prefix = ".".join(parts[:cut])
        if prefix in program.modules:
            return prefix
    return None


def build_call_graph(program: ProgramGraph) -> Tuple[CallEdge, ...]:
    """Every call site in every function, resolved or marked dynamic."""
    edges: List[CallEdge] = []
    for qualname in sorted(program.functions):
        path, func = program.functions[qualname]
        for call in iter_calls(func):
            resolved = program.resolve_callable(call.callee)
            if resolved is not None:
                edges.append(CallEdge(qualname, resolved, path, call.line))
            else:
                spelling = call.callee or (
                    f".{call.method}" if call.method else "<dynamic>"
                )
                edges.append(CallEdge(qualname, spelling, path, call.line,
                                      dynamic=True))
    edges.sort(key=lambda e: (e.path, e.line, e.caller, e.callee))
    return tuple(edges)


def iter_calls(func: FunctionIR):
    """All :class:`CallIR` sites in a function IR, nested ones included."""
    for op in func.ops:
        exprs: List[ExprIR] = []
        if isinstance(op, (OpAssign, OpExpr)):
            exprs.append(op.value)
        elif isinstance(op, OpReturn) and op.value is not None:
            exprs.append(op.value)
        while exprs:
            expr = exprs.pop()
            for atom in expr.atoms:
                tag = atom[0]
                if tag == "call":
                    call: CallIR = atom[1]
                    yield call
                    exprs.extend(call.args)
                    exprs.extend(ir for _name, ir in call.kwargs)
                elif tag == "sub":
                    exprs.append(atom[1])


@dataclass(frozen=True)
class RngLabelSite:
    """One RNG fork site, program-wide view."""

    path: str
    module: str
    site: ForkSite

    @property
    def labels(self) -> Tuple[str, ...]:
        return self.site.labels


def collect_rng_labels(
    program: ProgramGraph,
    module_prefix: str = "repro.",
) -> Tuple[RngLabelSite, ...]:
    """Every labelled RNG fork site in modules under *module_prefix*.

    Sites inside :mod:`repro.util.rng` itself (the fork primitives
    relaying ``*labels``) are variadic and carry no literal namespace;
    they stay in the collection flagged ``variadic`` so the registry
    check can skip them explicitly.
    """
    sites: List[RngLabelSite] = []
    for path in sorted(program.files):
        facts = program.files[path]
        if not (facts.module + ".").startswith(module_prefix):
            continue
        for site in facts.fork_sites:
            sites.append(RngLabelSite(path=path, module=facts.module, site=site))
    sites.sort(key=lambda s: (s.path, s.site.line, s.site.col))
    return tuple(sites)


def graph_to_json(program: ProgramGraph) -> Dict:
    """JSON-serializable dump of the whole-program view.

    This is what ``repro lint --dump-graph graph.json`` writes and what
    CI uploads as a build artifact: import edges, call edges (dynamic
    ones marked), exported symbols, and the RNG label namespace.
    """
    imports = build_import_graph(program)
    calls = build_call_graph(program)
    return {
        "modules": {
            module: {
                "path": program.modules[module].path,
                "imports": list(imports.get(module, ())),
            }
            for module in sorted(program.modules)
        },
        "symbols": {
            name: {"path": path, "line": info.line, "kind": info.kind,
                   "public": info.public}
            for name, (path, info) in sorted(program.symbols.items())
        },
        "calls": [
            {
                "caller": edge.caller,
                "callee": edge.callee,
                "path": edge.path,
                "line": edge.line,
                "dynamic": edge.dynamic,
            }
            for edge in calls
        ],
        "rng_labels": [
            {
                "path": site.path,
                "line": site.site.line,
                "kind": site.site.kind,
                "labels": list(site.site.labels),
                "variadic": site.site.variadic,
            }
            for site in collect_rng_labels(program)
        ],
        "counts": {
            "modules": len(program.modules),
            "symbols": len(program.symbols),
            "functions": len(program.functions),
            "call_edges": len(calls),
            "dynamic_call_edges": sum(1 for e in calls if e.dynamic),
        },
    }
