"""Public Suffix List (PSL) implementation.

The paper reports results in terms of *effective second-level domains*
(e2LDs): the registerable label directly beneath the effective TLD
(Section 2.1, e.g. ``foo.co.uk``). This package implements the PSL matching
algorithm — normal rules, ``*.`` wildcard rules, and ``!`` exception rules —
over an embedded suffix dataset, and exposes the domain-name helpers used by
every detector.
"""

from repro.psl.rules import PslRule, PublicSuffixList, parse_rules
from repro.psl.data import DEFAULT_SUFFIXES, default_psl
from repro.psl.registered import (
    DomainName,
    e2ld,
    etld,
    is_subdomain_of,
    registrable_parts,
)

__all__ = [
    "PslRule",
    "PublicSuffixList",
    "parse_rules",
    "DEFAULT_SUFFIXES",
    "default_psl",
    "DomainName",
    "e2ld",
    "etld",
    "is_subdomain_of",
    "registrable_parts",
]
