"""Public Suffix List rule model and matching algorithm.

Implements the algorithm specified at publicsuffix.org/list:

1. Split the domain and each rule into labels, compare right-to-left.
2. A rule matches when all of its labels match (``*`` matches exactly one
   label).
3. Exception rules (``!`` prefix) take priority over any other match.
4. Among non-exception matches the one with the most labels (longest) wins.
5. If no rule matches, the prevailing rule is ``*`` (the rightmost label is
   the public suffix).
6. The public suffix is the matched rule's labels (for an exception rule,
   the rule's labels minus the leftmost one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class PslRule:
    """One parsed PSL rule."""

    labels: Tuple[str, ...]  # right-to-left order, e.g. ("uk", "co")
    is_exception: bool = False
    is_wildcard: bool = False

    @classmethod
    def parse(cls, line: str) -> "PslRule":
        text = line.strip().lower()
        if not text or text.startswith("//"):
            raise ValueError(f"not a rule line: {line!r}")
        is_exception = text.startswith("!")
        if is_exception:
            text = text[1:]
        labels = tuple(reversed(text.split(".")))
        if any(not label for label in labels):
            raise ValueError(f"empty label in rule: {line!r}")
        return cls(labels=labels, is_exception=is_exception, is_wildcard="*" in labels)

    def matches(self, domain_labels_rtl: Sequence[str]) -> bool:
        """Whether this rule matches a domain given right-to-left labels."""
        if len(self.labels) > len(domain_labels_rtl):
            return False
        for rule_label, domain_label in zip(self.labels, domain_labels_rtl):
            if rule_label != "*" and rule_label != domain_label:
                return False
        return True

    def suffix_length(self) -> int:
        """Number of labels in the public suffix this rule defines."""
        if self.is_exception:
            return len(self.labels) - 1
        return len(self.labels)

    def as_text(self) -> str:
        body = ".".join(reversed(self.labels))
        return ("!" if self.is_exception else "") + body


def parse_rules(lines: Iterable[str]) -> List[PslRule]:
    """Parse rule lines, skipping comments and blanks (PSL file format)."""
    rules: List[PslRule] = []
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        rules.append(PslRule.parse(stripped))
    return rules


class PublicSuffixList:
    """A queryable Public Suffix List.

    Rules are indexed by their rightmost (TLD) label so lookups touch only
    the handful of rules that could possibly match.
    """

    def __init__(self, rules: Iterable[PslRule]) -> None:
        self._by_tld: Dict[str, List[PslRule]] = {}
        for rule in rules:
            self._by_tld.setdefault(rule.labels[0], []).append(rule)

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "PublicSuffixList":
        return cls(parse_rules(lines))

    def rules_for_tld(self, tld: str) -> List[PslRule]:
        return list(self._by_tld.get(tld.lower(), []))

    def public_suffix(self, domain: str) -> str:
        """Return the public suffix (eTLD) of *domain*.

        A bare TLD (or an unknown name) falls back to the implicit ``*``
        rule: the rightmost label is the suffix.
        """
        labels_rtl = _labels_rtl(domain)
        rule = self._winning_rule(labels_rtl)
        if rule is None:
            suffix_len = 1
        else:
            suffix_len = rule.suffix_length()
        suffix_len = min(suffix_len, len(labels_rtl))
        return ".".join(reversed(labels_rtl[:suffix_len]))

    def registrable_domain(self, domain: str) -> Optional[str]:
        """Return the e2LD of *domain*, or ``None`` if the name is itself a
        public suffix (nothing is registered beneath it)."""
        labels_rtl = _labels_rtl(domain)
        rule = self._winning_rule(labels_rtl)
        suffix_len = rule.suffix_length() if rule else 1
        if len(labels_rtl) <= suffix_len:
            return None
        return ".".join(reversed(labels_rtl[: suffix_len + 1]))

    def is_public_suffix(self, domain: str) -> bool:
        return self.public_suffix(domain) == domain.strip(".").lower()

    def _winning_rule(self, labels_rtl: Sequence[str]) -> Optional[PslRule]:
        if not labels_rtl:
            return None
        candidates = self._by_tld.get(labels_rtl[0], [])
        exception: Optional[PslRule] = None
        best: Optional[PslRule] = None
        for rule in candidates:
            if not rule.matches(labels_rtl):
                continue
            if rule.is_exception:
                if exception is None or len(rule.labels) > len(exception.labels):
                    exception = rule
            elif best is None or len(rule.labels) > len(best.labels):
                best = rule
        if exception is not None:
            return exception
        return best


def _labels_rtl(domain: str) -> List[str]:
    normalized = domain.strip().strip(".").lower()
    if not normalized:
        return []
    return list(reversed(normalized.split(".")))
