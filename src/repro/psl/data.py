"""Embedded public-suffix dataset.

A curated subset of the Mozilla Public Suffix List sufficient for the
simulated ecosystem and for exercising every rule type (plain, multi-label,
wildcard, exception). The full PSL is ~10K rules; detectors only ever meet
the TLDs the simulator registers under, plus the special Cloudflare and
infrastructure names that appear in certificates.
"""

from __future__ import annotations

from functools import lru_cache

from repro.psl.rules import PublicSuffixList

# Mirrors the PSL file format: comments with //, exception rules with !,
# wildcard rules with *.
DEFAULT_SUFFIXES = """\
// Generic TLDs used by the simulated registries
com
net
org
io
info
biz
xyz
online
site
app
dev
cloud
// Country-code TLDs
us
de
fr
nl
ru
cn
br
in
au
// UK-style second-level public suffixes
uk
co.uk
org.uk
ac.uk
gov.uk
// Japan: mixed plain + prefecture-style
jp
co.jp
ne.jp
or.jp
// Brazil second-level
com.br
net.br
org.br
// Australia second-level
com.au
net.au
org.au
// Wildcard rule: every label under ck is a public suffix...
*.ck
// ...except this registered exception
!www.ck
// Kenya wildcard pattern (historical PSL entry style)
*.kh
// Infrastructure / platform suffixes (private section analogues)
cloudflaressl.com
herokuapp.com
github.io
amazonaws.com
"""


@lru_cache(maxsize=1)
def default_psl() -> PublicSuffixList:
    """The process-wide default :class:`PublicSuffixList` instance."""
    return PublicSuffixList.from_lines(DEFAULT_SUFFIXES.splitlines())
