"""Domain-name helpers built on the Public Suffix List.

These are the primitives the measurement pipelines use to group findings:
the paper reports counts of stale certificates, stale FQDNs, and stale e2LDs
(Table 4), where the e2LD grouping is done exactly as here — the registrable
label plus the effective TLD.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.psl.data import default_psl
from repro.psl.rules import PublicSuffixList

_LABEL_RE = re.compile(r"^(?!-)[a-z0-9_-]{1,63}(?<!-)$")


@dataclass(frozen=True)
class DomainName:
    """A normalized, validated DNS name (no trailing dot, lowercase).

    Wildcard leftmost labels (``*.example.com``) are allowed because they
    appear in certificate SAN entries.
    """

    name: str

    def __post_init__(self) -> None:
        normalized = self.name.strip().strip(".").lower()
        if normalized != self.name:
            object.__setattr__(self, "name", normalized)
        if not self.name:
            raise ValueError("empty domain name")
        if len(self.name) > 253:
            raise ValueError(f"domain name too long: {self.name[:64]}...")
        labels = self.name.split(".")
        for index, label in enumerate(labels):
            if label == "*" and index == 0:
                continue
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label {label!r} in {self.name!r}")

    def __str__(self) -> str:
        return self.name

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(self.name.split("."))

    @property
    def is_wildcard(self) -> bool:
        return self.name.startswith("*.")

    def without_wildcard(self) -> "DomainName":
        """The base name covered by a wildcard SAN (``*.a.com`` -> ``a.com``)."""
        if self.is_wildcard:
            return DomainName(self.name[2:])
        return self

    def parent(self) -> Optional["DomainName"]:
        labels = self.name.split(".")
        if len(labels) <= 1:
            return None
        return DomainName(".".join(labels[1:]))

    def e2ld(self, psl: Optional[PublicSuffixList] = None) -> Optional[str]:
        """The effective second-level domain, or None for bare suffixes."""
        return (psl or default_psl()).registrable_domain(self.without_wildcard().name)

    def etld(self, psl: Optional[PublicSuffixList] = None) -> str:
        return (psl or default_psl()).public_suffix(self.without_wildcard().name)


def e2ld(domain: str, psl: Optional[PublicSuffixList] = None) -> Optional[str]:
    """Effective 2LD of a raw domain string (``foo.bar.co.uk`` -> ``bar.co.uk``)."""
    return DomainName(domain).e2ld(psl)


def etld(domain: str, psl: Optional[PublicSuffixList] = None) -> str:
    """Effective TLD of a raw domain string (``foo.bar.co.uk`` -> ``co.uk``)."""
    return DomainName(domain).etld(psl)


def registrable_parts(
    domain: str, psl: Optional[PublicSuffixList] = None
) -> Tuple[Optional[str], str]:
    """Return ``(e2ld, etld)`` in one normalization pass."""
    dn = DomainName(domain)
    return dn.e2ld(psl), dn.etld(psl)


def is_subdomain_of(candidate: str, ancestor: str) -> bool:
    """Whether *candidate* equals or is beneath *ancestor* (label-aligned)."""
    c = DomainName(candidate).name
    a = DomainName(ancestor).name
    return c == a or c.endswith("." + a)


def matches_wildcard(pattern: str, hostname: str) -> bool:
    """RFC 6125-style wildcard match: ``*`` covers exactly one leftmost label."""
    p = DomainName(pattern)
    h = DomainName(hostname)
    if not p.is_wildcard:
        return p.name == h.name
    host_labels = h.labels
    pattern_labels = p.labels
    if len(host_labels) != len(pattern_labels):
        return False
    return host_labels[1:] == pattern_labels[1:]
