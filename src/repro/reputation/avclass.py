"""AVClass2-style malware family extraction (paper [66]).

Given the raw vendor labels of a file report, extract the most plausible
family tag by tokenizing each label, discarding generic tokens, normalizing
aliases via the Malpedia-style table, and majority-voting across vendors —
the same coarse procedure AVClass2 applies at scale.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Dict, Iterable, List, Optional

from repro.reputation.malpedia import resolve_alias

#: Tokens that carry no family information.
_GENERIC_TOKENS = frozenset(
    {
        "trojan", "mal", "malware", "w32", "w64", "win32", "win64", "gen",
        "generic", "variant", "heur", "agent", "application", "riskware",
        "suspicious", "behaveslike", "a", "b", "c", "grayware", "backdoor",
        "downloader", "virus", "spyware", "ransomware", "other", "unknown",
    }
)

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize_label(label: str) -> List[str]:
    """Lower-case alphanumeric tokens of one AV label."""
    return _TOKEN_RE.findall(label.lower())


def extract_family(vendor_labels: Iterable[str]) -> Optional[str]:
    """Majority-vote family across vendor labels; None if nothing survives
    generic-token filtering."""
    votes: Counter = Counter()
    for label in vendor_labels:
        seen_in_label = set()
        for token in tokenize_label(label):
            if token in _GENERIC_TOKENS or token.isdigit() or len(token) < 3:
                continue
            family = resolve_alias(token)
            if family not in seen_in_label:
                votes[family] += 1
                seen_in_label.add(family)
    if not votes:
        return None
    family, _count = votes.most_common(1)[0]
    return family


def tally_categories(  # repro-lint: disable=RL703  # paper API: Table 5 aggregation entry point
    file_categories: Iterable[str], url_categories: Iterable[str]
) -> Dict[str, Counter]:
    """Aggregate Table 5's two columns: malware categories (from files) and
    URL verdict categories."""
    return {
        "malware": Counter(file_categories),
        "url": Counter(url_categories),
    }
