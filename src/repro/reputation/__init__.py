"""Domain-reputation substrate (the paper's VirusTotal analysis, Table 5).

Simulates the external threat-intelligence stack the paper queried:

* :mod:`repro.reputation.virustotal` — a VT-like store of per-domain
  malicious URL verdicts and associated file submissions, with vendor
  counts and ``first_submission`` dates;
* :mod:`repro.reputation.avclass` — AVClass2-style malware-family tag
  extraction from vendor labels;
* :mod:`repro.reputation.malpedia` — family alias resolution.
"""

from repro.reputation.virustotal import (
    FileReport,
    UrlVerdict,
    VirusTotalStore,
    build_store_from_ownership,
)
from repro.reputation.avclass import extract_family, tally_categories
from repro.reputation.malpedia import resolve_alias

__all__ = [
    "FileReport",
    "UrlVerdict",
    "VirusTotalStore",
    "build_store_from_ownership",
    "extract_family",
    "tally_categories",
    "resolve_alias",
]
