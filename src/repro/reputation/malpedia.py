"""Malpedia-style malware family alias resolution (paper [64]).

The paper manually resolved AVClass2 family labels against Malpedia's alias
inventory. This table covers the families the synthetic VT store emits plus
the common alias spellings vendors use.
"""

from __future__ import annotations

from typing import Dict

#: alias -> canonical family name.
_ALIASES: Dict[str, str] = {
    # emotet and friends
    "emotet": "emotet",
    "geodo": "emotet",
    "heodo": "emotet",
    # njrat
    "njrat": "njrat",
    "bladabindi": "njrat",
    # darkcomet
    "darkcomet": "darkcomet",
    "fynloski": "darkcomet",
    # agenttesla
    "agenttesla": "agenttesla",
    "agensla": "agenttesla",
    "negasteal": "agenttesla",
    # formbook
    "formbook": "formbook",
    "xloader": "formbook",
    # gandcrab
    "gandcrab": "gandcrab",
    "grandcrab": "gandcrab",
    # stop/djvu
    "stop": "stop",
    "djvu": "stop",
    # upatre
    "upatre": "upatre",
    "waski": "upatre",
    # virut / sality
    "virut": "virut",
    "sality": "sality",
    "kuku": "sality",
    # PUP families
    "installcore": "installcore",
    "opencandy": "opencandy",
    # miners
    "miner": "coinminer",
    "coinminer": "coinminer",
    "xmrig": "coinminer",
}


def resolve_alias(token: str) -> str:
    """Canonical family for a label token (identity for unknown tokens)."""
    return _ALIASES.get(token.lower(), token.lower())


def known_families() -> Dict[str, str]:  # repro-lint: disable=RL703  # inspection API over the private alias table
    """A copy of the alias table (for inspection/tests)."""
    return dict(_ALIASES)
