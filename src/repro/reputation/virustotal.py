"""VirusTotal-like reputation store.

The paper (Section 5.2, Table 5) queries VT for 100K randomly sampled
stale-certificate domains, keeping detections flagged by at least five
vendors, and correlates the period of malicious activity with stale
certificate control via the minimum ``first_submission`` date. This module
reproduces the store and its query semantics; data is synthesized from the
simulator's ground-truth malicious-ownership spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.util.dates import Day
from repro.util.rng import RngStream

#: Minimum flagging vendors for a detection to count (paper's threshold).
VENDOR_THRESHOLD = 5

#: URL verdict categories vendors emit (Table 5's right column).
URL_CATEGORIES = ("phishing", "malicious", "malware")

#: Malware categories seen in file detections (Table 5's left column),
#: with rough relative prevalence from the paper's counts.
MALWARE_CATEGORY_WEIGHTS = (
    ("grayware", 82),
    ("backdoor", 74),
    ("unknown", 53),
    ("downloader", 51),
    ("virus", 29),
    ("spyware", 27),
    ("ransomware", 18),
    ("other", 18),
)

_VENDORS = tuple(f"vendor-{i:02d}" for i in range(1, 31))


@dataclass(frozen=True)
class UrlVerdict:
    """One vendor's verdict on a URL under a domain."""

    domain: str
    url: str
    vendor: str
    category: str  # phishing / malicious / malware
    flagged_on: Day


@dataclass(frozen=True)
class FileReport:
    """A malicious file associated with a domain (download or C2)."""

    domain: str
    sha256: str
    vendor_labels: Tuple[str, ...]  # raw AV labels, AVClass2 input
    vendor_count: int
    first_submission: Day
    category: str


class VirusTotalStore:
    """Queryable store of URL verdicts and file reports."""

    def __init__(self) -> None:
        self._url_verdicts: Dict[str, List[UrlVerdict]] = {}
        self._file_reports: Dict[str, List[FileReport]] = {}

    def add_url_verdict(self, verdict: UrlVerdict) -> None:
        self._url_verdicts.setdefault(verdict.domain, []).append(verdict)

    def add_file_report(self, report: FileReport) -> None:
        self._file_reports.setdefault(report.domain, []).append(report)

    def url_verdicts(self, domain: str) -> List[UrlVerdict]:
        return list(self._url_verdicts.get(domain, []))

    def file_reports(self, domain: str) -> List[FileReport]:
        return list(self._file_reports.get(domain, []))

    def flagged_url_categories(self, domain: str) -> Dict[str, int]:
        """Category -> distinct flagging vendors, keeping only categories
        that clear the ≥5-vendor threshold."""
        vendors_by_category: Dict[str, set] = {}
        for verdict in self._url_verdicts.get(domain, []):
            vendors_by_category.setdefault(verdict.category, set()).add(verdict.vendor)
        return {
            category: len(vendors)
            for category, vendors in vendors_by_category.items()
            if len(vendors) >= VENDOR_THRESHOLD
        }

    def detected_files(self, domain: str) -> List[FileReport]:
        """File reports flagged by at least five vendors."""
        return [
            report
            for report in self._file_reports.get(domain, [])
            if report.vendor_count >= VENDOR_THRESHOLD
        ]

    def first_malicious_day(self, domain: str) -> Optional[Day]:
        """Earliest evidence of malicious activity (the paper's temporal
        join key): min first_submission across detected files, or the first
        day a URL category cleared the vendor threshold."""
        candidates: List[Day] = [r.first_submission for r in self.detected_files(domain)]
        vendors_seen: Dict[str, set] = {}
        flagged_days: List[Tuple[Day, str, str]] = sorted(
            (v.flagged_on, v.vendor, v.category) for v in self._url_verdicts.get(domain, [])
        )
        for flagged_on, vendor, category in flagged_days:
            seen = vendors_seen.setdefault(category, set())
            seen.add(vendor)
            if len(seen) >= VENDOR_THRESHOLD:
                candidates.append(flagged_on)
                break
        return min(candidates) if candidates else None

    def is_detected(self, domain: str) -> bool:
        return bool(self.flagged_url_categories(domain)) or bool(self.detected_files(domain))

    def domains(self) -> List[str]:
        return sorted(set(self._url_verdicts) | set(self._file_reports))


def build_store_from_ownership(
    malicious_ownership: Sequence[Tuple[str, str, Day, Day]],
    rng: RngStream,
    url_activity_probability: float = 0.70,
    file_activity_probability: float = 0.35,
) -> VirusTotalStore:
    """Synthesize VT data from the simulator's malicious-ownership spans.

    Each malicious owner runs URL campaigns and/or distributes files during
    their ownership window; vendor counts straddle the ≥5 threshold so the
    filter path is exercised (some campaigns go under-detected).
    """
    store = VirusTotalStore()
    for domain, _owner, start, end in malicious_ownership:
        window = max(1, end - start)
        if rng.bernoulli(url_activity_probability):
            category = rng.weighted_choice(URL_CATEGORIES, (367, 190, 128))
            vendor_count = rng.randint(2, 14)
            flagged_on = start + rng.randint(0, min(window, 120))
            vendors = rng.sample(_VENDORS, vendor_count)
            for vendor in vendors:
                store.add_url_verdict(
                    UrlVerdict(
                        domain=domain,
                        url=f"http://{domain}/{'landing' if category == 'phishing' else 'payload'}",
                        vendor=vendor,
                        category=category,
                        flagged_on=flagged_on,
                    )
                )
        if rng.bernoulli(file_activity_probability):
            category = rng.weighted_choice(
                [c for c, _ in MALWARE_CATEGORY_WEIGHTS],
                [w for _, w in MALWARE_CATEGORY_WEIGHTS],
            )
            vendor_count = rng.randint(3, 18)
            first_submission = start + rng.randint(0, min(window, 180))
            labels = _labels_for(category, rng, vendor_count)
            store.add_file_report(
                FileReport(
                    domain=domain,
                    sha256=f"{abs(rng.randint(0, 2 ** 62)):064x}"[:64],
                    vendor_labels=labels,
                    vendor_count=vendor_count,
                    first_submission=first_submission,
                    category=category,
                )
            )
    return store


_FAMILY_BY_CATEGORY = {
    "grayware": ("installcore", "opencandy"),
    "backdoor": ("njrat", "darkcomet"),
    "unknown": ("generic",),
    "downloader": ("emotet", "upatre"),
    "virus": ("virut", "sality"),
    "spyware": ("agenttesla", "formbook"),
    "ransomware": ("gandcrab", "stop"),
    "other": ("miner",),
}


def _labels_for(category: str, rng: RngStream, vendor_count: int) -> Tuple[str, ...]:
    family = rng.choice(_FAMILY_BY_CATEGORY.get(category, ("generic",)))
    styles = (
        f"Trojan.{family.capitalize()}.Gen",
        f"W32/{family}.A",
        f"{category}:{family}/variant",
        f"Mal/{family.capitalize()}-B",
    )
    return tuple(rng.choice(styles) for _ in range(min(vendor_count, 6)))
