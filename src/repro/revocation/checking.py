"""Client-side revocation checking and the interception threat model.

Implements the landscape paper Section 2.4 lays out:

* Chrome / Edge / non-browser agents: no subscriber revocation checking.
* Firefox / Safari: checking with *soft-fail* — an on-path attacker who
  drops revocation traffic defeats it.
* Hard-fail (and Firefox's Must-Staple hard-fail): the only configurations
  that stop a third-party holding a revoked-but-unexpired key.

`RevocationChecker.connection_outcome` answers the question the paper's
threat model turns on: does a client accept a *revoked* stale certificate
presented by an interceptor?
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.pki.certificate import Certificate
from repro.revocation.ocsp import OcspResponder, OcspStatus, StapleCache
from repro.util.dates import Day


class RevocationPolicy(enum.Enum):
    """Client revocation-checking stances (paper §2.4)."""

    NONE = "none"  # Chrome, Edge, curl, most TLS libraries
    SOFT_FAIL = "soft_fail"  # Firefox/Safari default
    HARD_FAIL = "hard_fail"  # rarely deployed


class CheckDecision(enum.Enum):
    ACCEPT = "accept"
    REJECT_REVOKED = "reject_revoked"
    REJECT_UNAVAILABLE = "reject_unavailable"  # hard-fail, status unreachable


@dataclass(frozen=True)
class ConnectionContext:
    """Network conditions for one TLS connection."""

    interceptor_drops_revocation_traffic: bool = False
    staple_presented: bool = True


class RevocationChecker:
    """Evaluates whether a client accepts a certificate on a given day."""

    def __init__(
        self,
        policy: RevocationPolicy,
        responder: Optional[OcspResponder] = None,
        staples: Optional[StapleCache] = None,
        honor_must_staple: bool = False,
    ) -> None:
        if policy is not RevocationPolicy.NONE and responder is None:
            raise ValueError("checking policies require an OCSP responder")
        self.policy = policy
        self._responder = responder
        self._staples = staples
        self.honor_must_staple = honor_must_staple

    def connection_outcome(
        self,
        certificate: Certificate,
        query_day: Day,
        context: ConnectionContext = ConnectionContext(),
        must_staple: bool = False,
    ) -> CheckDecision:
        """Decide accept/reject for a presented certificate.

        Assumes chain validation and the validity window already passed —
        this isolates the revocation question.
        """
        if self.policy is RevocationPolicy.NONE:
            return CheckDecision.ACCEPT

        if must_staple and self.honor_must_staple:
            staple = None
            if context.staple_presented and self._staples is not None:
                staple = self._staples.staple_for(certificate, query_day)
            if staple is None:
                # Firefox hard-fails on a missing staple for Must-Staple
                # certificates (footnote 2 of the paper).
                return CheckDecision.REJECT_UNAVAILABLE
            if staple.status is OcspStatus.REVOKED:
                return CheckDecision.REJECT_REVOKED
            return CheckDecision.ACCEPT

        if context.interceptor_drops_revocation_traffic:
            # Live status unavailable: soft-fail accepts, hard-fail rejects.
            if self.policy is RevocationPolicy.SOFT_FAIL:
                return CheckDecision.ACCEPT
            return CheckDecision.REJECT_UNAVAILABLE

        response = self._responder.query(certificate, query_day)
        if response.status is OcspStatus.REVOKED:
            return CheckDecision.REJECT_REVOKED
        if response.status is OcspStatus.UNKNOWN and self.policy is RevocationPolicy.HARD_FAIL:
            return CheckDecision.REJECT_UNAVAILABLE
        return CheckDecision.ACCEPT


def interception_succeeds(
    checker: RevocationChecker,
    stale_certificate: Certificate,
    query_day: Day,
    revoked: bool,
    must_staple: bool = False,
) -> bool:
    """Whether a third-party holding *stale_certificate*'s key can intercept.

    The attacker is on-path and drops revocation traffic (the paper's threat
    model). Returns True when the client would accept the connection. The
    ``revoked`` flag is informational only — with dropped revocation traffic
    the client never learns it, which is precisely the paper's point that
    revocation "does not protect against active TLS interception".
    """
    if not stale_certificate.is_valid_on(query_day):
        return False  # expiration is the one backstop that always works
    context = ConnectionContext(
        interceptor_drops_revocation_traffic=True,
        staple_presented=False,
    )
    decision = checker.connection_outcome(
        stale_certificate, query_day, context, must_staple=must_staple
    )
    return decision is CheckDecision.ACCEPT
