"""OCSP responder, stapling, and Must-Staple.

Models the second revocation channel from paper Section 2.4: per-certificate
status queries, server-side stapling, and the X.509 TLS-feature (Must-Staple)
extension that — uniquely, in Firefox — hard-fails when the staple is absent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.pki.certificate import Certificate
from repro.revocation.publisher import CaCrlPublisher
from repro.revocation.reasons import RevocationReason
from repro.util.dates import Day


class OcspStatus(enum.Enum):
    GOOD = "good"
    REVOKED = "revoked"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class OcspResponse:
    """A signed OCSP response for one certificate."""

    serial: int
    status: OcspStatus
    produced_on: Day
    valid_until: Day
    revocation_day: Optional[Day] = None
    reason: Optional[RevocationReason] = None

    def is_fresh_on(self, query_day: Day) -> bool:
        return self.produced_on <= query_day <= self.valid_until


class OcspResponder:
    """CA-operated OCSP endpoint backed by the CA's revocation records."""

    def __init__(self, publisher: CaCrlPublisher, response_validity_days: int = 7) -> None:
        self._publisher = publisher
        self.response_validity_days = response_validity_days
        self.url = publisher.ca.ocsp_url

    def query(self, certificate: Certificate, query_day: Day) -> OcspResponse:
        """Answer a status request."""
        if certificate.authority_key_id != self._publisher.ca.authority_key_id:
            return OcspResponse(
                serial=certificate.serial,
                status=OcspStatus.UNKNOWN,
                produced_on=query_day,
                valid_until=query_day + self.response_validity_days,
            )
        record = self._publisher.is_revoked(certificate.serial)
        if record is not None and record.revocation_day <= query_day:
            return OcspResponse(
                serial=certificate.serial,
                status=OcspStatus.REVOKED,
                produced_on=query_day,
                valid_until=query_day + self.response_validity_days,
                revocation_day=record.revocation_day,
                reason=record.reason,
            )
        return OcspResponse(
            serial=certificate.serial,
            status=OcspStatus.GOOD,
            produced_on=query_day,
            valid_until=query_day + self.response_validity_days,
        )


class StapleCache:
    """Server-side staple storage: the web server refreshes periodically and
    presents the cached response during TLS handshakes."""

    def __init__(self, responder: OcspResponder) -> None:
        self._responder = responder
        self._staples: Dict[int, OcspResponse] = {}

    def refresh(self, certificate: Certificate, refresh_day: Day) -> OcspResponse:
        response = self._responder.query(certificate, refresh_day)
        self._staples[certificate.serial] = response
        return response

    def staple_for(self, certificate: Certificate, query_day: Day) -> Optional[OcspResponse]:
        """The staple a server would present, or None if absent/expired."""
        staple = self._staples.get(certificate.serial)
        if staple is None or not staple.is_fresh_on(query_day):
            return None
        return staple
