"""RFC 5280 revocation reason codes.

The paper (Section 3) criticizes these codes as a taxonomy — outdated,
ambiguous, and poorly aligned with security severity — but they remain the
reporting channel through which key compromise becomes visible (Section 4.1).
``MOZILLA_PERMITTED_REASONS`` reflects Mozilla's policy of permitting only
six of the ten original codes.
"""

from __future__ import annotations

import enum
from typing import FrozenSet


class RevocationReason(enum.Enum):
    """CRLReason codes from RFC 5280 §5.3.1 (value = DER enumerated value)."""

    UNSPECIFIED = 0
    KEY_COMPROMISE = 1
    CA_COMPROMISE = 2
    AFFILIATION_CHANGED = 3
    SUPERSEDED = 4
    CESSATION_OF_OPERATION = 5
    CERTIFICATE_HOLD = 6
    # value 7 is unused in RFC 5280
    REMOVE_FROM_CRL = 8
    PRIVILEGE_WITHDRAWN = 9
    AA_COMPROMISE = 10

    @property
    def is_security_critical(self) -> bool:
        """Reasons implying third-party key access (the paper's focus)."""
        return self in (RevocationReason.KEY_COMPROMISE, RevocationReason.CA_COMPROMISE)


#: Mozilla permits only these six for subscriber certificates
#: (wiki.mozilla.org/CA/Revocation_Reasons, cited as [61] in the paper).
MOZILLA_PERMITTED_REASONS: FrozenSet[RevocationReason] = frozenset(
    {
        RevocationReason.UNSPECIFIED,
        RevocationReason.KEY_COMPROMISE,
        RevocationReason.AFFILIATION_CHANGED,
        RevocationReason.SUPERSEDED,
        RevocationReason.CESSATION_OF_OPERATION,
        RevocationReason.PRIVILEGE_WITHDRAWN,
    }
)


def normalize_reason(reason: RevocationReason) -> RevocationReason:
    """Map a reason onto Mozilla's permitted subset.

    Disallowed codes collapse to UNSPECIFIED, mirroring how CAs must re-map
    when their tooling emits a non-permitted value.
    """
    if reason in MOZILLA_PERMITTED_REASONS:
        return reason
    return RevocationReason.UNSPECIFIED
