"""Certificate revocation substrate.

Covers the machinery from paper Sections 2.4 and 4.1: RFC 5280 CRLs with
reason codes (and Mozilla's permitted subset), per-CA CRL publication with
CCADB-style mandatory disclosure, a daily fetcher that experiences
anti-scraping failures (Appendix B / Table 7), OCSP with Must-Staple, and
client-side revocation checking policies — including the soft-fail bypass
that makes revocation "ineffectual under this threat model".
"""

from repro.revocation.reasons import (
    MOZILLA_PERMITTED_REASONS,
    RevocationReason,
)
from repro.revocation.crl import CertificateRevocationList, CrlEntry
from repro.revocation.publisher import CaCrlPublisher, DisclosureList
from repro.revocation.fetcher import CrlFetcher, FetchOutcome, FetchStats
from repro.revocation.ocsp import OcspResponder, OcspResponse, OcspStatus
from repro.revocation.crlite import (
    BloomFilter,
    CascadeStats,
    FilterCascade,
    build_certificate_cascade,
)
from repro.revocation.checking import (
    CheckDecision,
    RevocationChecker,
    RevocationPolicy,
)

__all__ = [
    "MOZILLA_PERMITTED_REASONS",
    "RevocationReason",
    "CertificateRevocationList",
    "CrlEntry",
    "CaCrlPublisher",
    "DisclosureList",
    "CrlFetcher",
    "FetchOutcome",
    "FetchStats",
    "OcspResponder",
    "OcspResponse",
    "OcspStatus",
    "BloomFilter",
    "CascadeStats",
    "FilterCascade",
    "build_certificate_cascade",
    "CheckDecision",
    "RevocationChecker",
    "RevocationPolicy",
]
