"""Daily CRL collection with failure injection.

The paper downloaded all disclosed CRLs daily for six months and reached
~98.4% coverage (Appendix B, Table 7); the misses came from CRL servers
"with protections against automated scraping" and parse failures. The
fetcher models exactly that: per-CA failure profiles (hard-blocked servers,
flaky rate limiting) and a parse stage, producing the per-CA coverage
statistics Table 7 reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs import get_registry, names, span
from repro.revocation.crl import CertificateRevocationList
from repro.revocation.publisher import DisclosedCrl, DisclosureList
from repro.util.dates import Day
from repro.util.rng import RngStream


class FetchOutcome(enum.Enum):
    OK = "ok"
    BLOCKED = "blocked"  # anti-scraping protection (hard failure)
    RATE_LIMITED = "rate_limited"  # transient failure
    PARSE_ERROR = "parse_error"


@dataclass(frozen=True)
class FailureProfile:
    """Per-CA failure behaviour for CRL downloads."""

    blocked: bool = False  # e.g. Microsoft / Visa rows of Table 7
    rate_limit_probability: float = 0.0
    parse_error_probability: float = 0.0


@dataclass
class FetchStats:
    """Per-operator fetch accounting across all days."""

    attempted: int = 0
    succeeded: int = 0
    retries: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)

    def record(self, outcome: FetchOutcome, retries: int = 0) -> None:
        self.attempted += 1
        self.retries += retries
        if outcome is FetchOutcome.OK:
            self.succeeded += 1
        self.outcomes[outcome.value] = self.outcomes.get(outcome.value, 0) + 1

    @property
    def coverage(self) -> float:
        return self.succeeded / self.attempted if self.attempted else 0.0


@dataclass
class DailyFetchResult:
    """Everything collected on one fetch day."""

    day: Day
    crls: List[CertificateRevocationList]
    failures: List[Tuple[str, FetchOutcome]]  # (url, outcome)


class CrlFetcher:
    """Walks the disclosure list daily and accumulates CRLs + stats."""

    def __init__(
        self,
        disclosure: DisclosureList,
        rng: RngStream,
        profiles: Optional[Dict[str, FailureProfile]] = None,
        max_attempts: int = 1,
    ) -> None:
        """``max_attempts``: total tries per CRL per day. Only transient
        rate limiting is retried — blocked servers and parse failures are
        deterministic and fail identically on every attempt. Retry draws
        come from a per-(url, day) fork of *rng*, never the shared stream
        itself, so any ``max_attempts`` setting preserves the first-attempt
        draw sequence of seeded worlds: one operator retrying cannot
        perturb another operator's outcomes."""
        self._disclosure = disclosure
        self._rng = rng
        self._profiles = profiles or {}
        self.max_attempts = max(1, max_attempts)
        self.stats_by_operator: Dict[str, FetchStats] = {}
        self.collected: List[CertificateRevocationList] = []

    def profile_for(self, operator: str) -> FailureProfile:
        return self._profiles.get(operator, FailureProfile())

    def fetch_day(self, fetch_day: Day) -> DailyFetchResult:
        """Attempt every disclosed CRL (with retries for transient failures)."""
        crls: List[CertificateRevocationList] = []
        failures: List[Tuple[str, FetchOutcome]] = []
        registry = get_registry()
        attempts_c = registry.counter(
            names.CRL_FETCH_ATTEMPTS, names.CRL_FETCH_ATTEMPTS_HELP,
            labels=("operator",),
        )
        retries_c = registry.counter(
            names.CRL_FETCH_RETRIES, names.CRL_FETCH_RETRIES_HELP,
            labels=("operator",),
        )
        outcomes_c = registry.counter(
            names.CRL_FETCH_OUTCOMES, names.CRL_FETCH_OUTCOMES_HELP,
            labels=("operator", "outcome"),
        )
        with span("crl_fetch_day", registry=registry, day=fetch_day):
            for row in self._disclosure.rows():
                outcome, retries = self._attempt_with_retries(row, fetch_day)
                stats = self.stats_by_operator.setdefault(row.ca_operator, FetchStats())
                stats.record(outcome, retries=retries)
                attempts_c.inc(1 + retries, operator=row.ca_operator)
                if retries:
                    retries_c.inc(retries, operator=row.ca_operator)
                outcomes_c.inc(
                    1, operator=row.ca_operator, outcome=outcome.value
                )
                if outcome is FetchOutcome.OK:
                    crls.append(row.publisher.publish(fetch_day))
                else:
                    failures.append((row.url, outcome))
        self.collected.extend(crls)
        return DailyFetchResult(day=fetch_day, crls=crls, failures=failures)

    def fetch_range(self, first_day: Day, last_day: Day) -> int:
        """Fetch daily across an inclusive day range; returns total CRLs."""
        total = 0
        for current in range(first_day, last_day + 1):
            total += len(self.fetch_day(current).crls)
        return total

    def overall_coverage(self) -> float:
        attempted = sum(s.attempted for s in self.stats_by_operator.values())
        succeeded = sum(s.succeeded for s in self.stats_by_operator.values())
        return succeeded / attempted if attempted else 0.0

    def _attempt_with_retries(
        self, row: DisclosedCrl, fetch_day: Day
    ) -> Tuple[FetchOutcome, int]:
        outcome = self._attempt(row, self._rng)
        retries = 0
        retry_rng: Optional[RngStream] = None
        while (
            outcome is FetchOutcome.RATE_LIMITED
            and retries < self.max_attempts - 1
        ):
            if retry_rng is None:
                # Retries draw from a per-(url, day) fork of the shared
                # stream — the fork is derived from the seed and labels,
                # not the stream position, so retrying one URL never
                # advances the shared stream and cannot perturb any other
                # row's (or any later day's) outcomes.
                retry_rng = self._rng.split("retry", row.url, str(fetch_day))
            retries += 1
            outcome = self._attempt(row, retry_rng)
        return outcome, retries

    def _attempt(self, row: DisclosedCrl, rng: RngStream) -> FetchOutcome:
        profile = self.profile_for(row.ca_operator)
        if profile.blocked:
            return FetchOutcome.BLOCKED
        if profile.rate_limit_probability and rng.bernoulli(profile.rate_limit_probability):
            return FetchOutcome.RATE_LIMITED
        if profile.parse_error_probability and rng.bernoulli(profile.parse_error_probability):
            return FetchOutcome.PARSE_ERROR
        return FetchOutcome.OK
