"""CA-side CRL publication and CCADB-style mandatory disclosure.

Since October 2022 Mozilla requires every trusted CA to disclose full CRL
URLs in the CCADB (paper [72]); the paper's pipeline downloads all disclosed
CRLs daily. :class:`CaCrlPublisher` accumulates revocations for one CA and
publishes dated CRLs; :class:`DisclosureList` is the aggregated URL list the
fetcher walks each day.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.pki.ca import CertificateAuthority
from repro.pki.certificate import Certificate
from repro.revocation.crl import CertificateRevocationList, CrlEntry
from repro.revocation.reasons import RevocationReason, normalize_reason
from repro.util.dates import Day


@dataclass
class RevocationRecord:
    """A CA's internal record of one revocation."""

    certificate: Certificate
    revocation_day: Day
    reason: RevocationReason

    def crl_entry(self) -> CrlEntry:
        cached = self.__dict__.get("_entry")
        if cached is None:
            cached = CrlEntry(
                serial=self.certificate.serial,
                revocation_day=self.revocation_day,
                reason=self.reason,
            )
            self.__dict__["_entry"] = cached
        return cached


class CaCrlPublisher:
    """Manages revocations and CRL publication for one CA."""

    def __init__(
        self,
        ca: CertificateAuthority,
        crl_validity_days: int = 7,
        enforce_mozilla_reasons: bool = True,
        shed_expired: bool = False,
    ) -> None:
        """``shed_expired``: drop entries for already-expired certificates
        from published CRLs. RFC 5280 lets CAs remove such entries, but most
        retain them for months (which is why the paper's Nov-2022 collection
        still sees the Nov-2021 GoDaddy revocations); the default keeps them.
        """
        self.ca = ca
        self.crl_validity_days = crl_validity_days
        self.enforce_mozilla_reasons = enforce_mozilla_reasons
        self.shed_expired = shed_expired
        self._revocations: Dict[int, RevocationRecord] = {}
        self._crl_number = itertools.count(1)
        self._publish_cache: Optional[Tuple[Day, "CertificateRevocationList"]] = None

    def revoke(
        self,
        certificate: Certificate,
        revocation_day: Day,
        reason: RevocationReason = RevocationReason.UNSPECIFIED,
    ) -> RevocationRecord:
        """Record a revocation; idempotent per serial (first wins)."""
        if certificate.authority_key_id != self.ca.authority_key_id:
            raise ValueError(
                f"certificate serial {certificate.serial} was not issued by {self.ca.name}"
            )
        existing = self._revocations.get(certificate.serial)
        if existing is not None:
            return existing
        effective_reason = (
            normalize_reason(reason) if self.enforce_mozilla_reasons else reason
        )
        record = RevocationRecord(certificate, revocation_day, effective_reason)
        self._revocations[certificate.serial] = record
        return record

    def is_revoked(self, serial: int) -> Optional[RevocationRecord]:
        return self._revocations.get(serial)

    def publish(self, publication_day: Day) -> CertificateRevocationList:
        """Publish the CRL as of *publication_day* (see ``shed_expired``).

        Same-day publications return the same CRL object: every disclosed
        endpoint of one CA serves identical content on a given day.
        """
        if self._publish_cache is not None and self._publish_cache[0] == publication_day:
            return self._publish_cache[1]
        crl = CertificateRevocationList(
            issuer_name=self.ca.name,
            authority_key_id=self.ca.authority_key_id,
            this_update=publication_day,
            next_update=publication_day + self.crl_validity_days,
            crl_number=next(self._crl_number),
        )
        entries = crl.entries
        for record in self._revocations.values():
            if record.revocation_day > publication_day:
                continue
            if self.shed_expired and record.certificate.not_after < publication_day:
                continue
            entries.append(record.crl_entry())
        self._publish_cache = (publication_day, crl)
        return crl

    def revocation_count(self) -> int:
        return len(self._revocations)


@dataclass(frozen=True)
class DisclosedCrl:
    """One CCADB disclosure row: a CA name and a CRL URL."""

    ca_operator: str
    url: str
    publisher: CaCrlPublisher


class DisclosureList:
    """The aggregate of all disclosed CRL URLs (the fetcher's worklist)."""

    def __init__(self) -> None:
        self._disclosed: List[DisclosedCrl] = []

    def disclose(self, publisher: CaCrlPublisher, endpoints: int = 1) -> List[DisclosedCrl]:
        """Disclose a CA's CRL endpoints.

        Large CAs publish many CRLs (DigiCert disclosed 629 in the paper's
        Appendix B); each endpoint is fetched — and can fail — independently.
        """
        if endpoints < 1:
            raise ValueError("a disclosed CA must expose at least one CRL endpoint")
        rows: List[DisclosedCrl] = []
        for index in range(endpoints):
            suffix = "" if index == 0 else f"?shard={index}"
            rows.append(
                DisclosedCrl(
                    ca_operator=publisher.ca.operator,
                    url=publisher.ca.crl_url + suffix,
                    publisher=publisher,
                )
            )
        self._disclosed.extend(rows)
        return rows

    def rows(self) -> List[DisclosedCrl]:
        return list(self._disclosed)

    def by_operator(self) -> Dict[str, List[DisclosedCrl]]:
        grouped: Dict[str, List[DisclosedCrl]] = {}
        for row in self._disclosed:
            grouped.setdefault(row.ca_operator, []).append(row)
        return grouped

    def __len__(self) -> int:
        return len(self._disclosed)
