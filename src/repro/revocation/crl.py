"""Certificate Revocation Lists.

A CRL, as the paper notes (Section 4.1), does *not* include the revoked
certificate: each entry carries only the issuer's authority key id, the
serial number, the revocation time, and the reason. Cross-referencing
against CT is therefore required to recover the certificate content — the
exact join the key-compromise pipeline performs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.revocation.reasons import RevocationReason
from repro.util.dates import Day, day_to_iso


@dataclass(frozen=True)
class CrlEntry:
    """One revoked-certificate entry."""

    serial: int
    revocation_day: Day
    reason: RevocationReason = RevocationReason.UNSPECIFIED

    def to_record(self) -> Dict[str, object]:
        return {
            "serial": self.serial,
            "revocation_day": day_to_iso(self.revocation_day),
            "reason": self.reason.name.lower(),
        }


@dataclass
class CertificateRevocationList:
    """A CRL published by one issuing CA at one point in time."""

    issuer_name: str
    authority_key_id: str
    this_update: Day
    next_update: Day
    crl_number: int
    entries: List[CrlEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.next_update < self.this_update:
            raise ValueError("nextUpdate precedes thisUpdate")

    def add(self, entry: CrlEntry) -> None:
        self.entries.append(entry)

    def is_revoked(self, serial: int) -> Optional[CrlEntry]:
        for entry in self.entries:
            if entry.serial == serial:
                return entry
        return None

    def is_fresh_on(self, query_day: Day) -> bool:
        return self.this_update <= query_day <= self.next_update

    def revocation_keys(self) -> Iterator[Tuple[str, int]]:
        """(authority key id, serial) pairs — join keys against CT."""
        for entry in self.entries:
            yield (self.authority_key_id, entry.serial)

    def entries_with_reason(self, reason: RevocationReason) -> List[CrlEntry]:
        return [entry for entry in self.entries if entry.reason is reason]

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return (
            f"CRL({self.issuer_name!r}, #{self.crl_number}, "
            f"{len(self.entries)} entries, {day_to_iso(self.this_update)})"
        )


def merge_crl_series(crls: Iterable[CertificateRevocationList]) -> Dict[Tuple[str, int], CrlEntry]:
    """Union a CRL time series into the latest entry per (issuer key, serial).

    Daily downloads of the same CRL overlap heavily; the measurement keeps
    the earliest revocation day seen per key (revocation times are stable,
    but defensive code guards against republication glitches).
    """
    merged: Dict[Tuple[str, int], CrlEntry] = {}
    for crl in crls:
        for entry in crl.entries:
            key = (crl.authority_key_id, entry.serial)
            existing = merged.get(key)
            if existing is None or entry.revocation_day < existing.revocation_day:
                merged[key] = entry
    return merged
