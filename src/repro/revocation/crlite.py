"""CRLite-style compressed revocation sets (paper §7.2, reference [49]).

CRLite pushes *all* revocations to clients as a Bloom-filter cascade: level
0 is a Bloom filter over the revoked set; its false positives against the
known universe of valid certificates populate level 1; level 1's false
positives against the revoked set populate level 2; and so on until a level
produces no false positives. Because the universe is fully enumerated
(thanks to CT), membership queries are *exact* for every certificate in the
universe — the cascade only risks error for certificates it never knew
about, which the client never asks about.

The paper positions CRLite as the revocation mitigation that could actually
stop third-party stale certificates if hard-fail hurdles are overcome; the
`crlite` ablation bench measures how small the full revocation set becomes.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set, Tuple

from repro.pki.certificate import Certificate


class BloomFilter:
    """A fixed-size Bloom filter over byte-string keys."""

    def __init__(self, capacity: int, error_rate: float, salt: bytes) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < error_rate < 1.0:
            raise ValueError("error rate must be in (0, 1)")
        ln2 = math.log(2)
        self.bit_count = max(8, int(-capacity * math.log(error_rate) / (ln2 * ln2)))
        self.hash_count = max(1, int(round(self.bit_count / capacity * ln2)))
        self._bits = bytearray((self.bit_count + 7) // 8)
        self._salt = salt

    def _positions(self, key: bytes) -> Iterable[int]:
        # Double hashing: h1 + i*h2, the standard Kirsch-Mitzenmacher trick.
        digest = hashlib.sha256(self._salt + key).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1
        for i in range(self.hash_count):
            yield (h1 + i * h2) % self.bit_count

    def add(self, key: bytes) -> None:
        for position in self._positions(key):
            self._bits[position // 8] |= 1 << (position % 8)

    def __contains__(self, key: bytes) -> bool:
        return all(
            self._bits[position // 8] & (1 << (position % 8))
            for position in self._positions(key)
        )

    @property
    def size_bytes(self) -> int:
        return len(self._bits)


@dataclass(frozen=True)
class CascadeStats:
    """Construction statistics for one cascade."""

    revoked_count: int
    valid_count: int
    levels: int
    total_size_bytes: int

    @property
    def bits_per_revocation(self) -> float:
        if not self.revoked_count:
            return 0.0
        return 8.0 * self.total_size_bytes / self.revoked_count


class FilterCascade:
    """An exact-membership Bloom-filter cascade over a closed universe."""

    def __init__(self, levels: List[BloomFilter]) -> None:
        self._levels = levels

    @classmethod
    def build(
        cls,
        revoked: Iterable[bytes],
        valid: Iterable[bytes],
        error_rate: float = 0.5,
        max_levels: int = 64,
    ) -> Tuple["FilterCascade", CascadeStats]:
        """Build a cascade that exactly separates *revoked* from *valid*.

        ``error_rate`` is the per-level false-positive target; CRLite uses
        aggressive rates (~0.5 beyond level 0) because later levels mop up.
        """
        include: Set[bytes] = set(revoked)
        exclude: Set[bytes] = set(valid)
        overlap = include & exclude
        if overlap:
            raise ValueError(f"{len(overlap)} keys are both revoked and valid")
        revoked_count, valid_count = len(include), len(exclude)

        levels: List[BloomFilter] = []
        depth = 0
        while include:
            if depth >= max_levels:
                raise RuntimeError("cascade failed to converge")
            # Level 0 is sized generously; deeper levels are tiny.
            rate = min(error_rate, 0.3) if depth == 0 else error_rate
            bloom = BloomFilter(len(include), rate, salt=f"level-{depth}".encode())
            for key in include:
                bloom.add(key)
            false_positives = {key for key in exclude if key in bloom}
            levels.append(bloom)
            include, exclude = false_positives, include
            depth += 1
        cascade = cls(levels)
        stats = CascadeStats(
            revoked_count=revoked_count,
            valid_count=valid_count,
            levels=len(levels),
            total_size_bytes=cascade.size_bytes,
        )
        return cascade, stats

    def __contains__(self, key: bytes) -> bool:
        """Exact membership for keys drawn from the construction universe.

        A key is revoked iff it is caught at an even depth: presence in
        level 0 says "maybe revoked", presence in level 1 says "that was a
        false positive", and so on.
        """
        for depth, bloom in enumerate(self._levels):
            if key not in bloom:
                return depth % 2 == 1
        return len(self._levels) % 2 == 1

    @property
    def level_count(self) -> int:
        return len(self._levels)

    @property
    def size_bytes(self) -> int:
        return sum(bloom.size_bytes for bloom in self._levels)


def certificate_key(certificate: Certificate) -> bytes:
    """The CRLite key of a certificate: issuer key id + serial."""
    akid, serial = certificate.revocation_key()
    return f"{akid}:{serial}".encode("utf-8")


def build_certificate_cascade(
    revoked_certificates: Sequence[Certificate],
    valid_certificates: Sequence[Certificate],
    error_rate: float = 0.5,
) -> Tuple[FilterCascade, CascadeStats]:
    """Build a cascade over certificates, keyed like CRL entries."""
    return FilterCascade.build(
        (certificate_key(c) for c in revoked_certificates),
        (certificate_key(c) for c in valid_certificates),
        error_rate=error_rate,
    )
