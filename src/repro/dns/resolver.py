"""A CNAME-chasing stub resolver over the simulated zone store.

The active scanner resolves every apex daily; resolution here follows CNAME
chains across zones (the delegation pattern CDNs use, paper Section 2.3
option 3) with loop protection, and reports NXDOMAIN for names whose zones
have been dropped from the registry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.dns.records import RecordType, ResourceRecord
from repro.dns.zone import ZoneStore
from repro.psl.registered import DomainName

MAX_CNAME_CHAIN = 8


class ResolutionStatus(enum.Enum):
    OK = "ok"
    NXDOMAIN = "nxdomain"
    NODATA = "nodata"
    CNAME_LOOP = "cname_loop"
    CHAIN_TOO_LONG = "chain_too_long"


@dataclass
class Resolution:
    """Outcome of resolving (name, rtype)."""

    name: str
    rtype: RecordType
    status: ResolutionStatus
    records: List[ResourceRecord] = field(default_factory=list)
    cname_chain: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status is ResolutionStatus.OK

    def rdatas(self) -> List[str]:
        return [record.rdata for record in self.records]


class Resolver:
    """Resolves names against a :class:`ZoneStore`, chasing CNAMEs."""

    def __init__(self, zones: ZoneStore) -> None:
        self._zones = zones

    def resolve(self, name: str, rtype: RecordType) -> Resolution:
        """Resolve *name* for *rtype*.

        For non-CNAME queries, a CNAME at the name redirects the query
        (standard resolver behaviour); the traversed chain is recorded so
        the scanner can observe CDN delegation targets.
        """
        normalized = DomainName(name).name
        chain: List[str] = []
        current = normalized
        visited = {current}
        while True:
            zone = self._zones.find_zone_for(current)
            if zone is None:
                return Resolution(normalized, rtype, ResolutionStatus.NXDOMAIN, cname_chain=chain)
            direct = zone.lookup(current, rtype)
            if direct:
                return Resolution(normalized, rtype, ResolutionStatus.OK, direct, chain)
            if rtype is not RecordType.CNAME:
                cname = zone.lookup(current, RecordType.CNAME)
                if cname:
                    target = cname[0].rdata
                    chain.append(target)
                    if target in visited:
                        return Resolution(
                            normalized, rtype, ResolutionStatus.CNAME_LOOP, cname_chain=chain
                        )
                    if len(chain) > MAX_CNAME_CHAIN:
                        return Resolution(
                            normalized, rtype, ResolutionStatus.CHAIN_TOO_LONG, cname_chain=chain
                        )
                    visited.add(target)
                    current = target
                    continue
            # Name exists in some zone but holds no data of this type at it?
            status = (
                ResolutionStatus.NODATA
                if _name_exists(zone, current)
                else ResolutionStatus.NXDOMAIN
            )
            return Resolution(normalized, rtype, status, cname_chain=chain)

    def resolve_chain(self, name: str) -> Tuple[Resolution, List[str]]:
        """Resolve A records and also return the full CNAME chain walked."""
        resolution = self.resolve(name, RecordType.A)
        return resolution, resolution.cname_chain


def _name_exists(zone, name: str) -> bool:
    return any(existing == name for existing in zone.names())
