"""Active DNS scanning engine.

Emulates the paper's daily DNS collection (Table 3: ~300M A/AAAA, 274M NS,
10M CNAME records per day across all e2LDs in public zones): every scan day,
each apex enumerated from the zone store is resolved for the scanned record
types and the results are written into a :class:`DailySnapshot`.

Real scans suffer transient failures; an optional loss rate drops individual
lookups so downstream detectors are exercised against missing data, as the
paper's "compare with neighboring days" logic tolerates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.dns.records import RecordType
from repro.dns.resolver import Resolver
from repro.dns.snapshots import SCANNED_TYPES, DailySnapshot, SnapshotStore
from repro.dns.zone import ZoneStore
from repro.util.dates import Day
from repro.util.rng import RngStream


@dataclass
class ScanObservation:
    """Summary statistics for one scan day (reported in Table 3 analog)."""

    day: Day
    apex_count: int
    a_records: int
    ns_records: int
    cname_records: int
    failed_lookups: int


class ActiveScanner:
    """Resolves every apex daily and accumulates snapshots."""

    def __init__(
        self,
        zones: ZoneStore,
        store: Optional[SnapshotStore] = None,
        loss_rate: float = 0.0,
        rng: Optional[RngStream] = None,
    ) -> None:
        if loss_rate and rng is None:
            raise ValueError("loss_rate > 0 requires an RngStream")
        self._zones = zones
        self._resolver = Resolver(zones)
        self.store = store or SnapshotStore()
        self._loss_rate = loss_rate
        self._rng = rng

    def scan_day(self, scan_day: Day, apexes: Optional[Iterable[str]] = None) -> ScanObservation:
        """Run one full scan and store the snapshot."""
        snapshot = DailySnapshot(scan_day)
        stats = {"a": 0, "ns": 0, "cname": 0, "failed": 0}
        targets = list(apexes) if apexes is not None else self._zones.enumerate_apexes()
        for apex in targets:
            for rtype in SCANNED_TYPES:
                if self._loss_rate and self._rng and self._rng.bernoulli(self._loss_rate):
                    stats["failed"] += 1
                    continue
                resolution = self._resolver.resolve(apex, rtype)
                values = resolution.rdatas() if resolution.ok else []
                # Record the CNAME chain target even when the terminal A
                # lookup succeeded through delegation: the paper's detector
                # watches the delegation names themselves.
                if rtype is RecordType.CNAME and not values and resolution.cname_chain:
                    values = [resolution.cname_chain[0]]
                if values:
                    snapshot.observe(apex, rtype, values)
                    if rtype is RecordType.A:
                        stats["a"] += len(values)
                    elif rtype is RecordType.NS:
                        stats["ns"] += len(values)
                    elif rtype is RecordType.CNAME:
                        stats["cname"] += len(values)
                elif apex not in snapshot.apexes():
                    # Ensure registered-but-parked domains still appear with
                    # empty record sets, so disappearance (dropped zone) is
                    # distinguishable from empty data.
                    if self._zones.get(apex) is not None:
                        snapshot.observe(apex, rtype, [])
        self.store.put(snapshot)
        return ScanObservation(
            day=scan_day,
            apex_count=len(snapshot),
            a_records=stats["a"],
            ns_records=stats["ns"],
            cname_records=stats["cname"],
            failed_lookups=stats["failed"],
        )

    def scan_range(self, first_day: Day, last_day: Day) -> int:
        """Scan every day in ``[first_day, last_day]``; returns days scanned."""
        for current in range(first_day, last_day + 1):
            self.scan_day(current)
        return last_day - first_day + 1
