"""DANE / TLSA (RFC 6698) — the paper's systemic alternative (§7.2).

DANE publishes the name-to-key binding *in DNS itself*, collapsing the
third-party dependency chain onto the nameserver operator and shrinking the
authentication cache duration from certificate lifetimes (months–years) to
DNS TTLs (hours). This module implements the TLSA record model and
verification, plus the staleness-window comparison the paper's discussion
implies: after a key change, a DANE binding is stale for at most one TTL,
while a PKI certificate stays abusable until notAfter.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.dns.records import RecordType
from repro.dns.resolver import Resolver
from repro.dns.zone import ZoneStore
from repro.pki.certificate import Certificate
from repro.pki.keys import KeyPair
from repro.psl.registered import DomainName
from repro.util.dates import Day


class TlsaUsage(enum.Enum):
    """TLSA certificate usages (RFC 6698 §2.1.1)."""

    PKIX_TA = 0  # CA constraint, PKIX validation still required
    PKIX_EE = 1  # service-certificate constraint + PKIX
    DANE_TA = 2  # trust anchor assertion, no PKIX
    DANE_EE = 3  # domain-issued certificate, no PKIX


class TlsaSelector(enum.Enum):
    FULL_CERTIFICATE = 0
    SPKI = 1


class TlsaMatching(enum.Enum):
    EXACT = 0
    SHA256 = 1


@dataclass(frozen=True)
class TlsaRecord:
    """One TLSA resource record (as rendered at _port._proto.name)."""

    usage: TlsaUsage
    selector: TlsaSelector
    matching: TlsaMatching
    association: str  # SPKI fingerprint or certificate fingerprint

    def to_rdata(self) -> str:
        return (
            f"{self.usage.value} {self.selector.value} "
            f"{self.matching.value} {self.association}"
        )

    @classmethod
    def from_rdata(cls, rdata: str) -> "TlsaRecord":
        parts = rdata.split()
        if len(parts) != 4:
            raise ValueError(f"malformed TLSA rdata: {rdata!r}")
        return cls(
            usage=TlsaUsage(int(parts[0])),
            selector=TlsaSelector(int(parts[1])),
            matching=TlsaMatching(int(parts[2])),
            association=parts[3],
        )

    @classmethod
    def for_key(cls, key: KeyPair, usage: TlsaUsage = TlsaUsage.DANE_EE) -> "TlsaRecord":
        return cls(
            usage=usage,
            selector=TlsaSelector.SPKI,
            matching=TlsaMatching.SHA256,
            association=key.spki_fingerprint,
        )

    def matches_certificate(self, certificate: Certificate) -> bool:
        if self.selector is TlsaSelector.SPKI:
            return self.association == certificate.spki_fingerprint
        return self.association == certificate.dedup_fingerprint()


def tlsa_name(hostname: str, port: int = 443, protocol: str = "tcp") -> str:
    """The TLSA owner name: _443._tcp.host.example."""
    return f"_{port}._{protocol}.{DomainName(hostname).name}"


#: Default TLSA TTL: the hours-scale cache duration the paper contrasts
#: with 398-day certificate lifetimes.
DEFAULT_TLSA_TTL_SECONDS = 3600


class DaneDeployment:
    """Publishes and verifies TLSA bindings over the simulated DNS."""

    def __init__(self, zones: ZoneStore, ttl_seconds: int = DEFAULT_TLSA_TTL_SECONDS) -> None:
        self._zones = zones
        self._resolver = Resolver(zones)
        self.ttl_seconds = ttl_seconds

    def publish(self, hostname: str, record: TlsaRecord, port: int = 443) -> None:
        """Publish (replacing) the TLSA binding for a service."""
        zone = self._zones.find_zone_for(hostname)
        if zone is None:
            raise KeyError(f"no zone for {hostname}")
        zone.replace(
            tlsa_name(hostname, port), RecordType.TXT, [record.to_rdata()],
            ttl=self.ttl_seconds,
        )

    def lookup(self, hostname: str, port: int = 443) -> List[TlsaRecord]:
        resolution = self._resolver.resolve(tlsa_name(hostname, port), RecordType.TXT)
        if not resolution.ok:
            return []
        return [TlsaRecord.from_rdata(rdata) for rdata in resolution.rdatas()]

    def verify(self, hostname: str, certificate: Certificate, port: int = 443) -> bool:
        """DANE-EE style verification: any published binding matches."""
        records = self.lookup(hostname, port)
        return any(record.matches_certificate(certificate) for record in records)


@dataclass(frozen=True)
class StalenessComparison:
    """Abusable windows after a key change: DANE vs web PKI (§7.2)."""

    dane_stale_seconds: int
    pki_stale_days: int

    @property
    def pki_to_dane_ratio(self) -> float:
        dane_days = max(self.dane_stale_seconds / 86_400.0, 1e-9)
        return self.pki_stale_days / dane_days


def compare_staleness_windows(
    certificate: Certificate,
    key_change_day: Day,
    tlsa_ttl_seconds: int = DEFAULT_TLSA_TTL_SECONDS,
) -> StalenessComparison:
    """The paper's discussion quantified: after a key change on
    *key_change_day*, DANE clients trust the old key for at most one TTL,
    while PKI clients trust it until the certificate expires."""
    pki_days = max(0, certificate.not_after - key_change_day)
    return StalenessComparison(
        dane_stale_seconds=tlsa_ttl_seconds,
        pki_stale_days=pki_days,
    )
