"""Zone-file (RFC 1035 master-file subset) serialization.

The paper's DNS dataset begins with zone files obtained from ICANN's
Centralized Zone Data Service (CZDS). This module renders simulated zones
into the standard text format and parses them back, so the scanner's
"extract the domains from all publicly available zone files" step can be
exercised against realistic inputs — including comments, $ORIGIN/$TTL
directives, and relative names.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dns.records import RecordType, ResourceRecord
from repro.dns.zone import Zone, ZoneStore

def render_zone(zone: Zone, default_ttl: int = 3600) -> str:
    """Render a zone in master-file format with $ORIGIN/$TTL directives."""
    lines: List[str] = [
        f"$ORIGIN {zone.apex}.",
        f"$TTL {default_ttl}",
        f"@\tIN\tSOA\t{zone.soa.primary_ns}. {zone.soa.admin_contact}. "
        f"( {zone.soa.serial} 7200 3600 1209600 3600 )",
    ]
    for record in sorted(zone.all_records(), key=lambda r: (r.name, r.rtype.value, r.rdata)):
        owner = _relative_name(record.name, zone.apex)
        rdata = _render_rdata(record)
        ttl = "" if record.ttl == default_ttl else f"{record.ttl}\t"
        lines.append(f"{owner}\t{ttl}IN\t{record.rtype.value}\t{rdata}")
    return "\n".join(lines) + "\n"


def parse_zone(text: str) -> Zone:
    """Parse master-file text back into a :class:`Zone`.

    Supports the subset :func:`render_zone` emits plus comments (``;``),
    blank lines, and absolute owner names.
    """
    origin: Optional[str] = None
    default_ttl = 3600
    zone: Optional[Zone] = None
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split(";", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.startswith("$ORIGIN"):
            origin = line.split()[1].rstrip(".").lower()
            continue
        if line.startswith("$TTL"):
            default_ttl = int(line.split()[1])
            continue
        if origin is None:
            raise ValueError(f"line {line_number}: record before $ORIGIN")
        if zone is None:
            zone = Zone(origin)
        fields = line.split()
        owner = _absolute_name(fields[0], origin)
        index = 1
        ttl = default_ttl
        if fields[index].isdigit():
            ttl = int(fields[index])
            index += 1
        if fields[index].upper() == "IN":
            index += 1
        rtype_text = fields[index].upper()
        index += 1
        if rtype_text == "SOA":
            continue  # SOA is reconstructed from the zone apex
        try:
            rtype = RecordType(rtype_text)
        except ValueError as exc:
            raise ValueError(f"line {line_number}: unsupported type {rtype_text}") from exc
        rdata = _parse_rdata(rtype, fields[index:])
        zone.add(owner, rtype, rdata, ttl)
    if zone is None:
        raise ValueError("no records found")
    return zone


def render_store(store: ZoneStore) -> str:
    """Concatenate every zone of the store (a CZDS-dump analogue)."""
    return "\n".join(render_zone(store.get(apex)) for apex in store.enumerate_apexes())


def extract_apexes(text: str) -> List[str]:
    """The CZDS workflow's first step: enumerate registered e2LDs by
    reading the $ORIGIN lines of a zone dump."""
    apexes = []
    for line in text.splitlines():
        if line.startswith("$ORIGIN"):
            apexes.append(line.split()[1].rstrip(".").lower())
    return apexes


def _relative_name(name: str, apex: str) -> str:
    if name == apex:
        return "@"
    suffix = "." + apex
    if name.endswith(suffix):
        return name[: -len(suffix)]
    return name + "."


def _absolute_name(owner: str, origin: str) -> str:
    if owner == "@":
        return origin
    if owner.endswith("."):
        return owner.rstrip(".").lower()
    return f"{owner}.{origin}"


def _render_rdata(record: ResourceRecord) -> str:
    if record.rtype in (RecordType.NS, RecordType.CNAME):
        return record.rdata + "."
    if record.rtype is RecordType.TXT:
        return f'"{record.rdata}"'
    return record.rdata


def _parse_rdata(rtype: RecordType, fields: List[str]) -> str:
    raw = " ".join(fields)
    if rtype in (RecordType.NS, RecordType.CNAME):
        return raw.rstrip(".")
    if rtype is RecordType.TXT:
        return raw.strip('"')
    return raw
