"""Zone model and the zone store behind the active scanner.

A :class:`Zone` owns the records at and beneath an apex name. The
:class:`ZoneStore` plays the role of the registries' zone files published
through CZDS in the paper: it enumerates all existing e2LDs so the scanner
knows what to resolve each day.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.dns.records import RecordType, ResourceRecord, RRSet
from repro.psl.registered import DomainName, is_subdomain_of


@dataclass
class Soa:
    """Start-of-authority metadata for a zone."""

    primary_ns: str
    admin_contact: str
    serial: int = 1

    def bump(self) -> None:
        self.serial += 1


class Zone:
    """The authoritative record set for one apex domain."""

    def __init__(self, apex: str, soa: Optional[Soa] = None) -> None:
        self.apex = DomainName(apex).name
        self.soa = soa or Soa(primary_ns=f"ns1.{self.apex}", admin_contact=f"hostmaster.{self.apex}")
        self._rrsets: Dict[Tuple[str, RecordType], RRSet] = {}

    def add(self, name: str, rtype: RecordType, rdata: str, ttl: int = 3600) -> ResourceRecord:
        """Add a record; the name must be at or below the apex."""
        normalized = DomainName(name).name
        if not is_subdomain_of(normalized, self.apex):
            raise ValueError(f"{normalized} is outside zone {self.apex}")
        if rtype is RecordType.CNAME:
            # A CNAME must be the only record at its name (RFC 1034 §3.6.2).
            conflicting = [
                key for key in self._rrsets
                if key[0] == normalized and key[1] is not RecordType.CNAME
            ]
            if conflicting:
                raise ValueError(f"CNAME at {normalized} conflicts with existing records")
        elif (normalized, RecordType.CNAME) in self._rrsets:
            raise ValueError(f"{normalized} already holds a CNAME; no other types allowed")
        rrset = self._rrsets.setdefault((normalized, rtype), RRSet(normalized, rtype))
        record = rrset.add(rdata, ttl)
        self.soa.bump()
        return record

    def remove(self, name: str, rtype: Optional[RecordType] = None, rdata: Optional[str] = None) -> int:
        """Remove matching records; returns how many were removed."""
        normalized = DomainName(name).name
        removed = 0
        for key in list(self._rrsets):
            rname, rt = key
            if rname != normalized:
                continue
            if rtype is not None and rt is not rtype:
                continue
            rrset = self._rrsets[key]
            if rdata is None:
                removed += len(rrset)
                del self._rrsets[key]
            else:
                target = rdata
                if rt in (RecordType.NS, RecordType.CNAME):
                    target = DomainName(rdata).name
                before = len(rrset.records)
                rrset.records = [r for r in rrset.records if r.rdata != target]
                removed += before - len(rrset.records)
                if not rrset.records:
                    del self._rrsets[key]
        if removed:
            self.soa.bump()
        return removed

    def replace(self, name: str, rtype: RecordType, rdatas: Iterable[str], ttl: int = 3600) -> None:
        """Atomically replace the RRSet at (name, rtype)."""
        self.remove(name, rtype)
        for rdata in rdatas:
            self.add(name, rtype, rdata, ttl)

    def lookup(self, name: str, rtype: RecordType) -> List[ResourceRecord]:
        normalized = DomainName(name).name
        rrset = self._rrsets.get((normalized, rtype))
        return list(rrset.records) if rrset else []

    def names(self) -> Iterator[str]:
        seen = set()
        for name, _rtype in self._rrsets:
            if name not in seen:
                seen.add(name)
                yield name

    def all_records(self) -> Iterator[ResourceRecord]:
        for rrset in self._rrsets.values():
            yield from rrset.records

    def __len__(self) -> int:
        return sum(len(rrset) for rrset in self._rrsets.values())


class ZoneStore:
    """All zones known to the simulated DNS, indexed by apex.

    ``enumerate_apexes`` stands in for the paper's CZDS zone-file extraction:
    it lists every registered e2LD that the daily scanner will resolve.
    """

    def __init__(self) -> None:
        self._zones: Dict[str, Zone] = {}

    def create(self, apex: str) -> Zone:
        normalized = DomainName(apex).name
        if normalized in self._zones:
            raise ValueError(f"zone {normalized} already exists")
        zone = Zone(normalized)
        self._zones[normalized] = zone
        return zone

    def get_or_create(self, apex: str) -> Zone:
        normalized = DomainName(apex).name
        existing = self._zones.get(normalized)
        return existing if existing is not None else self.create(normalized)

    def drop(self, apex: str) -> bool:
        """Delete a zone (domain expired and was removed from the registry)."""
        return self._zones.pop(DomainName(apex).name, None) is not None

    def get(self, apex: str) -> Optional[Zone]:
        return self._zones.get(DomainName(apex).name)

    def find_zone_for(self, name: str) -> Optional[Zone]:
        """Longest-suffix zone match for an arbitrary name."""
        current: Optional[str] = DomainName(name).name
        while current:
            zone = self._zones.get(current)
            if zone is not None:
                return zone
            dot = current.find(".")
            current = current[dot + 1:] if dot != -1 else None
        return None

    def enumerate_apexes(self) -> List[str]:
        return sorted(self._zones)

    def __len__(self) -> int:
        return len(self._zones)

    def __contains__(self, apex: str) -> bool:
        return DomainName(apex).name in self._zones
