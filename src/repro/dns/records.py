"""DNS resource-record model.

Covers the record types the paper's pipelines touch: A/AAAA (hosting
location), NS and CNAME (CDN delegation, Section 4.3), TXT and CAA
(DV issuance checks, Section 2.2), and SOA (zone metadata / WHOIS-adjacent
contacts).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Tuple

from repro.psl.registered import DomainName


class RecordType(enum.Enum):
    """Subset of DNS RR types used by the reproduction."""

    A = "A"
    AAAA = "AAAA"
    NS = "NS"
    CNAME = "CNAME"
    TXT = "TXT"
    CAA = "CAA"
    SOA = "SOA"

    def __str__(self) -> str:  # keeps report rendering terse
        return self.value


@dataclass(frozen=True)
class ResourceRecord:
    """One DNS resource record.

    ``rdata`` is the presentation-format payload: an IP for A/AAAA, a target
    name for NS/CNAME, free text for TXT, ``flags tag value`` for CAA.
    """

    name: str
    rtype: RecordType
    rdata: str
    ttl: int = 3600

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", DomainName(self.name).name)
        if self.ttl < 0:
            raise ValueError("TTL must be non-negative")
        if self.rtype in (RecordType.NS, RecordType.CNAME):
            object.__setattr__(self, "rdata", DomainName(self.rdata).name)
        elif self.rtype is RecordType.A:
            _validate_ipv4(self.rdata)
        elif self.rtype is RecordType.AAAA:
            _validate_ipv6(self.rdata)

    def key(self) -> Tuple[str, str, str]:
        """Dedup key: a record set is a set of these."""
        return (self.name, self.rtype.value, self.rdata)


@dataclass
class RRSet:
    """All records of one type at one name."""

    name: str
    rtype: RecordType
    records: List[ResourceRecord] = field(default_factory=list)

    def add(self, rdata: str, ttl: int = 3600) -> ResourceRecord:
        record = ResourceRecord(self.name, self.rtype, rdata, ttl)
        if record.key() not in {r.key() for r in self.records}:
            self.records.append(record)
        return record

    def rdatas(self) -> FrozenSet[str]:
        return frozenset(r.rdata for r in self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


def caa_allows_issuer(caa_records: Iterable[ResourceRecord], ca_domain: str) -> bool:
    """Evaluate CAA ``issue`` tags for a CA identity (RFC 8659 subset).

    No CAA records means any CA may issue. Any ``issue`` record present
    restricts issuance to the named CA domains; ``issue \";\"`` forbids all.
    """
    issue_values: List[str] = []
    for record in caa_records:
        if record.rtype is not RecordType.CAA:
            continue
        parts = record.rdata.split(None, 2)
        if len(parts) == 3 and parts[1].lower() == "issue":
            issue_values.append(parts[2].strip().strip('"'))
    if not issue_values:
        return True
    for value in issue_values:
        if value == ";":
            continue
        if value.split(";")[0].strip().lower() == ca_domain.lower():
            return True
    return False


def _validate_ipv4(text: str) -> None:
    parts = text.split(".")
    if len(parts) != 4 or not all(p.isdigit() and 0 <= int(p) <= 255 for p in parts):
        raise ValueError(f"invalid IPv4 address: {text!r}")


def _validate_ipv6(text: str) -> None:
    if ":" not in text:
        raise ValueError(f"invalid IPv6 address: {text!r}")
    groups = text.split(":")
    if len(groups) > 8:
        raise ValueError(f"invalid IPv6 address: {text!r}")
    if "::" not in text and len(groups) != 8:
        raise ValueError(f"invalid IPv6 address: {text!r}")
    if text.count("::") > 1:
        raise ValueError(f"invalid IPv6 address: {text!r}")
    empties = sum(1 for g in groups if g == "")
    # "::" compression produces at most two adjacent empty groups ("::1").
    if empties > 3:
        raise ValueError(f"invalid IPv6 address: {text!r}")
    for group in groups:
        if group and (len(group) > 4 or any(c not in "0123456789abcdefABCDEF" for c in group)):
            raise ValueError(f"invalid IPv6 address: {text!r}")
