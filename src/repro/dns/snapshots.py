"""Daily DNS snapshots and day-over-day diffing.

The paper's managed-TLS detector compares "each day's NS and CNAME records
with neighboring days" (Section 4.3). A :class:`DailySnapshot` captures, for
one day, the observed record sets per apex; :func:`diff_days` produces the
per-domain record-set changes between two snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.dns.records import RecordType
from repro.util.dates import Day, day_to_iso

#: The record types captured by the daily scan, per Table 3 of the paper.
SCANNED_TYPES = (RecordType.A, RecordType.AAAA, RecordType.NS, RecordType.CNAME)


@dataclass
class DomainObservation:
    """All record data observed for one apex on one day."""

    apex: str
    rdatas: Dict[str, FrozenSet[str]] = field(default_factory=dict)  # rtype value -> rdata set

    def get(self, rtype: RecordType) -> FrozenSet[str]:
        return self.rdatas.get(rtype.value, frozenset())

    def set(self, rtype: RecordType, values: Iterable[str]) -> None:
        self.rdatas[rtype.value] = frozenset(values)

    def delegation_targets(self) -> FrozenSet[str]:
        """NS plus CNAME targets — the names that indicate who serves the domain."""
        return self.get(RecordType.NS) | self.get(RecordType.CNAME)


class DailySnapshot:
    """One day of scan results across all apexes in the zone store."""

    def __init__(self, scan_day: Day) -> None:
        self.day = scan_day
        self._observations: Dict[str, DomainObservation] = {}

    @classmethod
    def from_observations(
        cls, scan_day: Day, observations: Dict[str, DomainObservation]
    ) -> "DailySnapshot":
        """Build a snapshot directly from shared observation objects.

        The world simulator interns unchanged observations across days, so a
        90-day scan window over a mostly-static zone costs one object per
        (domain, change) rather than per (domain, day).
        """
        snapshot = cls(scan_day)
        snapshot._observations = dict(observations)
        return snapshot

    def observe(self, apex: str, rtype: RecordType, rdatas: Iterable[str]) -> None:
        obs = self._observations.setdefault(apex, DomainObservation(apex))
        obs.set(rtype, rdatas)

    def get(self, apex: str) -> Optional[DomainObservation]:
        return self._observations.get(apex)

    def apexes(self) -> Set[str]:
        return set(self._observations)

    def record_count(self) -> int:
        return sum(
            len(values) for obs in self._observations.values() for values in obs.rdatas.values()
        )

    def __len__(self) -> int:
        return len(self._observations)

    def __repr__(self) -> str:
        return f"DailySnapshot({day_to_iso(self.day)}, {len(self)} apexes)"


@dataclass(frozen=True)
class SnapshotDiff:
    """Record-set change for one apex between consecutive scan days."""

    apex: str
    day_before: Day
    day_after: Day
    removed: Dict[str, FrozenSet[str]]
    added: Dict[str, FrozenSet[str]]
    disappeared: bool  # apex present on day_before, absent on day_after

    def removed_of(self, rtype: RecordType) -> FrozenSet[str]:
        return self.removed.get(rtype.value, frozenset())

    def added_of(self, rtype: RecordType) -> FrozenSet[str]:
        return self.added.get(rtype.value, frozenset())


def diff_days(before: DailySnapshot, after: DailySnapshot) -> Iterator[SnapshotDiff]:
    """Yield per-apex diffs between two snapshots (only changed apexes).

    Apexes appearing only in *after* (new registrations) are not yielded —
    the detectors only care about departures and record changes.
    """
    for apex in before.apexes():
        obs_before = before.get(apex)
        obs_after = after.get(apex)
        if obs_after is None:
            yield SnapshotDiff(
                apex=apex,
                day_before=before.day,
                day_after=after.day,
                removed={k: v for k, v in obs_before.rdatas.items() if v},
                added={},
                disappeared=True,
            )
            continue
        removed: Dict[str, FrozenSet[str]] = {}
        added: Dict[str, FrozenSet[str]] = {}
        for key in sorted(set(obs_before.rdatas) | set(obs_after.rdatas)):
            old = obs_before.rdatas.get(key, frozenset())
            new = obs_after.rdatas.get(key, frozenset())
            gone = old - new
            fresh = new - old
            if gone:
                removed[key] = frozenset(gone)
            if fresh:
                added[key] = frozenset(fresh)
        if removed or added:
            yield SnapshotDiff(apex, before.day, after.day, removed, added, False)


class SnapshotStore:
    """Day-indexed snapshot collection with neighbor iteration."""

    def __init__(self) -> None:
        self._by_day: Dict[Day, DailySnapshot] = {}

    def put(self, snapshot: DailySnapshot) -> None:
        self._by_day[snapshot.day] = snapshot

    def get(self, scan_day: Day) -> Optional[DailySnapshot]:
        return self._by_day.get(scan_day)

    def days(self) -> List[Day]:
        return sorted(self._by_day)

    def consecutive_pairs(self) -> Iterator[Tuple[DailySnapshot, DailySnapshot]]:
        """Yield (day N, day N+next-scan) snapshot pairs in day order."""
        ordered = self.days()
        for before_day, after_day in zip(ordered, ordered[1:]):
            yield self._by_day[before_day], self._by_day[after_day]

    def __len__(self) -> int:
        return len(self._by_day)
