"""DNS substrate: records, zones, resolution, and daily active scans.

The managed-TLS departure detector (paper Section 4.3) consumes *daily DNS
snapshots* of A/AAAA/NS/CNAME records for every effective second-level
domain, mirroring the paper's active-DNS dataset built from CZDS zone files.
This package provides the record/zone model, a CNAME-chasing resolver, the
daily scanning engine, and the day-over-day snapshot differ.
"""

from repro.dns.records import RecordType, ResourceRecord, RRSet
from repro.dns.zone import Zone, ZoneStore
from repro.dns.resolver import Resolver, Resolution, ResolutionStatus
from repro.dns.scanner import ActiveScanner, ScanObservation
from repro.dns.snapshots import DailySnapshot, SnapshotStore, SnapshotDiff, diff_days
from repro.dns.zonefile import extract_apexes, parse_zone, render_store, render_zone
from repro.dns.dane import (
    DaneDeployment,
    TlsaRecord,
    TlsaUsage,
    compare_staleness_windows,
)

__all__ = [
    "RecordType",
    "ResourceRecord",
    "RRSet",
    "Zone",
    "ZoneStore",
    "Resolver",
    "Resolution",
    "ResolutionStatus",
    "ActiveScanner",
    "ScanObservation",
    "DailySnapshot",
    "SnapshotStore",
    "SnapshotDiff",
    "diff_days",
    "extract_apexes",
    "parse_zone",
    "render_store",
    "render_zone",
    "DaneDeployment",
    "TlsaRecord",
    "TlsaUsage",
    "compare_staleness_windows",
]
