"""Seeded web-PKI ecosystem simulator.

Generates a synthetic decade (2013–2023) of the web PKI with the dynamics
the paper measures: domain registrations and re-registrations, HTTPS
adoption growth after Let's Encrypt, CDN managed TLS (including Cloudflare's
cruise-liner certificates and the 2019 transition to per-domain issuance),
scripted incidents (GoDaddy November 2021 breach, Let's Encrypt reason-code
reporting from July 2022), CT logging, CRL publication, and daily DNS state.

The simulator's outputs have exactly the shape of the paper's Table 3
datasets, so the measurement pipeline runs on them unchanged.
"""

from repro.ecosystem.timeline import Timeline, DEFAULT_TIMELINE
from repro.ecosystem.cas import CaProfile, CaRegistry, build_standard_cas
from repro.ecosystem.entities import HostingMode, Registrant
from repro.ecosystem.cdn import CloudflareService
from repro.ecosystem.workload import WorldConfig
from repro.ecosystem.events import GroundTruthEvent, GroundTruthEventType
from repro.ecosystem.simulator import WorldDatasets, WorldSimulator, simulate_world

__all__ = [
    "Timeline",
    "DEFAULT_TIMELINE",
    "CaProfile",
    "CaRegistry",
    "build_standard_cas",
    "HostingMode",
    "Registrant",
    "CloudflareService",
    "WorldConfig",
    "GroundTruthEvent",
    "GroundTruthEventType",
    "WorldDatasets",
    "WorldSimulator",
    "simulate_world",
]
