"""Streaming world generation: lazily-emitted worlds at 100x scale.

:class:`~repro.ecosystem.simulator.WorldSimulator` materialises every
domain, certificate, and snapshot before anything is written, which
caps ``--scale`` at 10^4-10^5 objects. This module generates the same
*kind* of world — registrations, renewals, re-registration churn,
per-hosting-mode certificate chains, Cloudflare managed-TLS enrollment
and departure, background and breach revocations, daily DNS delegation
snapshots, WHOIS visibility — as a **per-domain decomposable** process
that streams schema-shaped rows straight into the columnar data plane
(:mod:`repro.data.streamwrite`), so peak RSS is O(shard), not O(world).

Determinism and population-invariance come from labelled RNG forks
instead of one shared sequential stream:

* the day-by-day registration plan draws from
  ``split_seed(seed, "streamgen", "plan", day)``;
* every domain's entire lifecycle draws from its own
  ``split_seed(seed, "streamgen", "domain", index)`` fork, so a
  domain's fate never depends on how many other domains exist;
* cross-cutting events fork per (entity, day):
  DNS scan losses from ``("streamgen", "dns-loss", apex, day)`` and
  the scripted GoDaddy breach from ``("streamgen", "breach", serial)``.

Because the row streams depend only on the config (never on shard
count or process layout), sharded generation is reproducible: any K
produces byte-identical bundles, which the equivalence suite checks
against the materialised reference path for K in {1, 4}.

The generator is a *new* generation model sharing the simulator's
configuration, timeline, CA mix, and staleness mechanics; it is not a
draw-for-draw port of the day-loop simulator (whose cross-domain
coupling — shared heaps, batch certificates, population-dependent
sampling — is exactly what prevents O(shard) decomposition).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.stale import StalenessClass
from repro.data import schema
from repro.data.append import ExternalSorter
from repro.data.streamwrite import StreamingDatasetWriter, write_rows_dataset
from repro.ecosystem.cas import (
    CLOUDFLARE_CA_ISSUER,
    COMODO_CRUISELINER_ISSUER,
    build_standard_profiles,
)
from repro.ecosystem.cdn import CLOUDFLARE_NAMESERVERS
from repro.ecosystem.entities import HostingMode
from repro.ecosystem.simulator import _NAME_ADJECTIVES, _NAME_NOUNS, _TLD_WEIGHTS
from repro.ecosystem.workload import WorldConfig
from repro.pki.certificate import KeyUsage, lifetime_limit_on
from repro.pki.keys import KeyAlgorithm
from repro.revocation.reasons import RevocationReason
from repro.util.dates import Day
from repro.util.rng import RngStream, split_seed
from repro.whois.lifecycle import release_day as lifecycle_release_day

#: Default cap on emitted DNS observation rows; the scan-day stride is
#: chosen deterministically from the planned population to stay under it.
DEFAULT_DNS_ROW_BUDGET = 4_000_000

#: Rough share of ever-registered domains still alive during the 2022
#: scan window (used only to pick the DNS stride, never for content).
_DNS_ALIVE_FRACTION = 0.38

#: Calibration: average certificates issued per domain registration at
#: scale 1 (ties the per-world daily revocation-rate schedules to
#: per-certificate probabilities; see EXPERIMENTS.md).
_CERTS_PER_REGISTRATION = 6.0

#: Serial-number stride per domain index; also the per-domain cert cap.
_SERIALS_PER_DOMAIN = 256

#: Hard per-domain issuance guard (renewal chains are far shorter).
_MAX_CERTS_PER_DOMAIN = 250

_KU_VALUE = int((KeyUsage.DIGITAL_SIGNATURE | KeyUsage.KEY_ENCIPHERMENT).value)
_EKU_VALUES = ["serverAuth"]
_KEY_ALGORITHM = KeyAlgorithm.ECDSA_P256.value
_CLOUDFLARE_E2LD = "cloudflaressl.com"

_OTHER_REASONS = (
    RevocationReason.SUPERSEDED,
    RevocationReason.CESSATION_OF_OPERATION,
    RevocationReason.UNSPECIFIED,
    RevocationReason.AFFILIATION_CHANGED,
)
_OTHER_WEIGHTS = (0.45, 0.33, 0.17, 0.05)

_TWO_POW_64 = float(1 << 64)

_AUTOMATED_RENEWAL = (HostingMode.SELF_ACME, HostingMode.HOSTING_PLATFORM)
_AUTO_RENEW_MODES = (
    HostingMode.SELF_ACME,
    HostingMode.HOSTING_PLATFORM,
    HostingMode.REGISTRAR_MANAGED,
)

_GODADDY_CA_NAME = "GoDaddy Secure CA - G2"


def _slug(name: str) -> str:
    return "".join(c if c.isalnum() else "-" for c in name.lower()).strip("-")


def _hash_uniform(seed: int, *labels: str) -> float:
    """One cheap uniform draw from a labelled fork (no Random init)."""
    return split_seed(seed, *labels) / _TWO_POW_64


@dataclass(frozen=True)
class CaSpec:
    """Static per-CA issuance facts the generator needs."""

    name: str
    akid: str
    crl_url: str
    ocsp_url: str
    default_lifetime_days: int
    max_lifetime_days: int
    acme: bool
    registrar: bool
    share_schedule: Tuple[Tuple[Day, float], ...]

    def weight_on(self, query_day: Day) -> float:
        weight = 0.0
        for start, value in self.share_schedule:
            if query_day >= start:
                weight = value
        return weight

    def lifetime_for(self, issuance_day: Day) -> int:
        ceiling = min(self.max_lifetime_days, lifetime_limit_on(issuance_day))
        return min(self.default_lifetime_days, ceiling)


def _ca_spec(profile) -> CaSpec:
    slug = _slug(profile.name)
    return CaSpec(
        name=profile.name,
        akid=f"sg-akid:{slug}",
        crl_url=f"http://crl.{slug}.example/latest.crl",
        ocsp_url=f"http://ocsp.{slug}.example",
        default_lifetime_days=profile.default_lifetime_days,
        max_lifetime_days=profile.max_lifetime_days,
        acme=profile.acme_automated,
        registrar=profile.name == _GODADDY_CA_NAME,
        share_schedule=profile.share_schedule,
    )


_CF_MANAGED_SPECS = {
    "cruiseliner": CaSpec(
        name=COMODO_CRUISELINER_ISSUER,
        akid=f"sg-akid:{_slug(COMODO_CRUISELINER_ISSUER)}",
        crl_url=f"http://crl.{_slug(COMODO_CRUISELINER_ISSUER)}.example/latest.crl",
        ocsp_url=f"http://ocsp.{_slug(COMODO_CRUISELINER_ISSUER)}.example",
        default_lifetime_days=365,
        max_lifetime_days=825,
        acme=False,
        registrar=False,
        share_schedule=(),
    ),
    "cloudflare": CaSpec(
        name=CLOUDFLARE_CA_ISSUER,
        akid=f"sg-akid:{_slug(CLOUDFLARE_CA_ISSUER)}",
        crl_url=f"http://crl.{_slug(CLOUDFLARE_CA_ISSUER)}.example/latest.crl",
        ocsp_url=f"http://ocsp.{_slug(CLOUDFLARE_CA_ISSUER)}.example",
        default_lifetime_days=365,
        max_lifetime_days=398,
        acme=False,
        registrar=False,
        share_schedule=(),
    ),
}


class GenPlan:
    """The deterministic registration plan: day buckets + prefix sums.

    Every worker rebuilds the identical plan from the config alone (one
    labelled Poisson fork per day), so shard workers agree on the
    global domain indexing without any parent-to-worker data transfer.
    """

    def __init__(self, config: WorldConfig, dns_row_budget: int) -> None:
        self.config = config
        self.timeline = config.timeline
        start = self.timeline.simulation_start
        end = self.timeline.simulation_end
        self.start_day = start
        counts: List[int] = []
        for current in range(start, end + 1):
            rate = config.registration_rate(current)
            if rate <= 0:
                counts.append(0)
                continue
            stream = RngStream(config.seed, "streamgen", "plan", str(current))
            counts.append(stream.poisson(rate))
        cumulative = [0]
        for count in counts:
            cumulative.append(cumulative[-1] + count)
        self._cumulative = cumulative
        self.total_domains = cumulative[-1]
        self.dns_row_budget = dns_row_budget
        self.dns_stride = self._choose_dns_stride()
        scan_start = self.timeline.dns_scan_start
        scan_end = self.timeline.dns_scan_end
        self.dns_days: Tuple[Day, ...] = tuple(
            current
            for current in range(scan_start, scan_end + 1)
            if (current - scan_start) % self.dns_stride == 0
        )

    def _choose_dns_stride(self) -> int:
        window = self.timeline.dns_scan_end - self.timeline.dns_scan_start + 1
        expected_rows = self.total_domains * _DNS_ALIVE_FRACTION * window
        if expected_rows <= self.dns_row_budget:
            return 1
        return max(1, -(-int(expected_rows) // self.dns_row_budget))

    def registration_day(self, index: int) -> Day:
        """The planned registration day of domain *index*."""
        if not (0 <= index < self.total_domains):
            raise IndexError(index)
        bucket = bisect_right(self._cumulative, index) - 1
        return self.start_day + bucket


def shard_ranges(total: int, shards: int) -> List[Tuple[int, int]]:
    """K contiguous near-equal [lo, hi) index ranges covering *total*."""
    if shards <= 0:
        raise ValueError("shards must be positive")
    base, extra = divmod(total, shards)
    ranges = []
    lo = 0
    for shard in range(shards):
        hi = lo + base + (1 if shard < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


class GenContext:
    """Everything per-domain emission needs, rebuildable from config."""

    def __init__(self, config: WorldConfig, dns_row_budget: Optional[int] = None) -> None:
        self.config = config
        self.timeline = config.timeline
        self.plan = GenPlan(config, dns_row_budget or DEFAULT_DNS_ROW_BUDGET)
        self.seed = config.seed
        specs = [_ca_spec(profile) for profile in build_standard_profiles()]
        self.pool_cas: Tuple[CaSpec, ...] = tuple(specs)
        self.acme_cas: Tuple[CaSpec, ...] = tuple(s for s in specs if s.acme)
        self.registrar_ca: CaSpec = next(s for s in specs if s.registrar)
        self.cruiseliner_ca = _CF_MANAGED_SPECS["cruiseliner"]
        self.cloudflare_ca = _CF_MANAGED_SPECS["cloudflare"]
        self._rate_eras = self._build_rate_eras()
        self._era_starts = [start for start, _, _ in self._rate_eras]

    def _build_rate_eras(self) -> List[Tuple[Day, float, float]]:
        """(era start, p_kc per cert, p_other per cert) breakpoints.

        Both probabilities are ratios of same-day *world* rates (key
        compromises or other revocations per day over registrations per
        day), normalised by the calibration constant — so they are
        invariant under :meth:`WorldConfig.scaled` by construction.
        """
        config = self.config
        boundaries = sorted(
            {start for start, _ in config.registration_rate_schedule}
            | {start for start, _ in config.key_compromise_rate_schedule}
            | {start for start, _ in config.other_revocation_rate_schedule}
        )
        eras = []
        for start in boundaries:
            registrations = config.registration_rate(start)
            if registrations <= 0:
                eras.append((start, 0.0, 0.0))
                continue
            per_cert = registrations * _CERTS_PER_REGISTRATION
            p_kc = min(0.5, config.key_compromise_rate(start) / per_cert)
            p_other = min(0.5, config.other_revocation_rate(start) / per_cert)
            eras.append((start, p_kc, p_other))
        return eras

    def revocation_probabilities(self, query_day: Day) -> Tuple[float, float]:
        position = bisect_right(self._era_starts, query_day) - 1
        if position < 0:
            return 0.0, 0.0
        _, p_kc, p_other = self._rate_eras[position]
        return p_kc, p_other

    def dns_days_between(self, lo: Day, hi: Day) -> Sequence[Day]:
        days = self.plan.dns_days
        left = bisect_left(days, lo)
        right = bisect_right(days, hi)
        return days[left:right]


def _stable_ip(name: str, generation: int) -> str:
    # Same digest fold as the simulator: salted str hashing would break
    # cross-process determinism.
    digest = 17
    for ch in name:
        digest = (digest * 31 + ord(ch)) & 0xFFFFFFFF
    digest = (digest + generation * 7919) & 0xFFFFFFFF
    return f"198.51.{digest % 250}.{(digest // 250) % 250}"


def _domain_name(rng: RngStream, index: int) -> str:
    adjective = rng.choice(_NAME_ADJECTIVES)
    noun = rng.choice(_NAME_NOUNS)
    tld = rng.weighted_choice(
        [t for t, _ in _TLD_WEIGHTS], [w for _, w in _TLD_WEIGHTS]
    )
    return f"{adjective}{noun}{index + 1}.{tld}"


@dataclass
class _Phase:
    """One hosting phase of one registration span (inclusive days)."""

    start: Day
    end: Day
    mode: HostingMode
    ns_base: Optional[str]  # None = Cloudflare delegation
    issues_certs: bool
    generation: int


class _DomainEmitter:
    """Generates one domain's full lifetime of rows from its own fork."""

    __slots__ = (
        "ctx", "cfg", "tl", "index", "rng", "name", "www", "e2lds",
        "serial_base", "seq", "certs", "revocations", "whois", "dns",
    )

    def __init__(self, ctx: GenContext, index: int) -> None:
        self.ctx = ctx
        self.cfg = ctx.config
        self.tl = ctx.timeline
        self.index = index
        self.rng = RngStream(ctx.seed, "streamgen", "domain", str(index))
        self.name = _domain_name(self.rng, index)
        self.www = f"www.{self.name}"
        self.e2lds = [self.name]
        self.serial_base = index * _SERIALS_PER_DOMAIN
        self.seq = 0
        self.certs: List[Tuple] = []
        self.revocations: List[Tuple[Day, Tuple]] = []
        self.whois: List[Tuple] = []
        self.dns: List[Tuple] = []

    # -- span / phase structure ------------------------------------------

    def run(self) -> None:
        reg_day = self.ctx.plan.registration_day(self.index)
        span_no = 0
        start: Optional[Day] = reg_day
        while start is not None and start <= self.tl.simulation_end:
            start = self._emit_span(start, span_no)
            span_no += 1
        # Revocations sorted by day within the domain keeps the global
        # stream domain-major/day-minor, a stable canonical order.
        self.revocations.sort(key=lambda item: (item[0], item[1][2]))

    def _emit_span(self, start: Day, span_no: int) -> Optional[Day]:
        cfg, tl, rng = self.cfg, self.tl, self.rng
        expiry = start + cfg.registration_term_days
        while expiry <= tl.simulation_end and rng.bernoulli(cfg.renew_probability):
            expiry += cfg.registration_term_days
        lapsed = expiry <= tl.simulation_end
        alive_end = min(expiry, tl.simulation_end)
        deleted_on = lifecycle_release_day(expiry) if lapsed else None

        if start <= tl.whois_end and (
            deleted_on is None or deleted_on >= tl.whois_start
        ):
            self.whois.append((self.name, start))

        mode = self._choose_hosting(start)
        tls = rng.bernoulli(cfg.tls_adoption(start))
        for phase in self._phases(start, alive_end, span_no, mode, tls):
            if tls and phase.issues_certs:
                if phase.ns_base is None:
                    self._emit_managed_chain(phase)
                else:
                    self._emit_self_chain(phase)
            self._emit_dns(phase)

        if not lapsed:
            return None
        release = deleted_on if deleted_on is not None else expiry
        if not rng.bernoulli(cfg.re_registration_probability):
            return None
        if rng.bernoulli(cfg.drop_catch_probability):
            next_start = release
        else:
            next_start = release + rng.bounded_pareto_days(
                1, cfg.re_registration_max_delay
            )
        return next_start if next_start <= tl.simulation_end else None

    def _choose_hosting(self, current: Day) -> HostingMode:
        mix = self.cfg.hosting_mix(current)
        modes = list(mix)
        return self.rng.weighted_choice(modes, [mix[m] for m in modes])

    def _phases(
        self, start: Day, alive_end: Day, span_no: int, mode: HostingMode, tls: bool
    ) -> List[_Phase]:
        cfg, rng = self.cfg, self.rng
        generation = span_no * 4
        default_base = f"dns-{1 + (sum(ord(c) for c in self.name) % 12)}.net"
        if not tls or mode is not HostingMode.CLOUDFLARE_MANAGED:
            first_base = default_base
            if not tls:
                # No TLS: hosting churn is invisible to every dataset
                # except DNS, where the delegation simply stays put.
                return [_Phase(start, alive_end, mode, first_base, False, generation)]
            enroll_gap = max(1, int(rng.expovariate(
                max(cfg.cdn_enrollment_rate_per_1k, 1e-9) / 1000.0
            )))
            enroll_day = start + enroll_gap
            if enroll_day >= alive_end:
                return [_Phase(start, alive_end, mode, first_base, True, generation)]
            phases = [_Phase(start, enroll_day - 1, mode, first_base, True, generation)]
            phases.extend(
                self._cloudflare_phases(enroll_day, alive_end, generation + 1)
            )
            return phases
        return self._cloudflare_phases(start, alive_end, generation)

    def _cloudflare_phases(
        self, start: Day, alive_end: Day, generation: int
    ) -> List[_Phase]:
        """A managed-TLS phase plus, usually, the departure after it."""
        cfg, rng = self.cfg, self.rng
        if rng.bernoulli(cfg.cdn_early_churn_share):
            departure_gap = rng.randint(7, 90)  # front-loaded trial churn
        else:
            departure_gap = max(1, int(rng.expovariate(
                max(cfg.cdn_departure_rate_per_1k, 1e-9) / 1000.0
            )))
        departure_day = start + departure_gap
        cf_phase = _Phase(
            start, min(departure_day - 1, alive_end),
            HostingMode.CLOUDFLARE_MANAGED, None, True, generation,
        )
        if departure_day > alive_end:
            return [cf_phase]
        new_mode = (
            HostingMode.SELF_ACME
            if rng.bernoulli(0.6)
            else HostingMode.SELF_MANUAL
        )
        reissue = rng.bernoulli(cfg.post_departure_reissue_probability)
        new_base = f"hosting-{rng.randint(1, 40)}.net"
        return [
            cf_phase,
            _Phase(
                departure_day, alive_end, new_mode, new_base, reissue,
                generation + 1,
            ),
        ]

    # -- certificates -----------------------------------------------------

    def _pick_ca(self, mode: HostingMode, current: Day) -> Optional[CaSpec]:
        rng = self.rng
        if mode is HostingMode.SELF_ACME:
            pool: Sequence[CaSpec] = self.ctx.acme_cas
        elif mode is HostingMode.REGISTRAR_MANAGED:
            return self.ctx.registrar_ca
        elif mode is HostingMode.HOSTING_PLATFORM:
            cpanel = next(s for s in self.ctx.acme_cas if s.name.startswith("cPanel"))
            if cpanel.weight_on(current) > 0:
                return cpanel
            pool = self.ctx.pool_cas
        else:
            pool = self.ctx.pool_cas
        weights = [spec.weight_on(current) for spec in pool]
        if not any(weight > 0 for weight in weights):
            return None
        return rng.weighted_choice(pool, weights)

    def _emit_self_chain(self, phase: _Phase) -> None:
        cfg, rng = self.cfg, self.rng
        owner = (
            f"host:{phase.mode.value}"
            if phase.mode.is_managed_tls
            else f"sg-reg-{self.index}-{phase.generation // 4}"
        )
        current = phase.start
        while current <= phase.end and self.seq < _MAX_CERTS_PER_DOMAIN:
            ca = self._pick_ca(phase.mode, current)
            if ca is None:
                return  # e.g. ACME hosting before Let's Encrypt existed
            lifetime = ca.lifetime_for(current)
            self._emit_cert(
                ca, current, lifetime, owner,
                subject_cn=self.name,
                sans=[self.name, self.www],
                e2lds=self.e2lds,
            )
            if phase.mode in _AUTOMATED_RENEWAL:
                current += max(1, (lifetime * 2) // 3)
            elif phase.mode is HostingMode.REGISTRAR_MANAGED:
                current += lifetime
            else:
                current += lifetime
                if current > phase.end:
                    return
                if not rng.bernoulli(cfg.manual_renew_probability):
                    return

    def _emit_managed_chain(self, phase: _Phase) -> None:
        rng, tl = self.rng, self.tl
        sni_label = f"sni{100000 + self.index % 800000}.cloudflaressl.com"
        e2lds = sorted({self.name, _CLOUDFLARE_E2LD})
        current = phase.start
        while current <= phase.end and self.seq < _MAX_CERTS_PER_DOMAIN:
            if rng.bernoulli(tl.cruiseliner_share(current)):
                ca = self.ctx.cruiseliner_ca
            else:
                ca = self.ctx.cloudflare_ca
            lifetime = ca.lifetime_for(current)
            self._emit_cert(
                ca, current, lifetime, "cdn:cloudflare",
                subject_cn=sni_label,
                sans=[sni_label, self.name, self.www],
                e2lds=e2lds,
            )
            # The CDN reissues well before expiry (~150 days remaining).
            current += max(30, lifetime - 150)

    def _emit_cert(
        self,
        ca: CaSpec,
        issuance_day: Day,
        lifetime: int,
        owner: str,
        subject_cn: str,
        sans: List[str],
        e2lds: List[str],
    ) -> None:
        serial = self.serial_base + self.seq
        self.seq += 1
        not_after = issuance_day + lifetime
        self.certs.append((
            subject_cn,
            sans,
            serial,  # key_id: unique per certificate, like KeyStore's counter
            _KEY_ALGORITHM,
            owner,
            0,
            _KU_VALUE,
            _EKU_VALUES,
            ca.name,
            ca.akid,
            ca.crl_url,
            ca.ocsp_url,
            "dv",
            serial,
            0,
            [],
            issuance_day,
            not_after,
            e2lds,
        ))
        self._maybe_revoke(ca, serial, owner, issuance_day, not_after, lifetime)

    # -- revocations ------------------------------------------------------

    def _maybe_revoke(
        self,
        ca: CaSpec,
        serial: int,
        owner: str,
        issuance_day: Day,
        not_after: Day,
        lifetime: int,
    ) -> None:
        cfg, tl, rng = self.cfg, self.tl, self.rng
        p_kc, p_other = self.ctx.revocation_probabilities(issuance_day)
        candidate: Optional[Tuple[Day, RevocationReason]] = None
        if not owner.startswith("cdn:") and rng.bernoulli(p_kc):
            delay = int(rng.expovariate(1.0 / cfg.compromise_delay_mean_days))
            lag = rng.randint(0, cfg.revocation_lag_max_days)
            when = issuance_day + delay + lag
            if when <= min(not_after, tl.simulation_end):
                candidate = (when, RevocationReason.KEY_COMPROMISE)
        elif rng.bernoulli(p_other):
            when = issuance_day + rng.randint(1, max(1, lifetime - 1))
            if when <= tl.simulation_end:
                reason = rng.weighted_choice(_OTHER_REASONS, _OTHER_WEIGHTS)
                candidate = (when, reason)

        breach = self._breach_revocation(ca, serial, issuance_day, not_after)
        if breach is not None and (candidate is None or breach[0] < candidate[0]):
            candidate = breach
        if candidate is None:
            return
        when, reason = candidate
        reason = self._reported_reason(ca, when, reason)
        self.revocations.append(
            (when, (ca.name, ca.akid, serial, when, reason.name))
        )

    def _breach_revocation(
        self, ca: CaSpec, serial: int, issuance_day: Day, not_after: Day
    ) -> Optional[Tuple[Day, RevocationReason]]:
        """The scripted GoDaddy November-2021 breach, as per-cert forks."""
        tl = self.tl
        if not ca.registrar:
            return None
        disclosure = tl.godaddy_breach_disclosure
        if not (tl.godaddy_breach_exposure_start <= issuance_day <= disclosure):
            return None
        if not_after < disclosure:
            return None
        exposure = _hash_uniform(self.ctx.seed, "streamgen", "breach", str(serial))
        if exposure >= self.cfg.godaddy_breach_exposure_fraction:
            return None
        window = tl.godaddy_breach_revocation_end - disclosure + 1
        offset = split_seed(
            self.ctx.seed, "streamgen", "breach-day", str(serial)
        ) % window
        when = disclosure + offset
        if when > not_after:
            return None
        return when, RevocationReason.KEY_COMPROMISE

    def _reported_reason(
        self, ca: CaSpec, when: Day, reason: RevocationReason
    ) -> RevocationReason:
        # Let's Encrypt published generic reasons before July 2022.
        if (
            reason is RevocationReason.KEY_COMPROMISE
            and ca.name.startswith("Let's Encrypt")
            and when < self.tl.lets_encrypt_kc_reporting_start
        ):
            return RevocationReason.SUPERSEDED
        return reason

    # -- DNS ---------------------------------------------------------------

    def _emit_dns(self, phase: _Phase) -> None:
        tl = self.tl
        if phase.end < tl.dns_scan_start or phase.start > tl.dns_scan_end:
            return
        loss_rate = self.cfg.dns_scan_loss_rate
        if phase.ns_base is None:
            records = {
                "A": ["104.16.1.1"],
                "NS": sorted(CLOUDFLARE_NAMESERVERS),
            }
        else:
            records = {
                "A": [_stable_ip(self.name, phase.generation)],
                "NS": sorted(
                    (f"ns1.{phase.ns_base}", f"ns2.{phase.ns_base}")
                ),
            }
        seed = self.ctx.seed
        for scan_day in self.ctx.dns_days_between(phase.start, phase.end):
            if loss_rate > 0 and (
                _hash_uniform(seed, "streamgen", "dns-loss", self.name, str(scan_day))
                < loss_rate
            ):
                continue  # transient lookup failure: absent from the day
            self.dns.append((scan_day, self.name, records))


def emit_domain(ctx: GenContext, index: int) -> _DomainEmitter:
    """Generate all rows for domain *index* (its own RNG fork)."""
    emitter = _DomainEmitter(ctx, index)
    emitter.run()
    return emitter


# ---------------------------------------------------------------------------
# shard iteration
# ---------------------------------------------------------------------------

#: Rows per emitted batch (bounds queue payloads and writer call rate).
DEFAULT_BATCH_ROWS = 2048

#: Domains between ``on_progress`` flushes in :func:`shard_rows` — keeps
#: the live-progress cost amortised at large scales.
PROGRESS_EVERY_DOMAINS = 64

#: Callback signature: ``on_progress(domains_delta, spill_bytes_delta)``.
ProgressCallback = Callable[[int, int], None]


def shard_rows(
    ctx: GenContext,
    lo: int,
    hi: int,
    dns_sorter: ExternalSorter,
    batch_rows: int = DEFAULT_BATCH_ROWS,
    on_progress: Optional[ProgressCallback] = None,
) -> Iterator[Tuple[str, List[Tuple]]]:
    """Stream one shard's certs/revocations/whois batches, in canonical
    (domain-index-major) order; DNS rows go into *dns_sorter* for the
    global (day, apex) sort.

    *on_progress*, when given, is invoked every
    :data:`PROGRESS_EVERY_DOMAINS` domains (and at shard end) with the
    domains emitted and sorter bytes spilled since the previous call —
    the hook the live timeline (and the genpool's cross-process progress
    relay) hangs off.
    """
    batches: Dict[str, List[Tuple]] = {
        schema.CERTS_TABLE: [],
        schema.REVOCATIONS_TABLE: [],
        schema.WHOIS_TABLE: [],
    }
    pending_domains = 0
    reported_spill = dns_sorter.spilled_bytes
    for index in range(lo, hi):
        emitter = emit_domain(ctx, index)
        batches[schema.CERTS_TABLE].extend(emitter.certs)
        batches[schema.REVOCATIONS_TABLE].extend(
            row for _, row in emitter.revocations
        )
        batches[schema.WHOIS_TABLE].extend(emitter.whois)
        for row in emitter.dns:
            dns_sorter.add(row)
        pending_domains += 1
        if on_progress is not None and pending_domains >= PROGRESS_EVERY_DOMAINS:
            on_progress(pending_domains, dns_sorter.spilled_bytes - reported_spill)
            pending_domains = 0
            reported_spill = dns_sorter.spilled_bytes
        for table in (schema.CERTS_TABLE, schema.REVOCATIONS_TABLE, schema.WHOIS_TABLE):
            if len(batches[table]) >= batch_rows:
                yield table, batches[table]
                batches[table] = []
    if on_progress is not None and (
        pending_domains or dns_sorter.spilled_bytes != reported_spill
    ):
        on_progress(pending_domains, dns_sorter.spilled_bytes - reported_spill)
    for table in (schema.CERTS_TABLE, schema.REVOCATIONS_TABLE, schema.WHOIS_TABLE):
        if batches[table]:
            yield table, batches[table]


def _batched(rows: Iterator[Tuple], batch_rows: int) -> Iterator[List[Tuple]]:
    batch: List[Tuple] = []
    for row in rows:
        batch.append(row)
        if len(batch) >= batch_rows:
            yield batch
            batch = []
    if batch:
        yield batch


def stream_rows(
    ctx: GenContext,
    shards: int = 1,
    batch_rows: int = DEFAULT_BATCH_ROWS,
) -> Iterator[Tuple[str, List[Tuple]]]:
    """In-process row stream: all shards' lifecycle rows (in shard
    order), then globally (day, apex)-merged DNS batches.

    Shard count never changes the emitted rows — only which worker
    computes them — so any K yields an identical stream.
    """
    from repro.obs import phase_progress

    domains_p = phase_progress("gen_domains")
    spill_p = phase_progress("gen_spill_bytes")
    shards_p = phase_progress("gen_shards")
    domains_p.set_total(ctx.plan.total_domains)
    shards_p.set_total(shards)

    def note(domains_delta: int, spill_delta: int) -> None:
        domains_p.add(domains_delta)
        spill_p.add(spill_delta)

    sorters: List[ExternalSorter] = []
    for lo, hi in shard_ranges(ctx.plan.total_domains, shards):
        sorter = ExternalSorter()
        yield from shard_rows(ctx, lo, hi, sorter, batch_rows, on_progress=note)
        sorters.append(sorter)
        shards_p.add(1)
    merged = heapq.merge(*[sorter.sorted_iter() for sorter in sorters])
    for batch in _batched(merged, batch_rows):
        yield schema.DNS_TABLE, batch


def world_windows(config: WorldConfig) -> Dict[StalenessClass, Tuple[Day, Day]]:
    """The observation windows the bundle manifest carries (same mapping
    as ``WorldDatasets.to_bundle``)."""
    timeline = config.timeline
    return {
        StalenessClass.REVOKED_ALL: (
            timeline.revocation_cutoff, timeline.crl_collection_end,
        ),
        StalenessClass.KEY_COMPROMISE: (
            timeline.revocation_cutoff, timeline.crl_collection_end,
        ),
        StalenessClass.REGISTRANT_CHANGE: (
            timeline.registrant_window_start, timeline.registrant_window_end,
        ),
        StalenessClass.MANAGED_TLS_DEPARTURE: (
            timeline.dns_scan_start, timeline.dns_scan_end,
        ),
    }


# ---------------------------------------------------------------------------
# save paths
# ---------------------------------------------------------------------------


def save_streamed(
    config: WorldConfig,
    directory: str,
    shards: int = 1,
    dns_row_budget: Optional[int] = None,
    use_processes: Optional[bool] = None,
    rows_per_segment: Optional[int] = None,
) -> Dict[str, int]:
    """Stream-generate a world straight into a columnar bundle.

    Peak RSS is O(shard + segment): per-domain state is discarded after
    emission, DNS rows and index entries live in spill files, and table
    segments roll every 64Ki rows. Returns per-table row counts.
    """
    from repro.data.dataset import DEFAULT_ROWS_PER_SEGMENT
    from repro.obs import get_registry, names, phase_progress, span

    if use_processes is None:
        use_processes = shards > 1
    ctx = GenContext(config, dns_row_budget)
    registry = get_registry()
    registry.gauge(names.GEN_SHARDS, names.GEN_SHARDS_HELP).set(shards)
    registry.gauge(names.GEN_DNS_STRIDE, names.GEN_DNS_STRIDE_HELP).set(
        ctx.plan.dns_stride
    )
    rows_c = registry.counter(names.GEN_ROWS, names.GEN_ROWS_HELP, labels=("table",))
    domains_c = registry.counter(names.GEN_DOMAINS, names.GEN_DOMAINS_HELP)
    # Row totals are unknown ahead of time (0 = indeterminate); done
    # still advances per batch so the timeline shows per-table rates.
    row_progress = {
        schema.CERTS_TABLE: phase_progress("gen_rows_certs"),
        schema.REVOCATIONS_TABLE: phase_progress("gen_rows_revocations"),
        schema.WHOIS_TABLE: phase_progress("gen_rows_whois"),
        schema.DNS_TABLE: phase_progress("gen_rows_dns"),
    }

    writer = StreamingDatasetWriter(
        directory,
        world_windows(config),
        rows_per_segment=rows_per_segment or DEFAULT_ROWS_PER_SEGMENT,
    )
    try:
        with span("gen_stream", shards=shards, domains=ctx.plan.total_domains):
            if use_processes:
                from repro.parallel.genpool import stream_rows_parallel

                batches = stream_rows_parallel(config, shards, dns_row_budget)
            else:
                batches = stream_rows(ctx, shards)
            for table, rows in batches:
                writer.extend(table, rows)
                rows_c.inc(len(rows), table=table)
                row_progress[table].add(len(rows))
        domains_c.inc(ctx.plan.total_domains)
        with span("gen_finish"):
            counts = writer.finish()
    except BaseException:
        writer.close()
        raise
    return counts


def save_materialized(
    config: WorldConfig,
    directory: str,
    dns_row_budget: Optional[int] = None,
    rows_per_segment: Optional[int] = None,
) -> Dict[str, int]:
    """Reference path: collect every row in memory, write through the
    batch ``SegmentWriter`` machinery. Byte-identical to
    :func:`save_streamed` for the same config — the equivalence suite
    depends on it, and it is O(world) memory by design."""
    from repro.data.dataset import DEFAULT_ROWS_PER_SEGMENT

    ctx = GenContext(config, dns_row_budget)
    rows_by_table: Dict[str, List[Tuple]] = {
        name: [] for name in schema.TABLE_NAMES
    }
    for table, rows in stream_rows(ctx, shards=1):
        rows_by_table[table].extend(rows)
    return write_rows_dataset(
        rows_by_table,
        world_windows(config),
        directory,
        rows_per_segment=rows_per_segment or DEFAULT_ROWS_PER_SEGMENT,
    )
