"""Concrete CA profiles matching the issuers named in the paper.

Each profile captures a CA's issuance behaviour: default/maximum lifetimes
(Let's Encrypt, cPanel, and Google Trust Services self-impose 90 days —
Section 6), whether it is a managed-TLS backend, its market share over the
eras of the simulation, and its CRL fetch failure profile (Table 7 /
Appendix B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.pki.ca import CertificateAuthority, IssuancePolicy
from repro.pki.keys import KeyStore
from repro.revocation.fetcher import FailureProfile
from repro.revocation.publisher import CaCrlPublisher, DisclosureList
from repro.util.dates import Day, day


@dataclass(frozen=True)
class CaProfile:
    """Static description of one CA used to instantiate the simulation."""

    name: str
    operator: str
    default_lifetime_days: int
    max_lifetime_days: int
    #: (era start day, relative issuance weight) pairs; weight 0 = inactive.
    share_schedule: Tuple[Tuple[Day, float], ...]
    acme_automated: bool = False
    crl_failure: FailureProfile = field(default_factory=FailureProfile)
    #: Disclosed CRL endpoints (big CAs run many; Appendix B / Table 7).
    crl_endpoints: int = 1

    def weight_on(self, query_day: Day) -> float:
        weight = 0.0
        for start, value in self.share_schedule:
            if query_day >= start:
                weight = value
        return weight


def build_standard_profiles() -> List[CaProfile]:
    """The issuer mix behind Figures 4 and 5b.

    Weights are relative within the self-managed issuance pool; the
    Cloudflare-managed pool is handled by :mod:`repro.ecosystem.cdn` with its
    own issuer timeline (COMODO cruise-liners, then Cloudflare's own CA).
    """
    y2013 = day(2013, 3, 1)
    return [
        CaProfile(
            name="Let's Encrypt X3",
            crl_endpoints=8,
            operator="ISRG (Let's Encrypt)",
            default_lifetime_days=90,
            max_lifetime_days=90,
            share_schedule=(
                (day(2015, 12, 3), 1.0),
                (day(2017, 6, 1), 4.0),
                (day(2019, 1, 1), 7.0),
            ),
            acme_automated=True,
        ),
        CaProfile(
            name="cPanel, Inc. CA",
            crl_endpoints=4,
            operator="cPanel",
            default_lifetime_days=90,
            max_lifetime_days=90,
            share_schedule=((day(2016, 6, 1), 1.2),),
            acme_automated=True,
        ),
        CaProfile(
            name="Google Trust Services CA 1C3",
            crl_endpoints=4,
            operator="GTS",
            default_lifetime_days=90,
            max_lifetime_days=90,
            share_schedule=((day(2020, 3, 1), 0.8),),
            acme_automated=True,
        ),
        CaProfile(
            name="DigiCert SHA2 Secure Server CA",
            crl_endpoints=30,
            operator="DigiCert",
            default_lifetime_days=365,
            max_lifetime_days=825,
            share_schedule=((y2013, 2.0), (day(2020, 9, 1), 1.5)),
            crl_failure=FailureProfile(rate_limit_probability=0.0127),
        ),
        CaProfile(
            name="Sectigo RSA DV CA",
            crl_endpoints=40,
            operator="Sectigo",
            default_lifetime_days=365,
            max_lifetime_days=825,
            share_schedule=((y2013, 2.0),),
            crl_failure=FailureProfile(rate_limit_probability=0.0036),
        ),
        CaProfile(
            # GoDaddy sells one-year certificates padded with the renewal
            # month (the same 366+31+1 rationale behind the 398-day limit).
            name="GoDaddy Secure CA - G2",
            crl_endpoints=6,
            operator="GoDaddy",
            default_lifetime_days=395,
            max_lifetime_days=825,
            share_schedule=((y2013, 1.5),),
        ),
        CaProfile(
            name="Entrust CA - L1K",
            crl_endpoints=3,
            operator="Entrust",
            default_lifetime_days=365,
            max_lifetime_days=825,
            share_schedule=((y2013, 0.6),),
            crl_failure=FailureProfile(rate_limit_probability=0.0154),
        ),
        CaProfile(
            name="GlobalSign DV CA",
            crl_endpoints=13,
            operator="GlobalSign",
            default_lifetime_days=365,
            max_lifetime_days=825,
            share_schedule=((y2013, 0.5),),
            crl_failure=FailureProfile(rate_limit_probability=0.0259),
        ),
        # Table 7's zero-coverage rows: trusted CAs whose CRL endpoints block
        # automated scraping entirely.
        CaProfile(
            name="Microsoft RSA TLS CA",
            operator="Microsoft",
            default_lifetime_days=365,
            max_lifetime_days=398,
            share_schedule=((day(2020, 9, 1), 0.3),),
            crl_failure=FailureProfile(blocked=True),
        ),
        CaProfile(
            name="Visa eCommerce CA",
            operator="Visa",
            default_lifetime_days=365,
            max_lifetime_days=825,
            share_schedule=((y2013, 0.05),),
            crl_failure=FailureProfile(blocked=True),
        ),
    ]


#: Issuer names used by the Cloudflare managed-TLS service over time.
COMODO_CRUISELINER_ISSUER = "COMODO ECC DV Secure Server CA 2"
CLOUDFLARE_CA_ISSUER = "CloudFlare ECC CA-2"


def cloudflare_profiles() -> List[CaProfile]:
    """The two issuers of Cloudflare-managed certificates (Figure 5b)."""
    return [
        CaProfile(
            name=COMODO_CRUISELINER_ISSUER,
            operator="Sectigo",  # COMODO became Sectigo
            default_lifetime_days=365,
            max_lifetime_days=825,
            share_schedule=((day(2014, 10, 1), 0.0),),  # driven by the CDN, not the pool
        ),
        CaProfile(
            name=CLOUDFLARE_CA_ISSUER,
            operator="Cloudflare",
            default_lifetime_days=365,
            max_lifetime_days=398,
            share_schedule=((day(2019, 4, 1), 0.0),),
        ),
    ]


class CaRegistry:
    """Instantiated CAs with their CRL publishers, indexed by name."""

    def __init__(self, key_store: KeyStore, established: Day = 0) -> None:
        self._key_store = key_store
        self._established = established
        self._cas: Dict[str, CertificateAuthority] = {}
        self._publishers: Dict[str, CaCrlPublisher] = {}
        self._profiles: Dict[str, CaProfile] = {}
        self.disclosure = DisclosureList()

    def add_profile(self, profile: CaProfile) -> CertificateAuthority:
        if profile.name in self._cas:
            raise ValueError(f"CA {profile.name} already registered")
        policy = IssuancePolicy(
            max_lifetime_days=profile.max_lifetime_days,
            default_lifetime_days=profile.default_lifetime_days,
            require_validation=False,  # the simulator validates implicitly
        )
        ca = CertificateAuthority(
            name=profile.name,
            key_store=self._key_store,
            policy=policy,
            operator=profile.operator,
            established=self._established,
        )
        publisher = CaCrlPublisher(ca)
        self._cas[profile.name] = ca
        self._publishers[profile.name] = publisher
        self._profiles[profile.name] = profile
        self.disclosure.disclose(publisher, endpoints=profile.crl_endpoints)
        return ca

    def ca(self, name: str) -> CertificateAuthority:
        return self._cas[name]

    def publisher(self, name: str) -> CaCrlPublisher:
        return self._publishers[name]

    def publisher_for_authority_key(self, authority_key_id: str) -> Optional[CaCrlPublisher]:
        for ca_name, ca in self._cas.items():
            if ca.authority_key_id == authority_key_id:
                return self._publishers[ca_name]
        return None

    def profile(self, name: str) -> CaProfile:
        return self._profiles[name]

    def all_names(self) -> List[str]:
        return sorted(self._cas)

    def failure_profiles(self) -> Dict[str, FailureProfile]:
        """Operator -> CRL fetch failure profile (for the fetcher).

        Several issuing CAs can share one operator (COMODO's cruise-liner
        issuer belongs to Sectigo); the most failure-prone profile wins so a
        default-profile sibling cannot mask a configured one.
        """
        profiles: Dict[str, FailureProfile] = {}
        for name, profile in self._profiles.items():
            operator = self._cas[name].operator
            existing = profiles.get(operator)
            candidate = profile.crl_failure
            if existing is None or _failure_severity(candidate) > _failure_severity(existing):
                profiles[operator] = candidate
        return profiles

    def pick_pool_ca(self, query_day: Day, rng) -> Optional[CertificateAuthority]:
        """Weighted choice among self-managed-pool CAs active on a day."""
        names: List[str] = []
        weights: List[float] = []
        for name, profile in self._profiles.items():
            weight = profile.weight_on(query_day)
            if weight > 0:
                names.append(name)
                weights.append(weight)
        if not names:
            return None
        return self._cas[rng.weighted_choice(names, weights)]

    def pick_acme_ca(self, query_day: Day, rng) -> Optional[CertificateAuthority]:
        """Weighted choice restricted to ACME-automated CAs."""
        names: List[str] = []
        weights: List[float] = []
        for name, profile in self._profiles.items():
            weight = profile.weight_on(query_day)
            if weight > 0 and profile.acme_automated:
                names.append(name)
                weights.append(weight)
        if not names:
            return None
        return self._cas[rng.weighted_choice(names, weights)]


def _failure_severity(profile: FailureProfile) -> float:
    if profile.blocked:
        return 2.0
    return profile.rate_limit_probability + profile.parse_error_probability


def build_standard_cas(key_store: KeyStore, established: Day = 0) -> CaRegistry:
    """Instantiate the full standard CA set (pool + Cloudflare issuers)."""
    registry = CaRegistry(key_store, established)
    for profile in build_standard_profiles() + cloudflare_profiles():
        registry.add_profile(profile)
    return registry
