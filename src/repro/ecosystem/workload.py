"""World-simulation configuration.

All rates are per-day unless noted. The default configuration is tuned so a
full 2013–2023 run completes in well under a minute on a laptop while
reproducing the paper's qualitative dynamics; absolute counts are therefore
~three orders of magnitude below the paper's internet-scale numbers
(documented in DESIGN.md / EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.ecosystem.entities import HostingMode
from repro.ecosystem.timeline import DEFAULT_TIMELINE, Timeline
from repro.util.dates import Day, day


@dataclass(frozen=True)
class WorldConfig:
    """Knobs for :class:`~repro.ecosystem.simulator.WorldSimulator`."""

    seed: int = 20231024  # the paper's presentation date at IMC'23
    timeline: Timeline = field(default_factory=lambda: DEFAULT_TIMELINE)
    #: Global event-volume multiplier set by :meth:`scaled`; population-
    #: independent rates (revocations) multiply by this so a small test
    #: world keeps the same *relative* class magnitudes as the default.
    event_rate_factor: float = 1.0

    # -- domain registration dynamics -----------------------------------------
    #: (from-day, new registrations per day) schedule; HTTPS-era growth.
    registration_rate_schedule: Tuple[Tuple[Day, float], ...] = (
        (day(2013, 3, 1), 2.0),
        (day(2016, 1, 1), 3.5),
        (day(2018, 1, 1), 6.0),
        (day(2020, 1, 1), 7.5),
        (day(2022, 1, 1), 8.0),
    )
    registration_term_days: int = 365
    #: Probability the registrant renews at expiration.
    renew_probability: float = 0.68
    #: Probability a released name gets re-registered by someone.
    re_registration_probability: float = 0.80
    #: Probability a re-registration is a same-day drop-catch.
    drop_catch_probability: float = 0.72
    #: Max days after release for non-drop-catch re-registration.
    re_registration_max_delay: int = 600
    #: Transfers (invisible registrant changes) per 1K domains per day.
    transfer_rate_per_1k: float = 0.02

    # -- TLS adoption -------------------------------------------------------------
    #: (from-day, probability a new domain deploys TLS).
    tls_adoption_schedule: Tuple[Tuple[Day, float], ...] = (
        (day(2013, 3, 1), 0.18),
        (day(2016, 1, 1), 0.35),
        (day(2018, 1, 1), 0.62),
        (day(2020, 1, 1), 0.80),
    )
    #: (from-day, {hosting mode: weight}) — evolving hosting mix.
    hosting_mix_schedule: Tuple[Tuple[Day, Tuple[Tuple[HostingMode, float], ...]], ...] = (
        (
            day(2013, 3, 1),
            (
                (HostingMode.SELF_MANUAL, 7.0),
                (HostingMode.KEY_UPLOAD_CDN, 0.5),
                (HostingMode.CLOUDFLARE_MANAGED, 0.8),
                (HostingMode.REGISTRAR_MANAGED, 1.2),
                (HostingMode.HOSTING_PLATFORM, 0.5),
            ),
        ),
        (
            day(2016, 6, 1),
            (
                (HostingMode.SELF_MANUAL, 4.0),
                (HostingMode.SELF_ACME, 3.0),
                (HostingMode.KEY_UPLOAD_CDN, 0.7),
                (HostingMode.CLOUDFLARE_MANAGED, 1.8),
                (HostingMode.REGISTRAR_MANAGED, 1.4),
                (HostingMode.HOSTING_PLATFORM, 1.1),
            ),
        ),
        (
            day(2019, 1, 1),
            (
                (HostingMode.SELF_MANUAL, 2.2),
                (HostingMode.SELF_ACME, 4.5),
                (HostingMode.KEY_UPLOAD_CDN, 0.8),
                (HostingMode.CLOUDFLARE_MANAGED, 2.8),
                (HostingMode.REGISTRAR_MANAGED, 1.5),
                (HostingMode.HOSTING_PLATFORM, 1.4),
            ),
        ),
    )
    #: Probability a manually-managed certificate is renewed at expiry.
    manual_renew_probability: float = 0.85

    # -- managed TLS churn -----------------------------------------------------------
    #: Cloudflare customer departures per 1K customers per day (~27%/year).
    cdn_departure_rate_per_1k: float = 0.9
    #: Existing TLS domains migrating onto Cloudflare per 1K per day.
    cdn_enrollment_rate_per_1k: float = 0.3
    #: Share of departures drawn from customers enrolled within ~90 days
    #: (front-loaded churn; calibrates Figure 8's managed-TLS curve).
    cdn_early_churn_share: float = 0.42
    #: Probability a departed domain stands up new TLS elsewhere.
    post_departure_reissue_probability: float = 0.8

    # -- revocation dynamics -----------------------------------------------------------
    #: (from-day, key compromises per day) background schedule; the rising
    #: baseline of Figure 4 (GoDaddy's spike is scripted separately).
    key_compromise_rate_schedule: Tuple[Tuple[Day, float], ...] = (
        (day(2013, 3, 1), 0.010),
        (day(2021, 6, 1), 0.035),
        (day(2022, 1, 1), 0.05),
        (day(2022, 7, 1), 0.08),
        (day(2023, 1, 1), 0.11),
    )
    #: Mean days from issuance to key compromise (exponential; Figure 8's
    #: "99% of key compromise within 90 days of issuance").
    compromise_delay_mean_days: float = 20.0
    #: Days from compromise to CA revocation (detection + response lag).
    revocation_lag_max_days: int = 5
    #: Other-reason revocations (superseded, cessation, ...) per day.
    other_revocation_rate_schedule: Tuple[Tuple[Day, float], ...] = (
        (day(2013, 3, 1), 0.5),
        (day(2018, 1, 1), 3.0),
        (day(2021, 1, 1), 8.0),
    )

    # -- GoDaddy breach script (Section 5.1) ----------------------------------------
    #: Fraction of GoDaddy-issued certificates provisioned during the
    #: September–November 2021 exposure window whose keys leaked.
    godaddy_breach_exposure_fraction: float = 0.9

    # -- malicious actors (Table 5) ---------------------------------------------------
    #: Probability a registrant is a malicious operator.
    malicious_registrant_probability: float = 0.012

    # -- DNS scanning --------------------------------------------------------------
    #: Per-lookup loss rate during the daily scan window.
    dns_scan_loss_rate: float = 0.002

    def registration_rate(self, query_day: Day) -> float:
        return _schedule_value(self.registration_rate_schedule, query_day, 0.0)

    def tls_adoption(self, query_day: Day) -> float:
        return _schedule_value(self.tls_adoption_schedule, query_day, 0.0)

    def key_compromise_rate(self, query_day: Day) -> float:
        return self.event_rate_factor * _schedule_value(
            self.key_compromise_rate_schedule, query_day, 0.0
        )

    def other_revocation_rate(self, query_day: Day) -> float:
        return self.event_rate_factor * _schedule_value(
            self.other_revocation_rate_schedule, query_day, 0.0
        )

    def hosting_mix(self, query_day: Day) -> Dict[HostingMode, float]:
        mix: Tuple[Tuple[HostingMode, float], ...] = self.hosting_mix_schedule[0][1]
        for start, value in self.hosting_mix_schedule:
            if query_day >= start:
                mix = value
        return dict(mix)

    def scaled(self, factor: float) -> "WorldConfig":
        """A copy with the *world* scaled by *factor*; per-domain rates
        are unchanged.

        Two knobs move together on purpose, and this is **not** double
        scaling: ``registration_rate_schedule`` is a population size
        (domains registered per day) while ``key_compromise_rate_schedule``
        and ``other_revocation_rate_schedule`` are *world-total* event
        rates (events per day, across the whole population). Scaling
        only the registrations would dilute each domain's compromise
        probability by ``1/factor``; scaling both keeps every ratio of
        the form ``event_rate(day) / registration_rate(day)`` — the
        per-domain experience — exactly invariant, which is what lets a
        0.02x test world and a 100x generated world share one set of
        expectation bands (see EXPERIMENTS.md). Per-certificate
        probabilities (renewal, re-registration, CDN churn, scan loss)
        are already per-entity and are left untouched.

        Composition holds: ``scaled(a).scaled(b)`` equals ``scaled(a*b)``.
        """
        schedule = tuple(
            (start, rate * factor) for start, rate in self.registration_rate_schedule
        )
        return replace(
            self,
            registration_rate_schedule=schedule,
            event_rate_factor=self.event_rate_factor * factor,
        )


def _schedule_value(
    schedule: Tuple[Tuple[Day, float], ...], query_day: Day, default: float
) -> float:
    value = default
    for start, entry in schedule:
        if query_day >= start:
            value = entry
    return value
