"""Calendar anchors for the simulated decade.

Every date here comes from the paper (Table 3 collection windows, policy
changes from Sections 1/2/6, incidents from Section 5) so that simulated
series line up month-for-month with the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.dates import Day, day


@dataclass(frozen=True)
class Timeline:
    """Named days used throughout the simulation and analysis."""

    # Collection windows (paper Table 3 / Table 4)
    ct_start: Day = day(2013, 3, 1)
    ct_end: Day = day(2023, 5, 12)
    crl_collection_start: Day = day(2022, 11, 1)
    crl_collection_end: Day = day(2023, 5, 5)
    whois_start: Day = day(2016, 1, 1)
    whois_end: Day = day(2021, 7, 8)
    dns_scan_start: Day = day(2022, 8, 1)
    dns_scan_end: Day = day(2022, 10, 30)
    #: Revocations before this day are outliers (13 months before CRL
    #: collection; paper §4.1).
    revocation_cutoff: Day = day(2021, 10, 1)
    #: Registrant-change detection window reported in Table 4.
    registrant_window_start: Day = day(2013, 4, 16)
    registrant_window_end: Day = day(2021, 7, 9)

    # Policy changes (Sections 1, 2, 6)
    lets_encrypt_launch: Day = day(2015, 12, 3)
    limit_825_effective: Day = day(2018, 3, 1)
    limit_398_effective: Day = day(2020, 9, 1)

    # Ecosystem shifts (Section 5.2)
    https_growth_inflection: Day = day(2018, 1, 1)
    cruiseliner_era_start: Day = day(2017, 6, 1)
    cruiseliner_phaseout_start: Day = day(2019, 4, 1)
    cruiseliner_phaseout_end: Day = day(2019, 10, 1)

    # Incidents (Sections 5.1, 5.3)
    #: The intruder had provisioning-system access from September 6, 2021;
    #: keys provisioned during the exposure window were compromised.
    godaddy_breach_exposure_start: Day = day(2021, 9, 6)
    godaddy_breach_disclosure: Day = day(2021, 11, 17)
    godaddy_breach_revocation_end: Day = day(2021, 12, 31)
    lets_encrypt_kc_reporting_start: Day = day(2022, 7, 1)

    @property
    def simulation_start(self) -> Day:
        return self.ct_start

    @property
    def simulation_end(self) -> Day:
        return self.ct_end

    def in_dns_scan_window(self, query_day: Day) -> bool:
        return self.dns_scan_start <= query_day <= self.dns_scan_end

    def in_crl_window(self, query_day: Day) -> bool:
        return self.crl_collection_start <= query_day <= self.crl_collection_end

    def in_whois_window(self, query_day: Day) -> bool:
        return self.whois_start <= query_day <= self.whois_end

    def cruiseliner_share(self, query_day: Day) -> float:
        """Fraction of Cloudflare managed issuance using cruise-liner
        batching on a given day (1.0 in the era, ramping to 0 through 2019)."""
        if query_day < self.cruiseliner_era_start:
            return 0.0
        if query_day < self.cruiseliner_phaseout_start:
            return 1.0
        if query_day >= self.cruiseliner_phaseout_end:
            return 0.0
        span = self.cruiseliner_phaseout_end - self.cruiseliner_phaseout_start
        return 1.0 - (query_day - self.cruiseliner_phaseout_start) / span


DEFAULT_TIMELINE = Timeline()
