"""Dataset-bundle persistence — deprecated compatibility shim.

The bundle data plane moved to :mod:`repro.data`, which adds a columnar
memory-mapped layout behind one ``Dataset`` access API and keeps this
module's JSONL dict layout readable. These wrappers delegate to
:mod:`repro.data.legacy` and warn; they will be removed once nothing
imports them.

Migration:

* ``load_bundle(directory)`` → :func:`repro.data.open_bundle` (reads
  either layout, returns the same duck-typed bundle);
* ``save_bundle(bundle, directory)`` → :func:`repro.data.write_dataset`
  (columnar) or :func:`repro.data.save_legacy_bundle` (old layout);
* converting existing directories: ``python -m repro bundle convert``.
"""

from __future__ import annotations

import warnings
from typing import Dict

from repro.core.pipeline import DatasetBundle
from repro.data.legacy import load_legacy_bundle, save_legacy_bundle


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.ecosystem.persistence.{old} is deprecated; use {new} "
        "(see repro.data)",
        DeprecationWarning,
        stacklevel=3,
    )


def save_bundle(bundle: DatasetBundle, directory: str) -> Dict[str, int]:
    """Deprecated: use :func:`repro.data.write_dataset` (columnar) or
    :func:`repro.data.save_legacy_bundle`."""
    _deprecated(
        "save_bundle",
        "repro.data.write_dataset or repro.data.save_legacy_bundle",
    )
    return save_legacy_bundle(bundle, directory)


def load_bundle(directory: str) -> DatasetBundle:
    """Deprecated: use :func:`repro.data.open_bundle`."""
    _deprecated("load_bundle", "repro.data.open_bundle")
    return load_legacy_bundle(directory)
