"""Cloudflare-style managed TLS service.

Reproduces the issuance behaviour the paper observed (Section 5.2):

* **Cruise-liner era** (through early 2019): customer domains are packed
  dozens-at-a-time into shared certificates issued by COMODO; *every*
  enrollment or departure re-issues the batch certificate, producing
  "hundreds of temporally-overlapping certificates" per customer domain that
  "only differ by a handful of inserted or removed domains".
* **Per-domain era** (mid-2019 on): each customer gets an individual
  certificate from Cloudflare's own CA.

All managed certificates carry the ``sni<NNNN>.cloudflaressl.com`` marker
SAN that lets the detector distinguish CDN-managed from customer-uploaded
certificates, and the CDN — not the customer — holds the private keys.

The service also manages the customer's DNS delegation: enrollment points
the domain's NS set at ``*.ns.cloudflare.com``; departure replaces it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.dns.records import RecordType
from repro.dns.zone import ZoneStore
from repro.ecosystem.cas import CLOUDFLARE_CA_ISSUER, COMODO_CRUISELINER_ISSUER, CaRegistry
from repro.ecosystem.timeline import Timeline
from repro.pki.certificate import Certificate
from repro.pki.keys import KeyPair, KeyStore
from repro.util.dates import Day
from repro.util.rng import RngStream

#: Batch capacity for cruise-liner certificates ("dozens of distinct
#: Cloudflare customers in a single certificate").
CRUISELINER_BATCH_SIZE = 32

CLOUDFLARE_NAMESERVERS = ("ada.ns.cloudflare.com", "bob.ns.cloudflare.com")


@dataclass
class CruiselinerBatch:
    """One shared-certificate batch of customer domains."""

    batch_id: int
    sni_label: str
    members: Set[str] = field(default_factory=set)
    current_certificate: Optional[Certificate] = None
    key: Optional[KeyPair] = None

    @property
    def full(self) -> bool:
        return len(self.members) >= CRUISELINER_BATCH_SIZE


class CloudflareService:
    """The managed-TLS CDN: enrollment, issuance, departure."""

    def __init__(
        self,
        registry: CaRegistry,
        key_store: KeyStore,
        zones: ZoneStore,
        timeline: Timeline,
        rng: RngStream,
        party_id: str = "cdn:cloudflare",
    ) -> None:
        self._registry = registry
        self._key_store = key_store
        self._zones = zones
        self._timeline = timeline
        self._rng = rng
        self.party_id = party_id
        self._batches: List[CruiselinerBatch] = []
        self._batch_of: Dict[str, CruiselinerBatch] = {}
        self._per_domain_certs: Dict[str, Certificate] = {}
        self._sni_counter = itertools.count(100000)
        self._batch_counter = itertools.count(1)
        self.issued: List[Certificate] = []
        self.customers: Set[str] = set()

    # -- enrollment / departure ---------------------------------------------

    def enroll(self, domain: str, enroll_day: Day) -> List[Certificate]:
        """Customer delegates the domain to the CDN (NS delegation) and the
        CDN provisions managed TLS. Returns newly issued certificates."""
        if domain in self.customers:
            return []
        self.customers.add(domain)
        self._set_delegation(domain, to_cloudflare=True)
        if self._rng.random() < self._timeline.cruiseliner_share(enroll_day):
            return self._enroll_cruiseliner(domain, enroll_day)
        return [self._issue_per_domain(domain, enroll_day)]

    def depart(self, domain: str, depart_day: Day, new_ns_base: str) -> None:
        """Customer migrates away: delegation changes, CDN keeps the keys.

        The stale-certificate scenario of Section 5.3: nothing is revoked
        and no key custody changes — the CDN simply no longer serves the
        domain it still holds valid certificates for.
        """
        if domain not in self.customers:
            raise KeyError(f"{domain} is not a Cloudflare customer")
        self.customers.discard(domain)
        self._set_delegation(domain, to_cloudflare=False, new_ns_base=new_ns_base)
        batch = self._batch_of.pop(domain, None)
        if batch is not None:
            batch.members.discard(domain)
            if batch.members:
                # Membership change re-issues the shared certificate for the
                # remaining members (the cruise-liner churn of Figure 5b).
                self._reissue_batch(batch, depart_day)
        self._per_domain_certs.pop(domain, None)

    def drop_dead(self, domain: str) -> None:
        """Stop serving/renewing for a domain whose registration lapsed.

        Unlike :meth:`depart`, no DNS change is made (the zone is gone) and
        existing certificates are left to age out naturally.
        """
        self.customers.discard(domain)
        self._per_domain_certs.pop(domain, None)
        batch = self._batch_of.pop(domain, None)
        if batch is not None:
            batch.members.discard(domain)

    def renew_due(self, current_day: Day) -> List[Certificate]:
        """Daily renewal sweep for managed certificates nearing expiry."""
        renewed: List[Certificate] = []
        for batch in self._batches:
            cert = batch.current_certificate
            if cert is None or not batch.members:
                continue
            if cert.not_after - current_day <= 30:
                renewed.append(self._reissue_batch(batch, current_day))
        for domain, cert in list(self._per_domain_certs.items()):
            # Cloudflare rotates managed certificates well before expiry, so
            # a randomly-timed departure leaves the CDN holding a mostly
            # unspent certificate (Figure 6's ~300-day median staleness).
            if cert.not_after - current_day <= 150:
                renewed.append(self._issue_per_domain(domain, current_day))
        return renewed

    # -- queries ------------------------------------------------------------

    def is_customer(self, domain: str) -> bool:
        return domain in self.customers

    def active_certificates_for(self, domain: str, query_day: Day) -> List[Certificate]:
        return [
            cert
            for cert in self.issued
            if cert.is_valid_on(query_day) and domain in cert.fqdns()
        ]

    # -- internals ------------------------------------------------------------

    def _enroll_cruiseliner(self, domain: str, enroll_day: Day) -> List[Certificate]:
        batch = self._open_batch()
        batch.members.add(domain)
        self._batch_of[domain] = batch
        return [self._reissue_batch(batch, enroll_day)]

    def _open_batch(self) -> CruiselinerBatch:
        for batch in self._batches:
            if not batch.full:
                return batch
        batch = CruiselinerBatch(
            batch_id=next(self._batch_counter),
            sni_label=f"sni{next(self._sni_counter)}.cloudflaressl.com",
        )
        self._batches.append(batch)
        return batch

    def _reissue_batch(self, batch: CruiselinerBatch, issue_day: Day) -> Certificate:
        ca = self._registry.ca(COMODO_CRUISELINER_ISSUER)
        if batch.key is None:
            batch.key = self._key_store.generate(self.party_id, issue_day)
        sans = [batch.sni_label, "*." + batch.sni_label]
        for member in sorted(batch.members):
            sans.append(member)
            sans.append("*." + member)
        lifetime = min(365, ca.policy.effective_max(issue_day))
        certificate = ca.issue(
            san_dns_names=sans,
            subject_key=batch.key,
            issuance_day=issue_day,
            lifetime_days=lifetime,
            skip_validation=True,
        )
        batch.current_certificate = certificate
        self.issued.append(certificate)
        return certificate

    def _issue_per_domain(self, domain: str, issue_day: Day) -> Certificate:
        ca = self._registry.ca(CLOUDFLARE_CA_ISSUER)
        key = self._key_store.generate(self.party_id, issue_day)
        sni = f"sni{next(self._sni_counter)}.cloudflaressl.com"
        lifetime = min(365, ca.policy.effective_max(issue_day))
        certificate = ca.issue(
            san_dns_names=[sni, domain, "*." + domain],
            subject_key=key,
            issuance_day=issue_day,
            lifetime_days=lifetime,
            skip_validation=True,
        )
        self._per_domain_certs[domain] = certificate
        self.issued.append(certificate)
        return certificate

    def _set_delegation(
        self, domain: str, to_cloudflare: bool, new_ns_base: Optional[str] = None
    ) -> None:
        zone = self._zones.get(domain)
        if zone is None:
            zone = self._zones.create(domain)
        if to_cloudflare:
            zone.replace(domain, RecordType.NS, CLOUDFLARE_NAMESERVERS)
        else:
            base = new_ns_base or f"ns.{domain}"
            zone.replace(domain, RecordType.NS, (f"ns1.{base}", f"ns2.{base}"))
