"""Event-driven world simulator for the 2013–2023 web PKI.

Runs a day loop over the paper's full CT window, maintaining:

* the registry (registrations, renewals, transfers, the post-expiration
  lifecycle, re-registrations including drop-catch);
* certificate issuance per hosting mode (manual, ACME auto-renewal,
  Cloudflare managed TLS, registrar/hosting-platform SSL);
* CT submission (precertificates + finals into sharded, trusted logs);
* revocations (background key compromise with short issuance-to-compromise
  delays, other reasons, and the scripted GoDaddy November-2021 breach);
* daily DNS delegation state (snapshotted during the paper's scan window);
* CRL publication and the daily fetch during the paper's CRL window.

Everything is driven by one seeded RNG tree, so identical configs produce
identical datasets.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.pipeline import DatasetBundle
from repro.core.stale import StalenessClass
from repro.ct.client import CtMonitor
from repro.ct.dedup import CertificateCorpus
from repro.ct.log import CtLog, shard_family
from repro.ct.loglist import LogList, TrustOperator
from repro.dns.records import RecordType
from repro.dns.snapshots import DailySnapshot, DomainObservation, SnapshotStore
from repro.dns.zone import ZoneStore
from repro.ecosystem.cas import (
    CLOUDFLARE_CA_ISSUER,
    COMODO_CRUISELINER_ISSUER,
    CaRegistry,
    build_standard_cas,
)
from repro.ecosystem.cdn import CloudflareService
from repro.ecosystem.entities import REGISTRARS, HostingMode, Registrant
from repro.ecosystem.events import GroundTruthEvent, GroundTruthEventType
from repro.ecosystem.timeline import Timeline
from repro.ecosystem.workload import WorldConfig
from repro.pki.certificate import Certificate
from repro.pki.keys import KeyStore
from repro.revocation.crl import CertificateRevocationList
from repro.revocation.fetcher import CrlFetcher
from repro.revocation.reasons import RevocationReason
from repro.util.dates import Day
from repro.util.rng import RngStream
from repro.whois.lifecycle import release_day as lifecycle_release_day
from repro.whois.registry import Registry

#: TLD mix for new registrations (com/net are the detector-eligible Verisign
#: registries; org/io exercise the TLD filter).
_TLD_WEIGHTS = (("com", 0.58), ("net", 0.16), ("org", 0.16), ("io", 0.10))

_NAME_ADJECTIVES = (
    "blue", "rapid", "bright", "quiet", "solar", "lucky", "prime", "nova",
    "vivid", "cosmic", "amber", "polar", "urban", "zen", "echo", "delta",
)
_NAME_NOUNS = (
    "forge", "harbor", "labs", "works", "metrics", "garden", "peak", "byte",
    "craft", "media", "cloud", "stack", "market", "studio", "grid", "press",
)


@dataclass
class SimDomain:
    """Mutable simulation state for one registered e2LD."""

    name: str
    registrant_id: str
    hosting: HostingMode
    created: Day
    tls: bool
    alive: bool = True
    current_cert: Optional[Certificate] = None
    generation: int = 0  # bumps on hosting change / re-registration


@dataclass
class WorldDatasets:
    """Everything a simulation run produces (the Table 3 analogue)."""

    config: WorldConfig
    corpus: CertificateCorpus
    log_list: LogList
    crls: List[CertificateRevocationList]
    crl_fetcher: CrlFetcher
    whois_creation_pairs: List[Tuple[str, Day]]
    dns_snapshots: SnapshotStore
    zones: ZoneStore
    registry: Registry
    ca_registry: CaRegistry
    key_store: KeyStore
    ground_truth: List[GroundTruthEvent]
    popularity_ranks: Dict[str, int]
    malicious_ownership: List[Tuple[str, str, Day, Day]]  # domain, owner, start, end
    total_certificates_issued: int

    def to_bundle(self) -> DatasetBundle:
        """Package into the measurement pipeline's input shape."""
        timeline = self.config.timeline
        return DatasetBundle(
            corpus=self.corpus,
            crls=self.crls,
            whois_creation_pairs=self.whois_creation_pairs,
            dns_snapshots=self.dns_snapshots,
            windows={
                StalenessClass.REVOKED_ALL: (
                    timeline.revocation_cutoff,
                    timeline.crl_collection_end,
                ),
                StalenessClass.KEY_COMPROMISE: (
                    timeline.revocation_cutoff,
                    timeline.crl_collection_end,
                ),
                StalenessClass.REGISTRANT_CHANGE: (
                    timeline.registrant_window_start,
                    timeline.registrant_window_end,
                ),
                StalenessClass.MANAGED_TLS_DEPARTURE: (
                    timeline.dns_scan_start,
                    timeline.dns_scan_end,
                ),
            },
        )

    def dataset_summary(self) -> Dict[str, int]:
        """Row counts for the Table 3 reproduction."""
        return {
            "ct_unique_certificates": len(self.corpus),
            "ct_logs": len(self.log_list),
            "crls_collected": len(self.crls),
            "whois_creation_pairs": len(self.whois_creation_pairs),
            "dns_scan_days": len(self.dns_snapshots),
            "registered_domains": sum(1 for _ in self.registry.all_domains()),
            "ground_truth_events": len(self.ground_truth),
        }


class WorldSimulator:
    """Runs the seeded day loop and assembles :class:`WorldDatasets`."""

    def __init__(self, config: Optional[WorldConfig] = None) -> None:
        self.config = config or WorldConfig()
        self.timeline: Timeline = self.config.timeline
        seed = self.config.seed
        self._rng_reg = RngStream(seed, "registrations")
        self._rng_tls = RngStream(seed, "tls")
        self._rng_cdn = RngStream(seed, "cdn")
        self._rng_rev = RngStream(seed, "revocations")
        self._rng_life = RngStream(seed, "lifecycle")
        self._rng_pop = RngStream(seed, "popularity")
        self._rng_ct = RngStream(seed, "ct")
        self._rng_fetch = RngStream(seed, "crl-fetch")

        self.key_store = KeyStore()
        self.zones = ZoneStore()
        self.registry = Registry(operated_tlds=("com", "net", "org", "io"))
        self.ca_registry = build_standard_cas(self.key_store, established=self.timeline.ct_start)
        self.cloudflare = CloudflareService(
            self.ca_registry, self.key_store, self.zones, self.timeline, self._rng_cdn
        )
        self.log_list = self._build_log_infrastructure()
        self.snapshots = SnapshotStore()
        self.ground_truth: List[GroundTruthEvent] = []
        self.popularity_ranks: Dict[str, int] = {}

        self._domains: Dict[str, SimDomain] = {}
        self._alive_names: List[str] = []  # append-only; filtered when sampled
        self._alive_count = 0
        self._registrants: Dict[str, Registrant] = {}
        self._name_counter = 0
        self._total_issued = 0

        # Scheduled-event heaps: (day, sequence, payload).
        self._seq = 0
        self._reg_expiry: List[Tuple[Day, int, str]] = []
        self._releases: List[Tuple[Day, int, str]] = []
        self._re_registrations: List[Tuple[Day, int, str]] = []
        self._cert_renewals: List[Tuple[Day, int, str, int, int]] = []  # name, serial, generation
        self._revocations: List[Tuple[Day, int, int, str, str]] = []  # serial, issuer, reason name

        #: issuance day -> certificates (for compromise sampling). Kept
        #: as a *recency window*: buckets older than the longest issued
        #: lifetime can never yield a valid sample, so they collapse to
        #: a bare count in ``_issued_counts`` (the count preserves the
        #: RNG draw a ``choice`` over the bucket would have consumed).
        self._issued_by_day: Dict[Day, List[Certificate]] = {}
        self._issued_counts: Dict[Day, int] = {}
        self._max_issued_lifetime: int = 0
        #: all unexpired certificates (lazily pruned) for other-reason revocation.
        self._active_certs: List[Certificate] = []
        self._revoked_serials: Set[Tuple[str, int]] = set()

        # DNS state for snapshots (interned observations).
        self._current_obs: Dict[str, DomainObservation] = {}

        #: (enroll day, name) of recent Cloudflare enrollments — CDN churn is
        #: front-loaded (trial customers leave within weeks), which is what
        #: keeps half of managed-TLS departures within ~90 days of the
        #: newest certificate's issuance (Figure 8).
        self._cf_recent_enrollments: List[Tuple[Day, str]] = []

        # CRL collection
        self.crl_fetcher = CrlFetcher(
            self.ca_registry.disclosure,
            self._rng_fetch,
            profiles=self.ca_registry.failure_profiles(),
        )
        self.collected_crls: List[CertificateRevocationList] = []

        self._godaddy_breach_fired = False

    # ------------------------------------------------------------------ run --

    def run(self) -> WorldDatasets:
        start, end = self.timeline.simulation_start, self.timeline.simulation_end
        for current in range(start, end + 1):
            self._step(current)
        corpus = self._collect_ct()
        return WorldDatasets(
            config=self.config,
            corpus=corpus,
            log_list=self.log_list,
            crls=self.collected_crls,
            crl_fetcher=self.crl_fetcher,
            whois_creation_pairs=self._whois_pairs(),
            dns_snapshots=self.snapshots,
            zones=self.zones,
            registry=self.registry,
            ca_registry=self.ca_registry,
            key_store=self.key_store,
            ground_truth=list(self.ground_truth),
            popularity_ranks=dict(self.popularity_ranks),
            malicious_ownership=self._malicious_spans(),
            total_certificates_issued=self._total_issued,
        )

    # ------------------------------------------------------------- day loop --

    def _step(self, current: Day) -> None:
        self._prune_issuance_window(current)
        self._process_registration_expiries(current)
        self._process_releases(current)
        self._process_re_registrations(current)
        self._process_cert_renewals(current)
        self._process_scheduled_revocations(current)
        self._new_registrations(current)
        self._transfers(current)
        self._cdn_enrollments(current)
        self._cdn_departures(current)
        self._background_compromises(current)
        self._other_revocations(current)
        if current % 7 == 0:
            for certificate in self.cloudflare.renew_due(current):
                self._record_issuance(certificate, current, renewal=True)
        if self._should_fire_godaddy_breach(current):
            self._fire_godaddy_breach(current)
        if self.timeline.in_dns_scan_window(current):
            self.snapshots.put(
                DailySnapshot.from_observations(
                    current, self._scan_observations(current)
                )
            )
        if self.timeline.in_crl_window(current):
            result = self.crl_fetcher.fetch_day(current)
            self.collected_crls.extend(result.crls)

    def _scan_observations(self, current: Day) -> Dict[str, "DomainObservation"]:
        """One day's scan results: the live zone minus transient losses.

        Each loss draw comes from a ``("dns-loss", day, apex)`` fork of
        the lifecycle stream, not the stream itself. Drawing inline
        (the previous behaviour) consumed one lifecycle draw per alive
        domain, so *whether an unrelated domain existed* shifted every
        subsequent lifecycle decision — and a domain's own scan-loss
        outcome depended on the rest of the population. Forking keeps
        the outcome a pure function of (seed, day, apex).
        """
        observations = self._current_obs
        loss_rate = self.config.dns_scan_loss_rate
        if loss_rate <= 0:
            return observations
        # Transient per-domain lookup failures: the domain simply does
        # not appear in that day's snapshot.
        return {
            apex: obs
            for apex, obs in observations.items()
            if not self._rng_life.split(
                "dns-loss", str(current), apex
            ).bernoulli(loss_rate)
        }

    # -------------------------------------------------------- registrations --

    def _new_registrations(self, current: Day) -> None:
        count = self._rng_reg.poisson(self.config.registration_rate(current))
        for _ in range(count):
            name = self._fresh_name()
            registrant = self._fresh_registrant()
            self._register_domain(name, registrant, current, is_re_registration=False)

    def _fresh_name(self) -> str:
        self._name_counter += 1
        adjective = self._rng_reg.choice(_NAME_ADJECTIVES)
        noun = self._rng_reg.choice(_NAME_NOUNS)
        tld = self._rng_reg.weighted_choice(
            [t for t, _ in _TLD_WEIGHTS], [w for _, w in _TLD_WEIGHTS]
        )
        return f"{adjective}{noun}{self._name_counter}.{tld}"

    def _fresh_registrant(self) -> Registrant:
        malicious = self._rng_life.bernoulli(self.config.malicious_registrant_probability)
        registrant = Registrant.fresh(malicious=malicious)
        self._registrants[registrant.registrant_id] = registrant
        return registrant

    def _register_domain(
        self, name: str, registrant: Registrant, current: Day, is_re_registration: bool
    ) -> SimDomain:
        registrar = self._rng_reg.choice(REGISTRARS)
        self.registry.register(
            name, registrant.registrant_id, registrar, current,
            term_days=self.config.registration_term_days,
        )
        hosting = self._choose_hosting(current)
        tls = self._rng_tls.bernoulli(self.config.tls_adoption(current))
        previous = self._domains.get(name)
        domain = SimDomain(
            name=name,
            registrant_id=registrant.registrant_id,
            hosting=hosting,
            created=current,
            tls=tls,
            generation=(previous.generation + 1) if previous else 0,
        )
        self._domains[name] = domain
        self._alive_names.append(name)
        self._alive_count += 1
        if name not in self.popularity_ranks:
            rank = self._draw_popularity_rank()
            if rank is not None:
                self.popularity_ranks[name] = rank
        self._push(self._reg_expiry, current + self.config.registration_term_days, name)
        self._set_self_delegation(domain, current)
        self._emit(
            GroundTruthEventType.DOMAIN_RE_REGISTERED
            if is_re_registration
            else GroundTruthEventType.DOMAIN_REGISTERED,
            current,
            domain=name,
            party_id=registrant.registrant_id,
        )
        if tls:
            self._deploy_tls(domain, current)
        return domain

    def _choose_hosting(self, current: Day) -> HostingMode:
        mix = self.config.hosting_mix(current)
        modes = list(mix)
        return self._rng_tls.weighted_choice(modes, [mix[m] for m in modes])

    # ----------------------------------------------------------- lifecycle --

    def _process_registration_expiries(self, current: Day) -> None:
        for name in self._pop_due(self._reg_expiry, current):
            domain = self._domains.get(name)
            if domain is None or not domain.alive:
                continue
            registration = self.registry.current(name)
            if registration is None or registration.expiration_date != current:
                # Renewed/transferred meanwhile; reschedule from the registry.
                if registration is not None and registration.expiration_date > current:
                    self._push(self._reg_expiry, registration.expiration_date, name)
                continue
            if self._rng_life.bernoulli(self.config.renew_probability):
                self.registry.renew(name, current, self.config.registration_term_days)
                self._push(
                    self._reg_expiry, current + self.config.registration_term_days, name
                )
                self._emit(GroundTruthEventType.DOMAIN_RENEWED, current, domain=name)
            else:
                self._lapse(domain, current)

    def _lapse(self, domain: SimDomain, current: Day) -> None:
        """Registrant walks away: schedule registry release and maybe re-reg."""
        domain.alive = False
        self._alive_count -= 1
        release = lifecycle_release_day(current)
        self._push(self._releases, release, domain.name)
        self._emit(GroundTruthEventType.DOMAIN_EXPIRED_LAPSED, current, domain=domain.name)
        if domain.name in self.cloudflare.customers:
            # The CDN stops serving (and renewing for) a dead zone; its
            # already-issued certificates remain valid until they expire.
            self.cloudflare.drop_dead(domain.name)
        self._current_obs.pop(domain.name, None)

    def _process_releases(self, current: Day) -> None:
        for name in self._pop_due(self._releases, current):
            registration = self.registry.current(name)
            if registration is None or registration.expiration_date >= current:
                continue  # restored in the meantime
            self.registry.delete(name, current)
            self.zones.drop(name)
            if self._rng_life.bernoulli(self.config.re_registration_probability):
                if self._rng_life.bernoulli(self.config.drop_catch_probability):
                    rereg_day = current  # drop-catch services move instantly
                else:
                    rereg_day = current + self._rng_life.bounded_pareto_days(
                        1, self.config.re_registration_max_delay
                    )
                if rereg_day <= self.timeline.simulation_end:
                    self._push(self._re_registrations, rereg_day, name)

    def _process_re_registrations(self, current: Day) -> None:
        for name in self._pop_due(self._re_registrations, current):
            if self.registry.current(name) is not None:
                continue
            registrant = self._fresh_registrant()
            self._register_domain(name, registrant, current, is_re_registration=True)

    def _transfers(self, current: Day) -> None:
        alive = self._alive_count_estimate()
        expected = self.config.transfer_rate_per_1k * alive / 1000.0
        for _ in range(self._rng_life.poisson(expected)):
            domain = self._sample_alive()
            if domain is None:
                continue
            new_owner = self._fresh_registrant()
            previous = domain.registrant_id
            self.registry.transfer(domain.name, new_owner.registrant_id, current)
            domain.registrant_id = new_owner.registrant_id
            self._emit(
                GroundTruthEventType.DOMAIN_TRANSFERRED,
                current,
                domain=domain.name,
                party_id=new_owner.registrant_id,
                detail=f"from={previous}",
            )

    # ------------------------------------------------------------- TLS / CT --

    def _deploy_tls(self, domain: SimDomain, current: Day) -> None:
        if domain.hosting is HostingMode.CLOUDFLARE_MANAGED:
            self._delegate_to_cloudflare(domain, current)
            return
        certificate = self._issue_for(domain, current)
        if certificate is not None:
            domain.current_cert = certificate
            self._schedule_renewal(domain, certificate)

    def _issue_for(self, domain: SimDomain, current: Day) -> Optional[Certificate]:
        """Issue via the hosting mode's CA; returns None when no CA exists
        yet (pre-Let's Encrypt ACME, for example)."""
        if domain.hosting is HostingMode.SELF_ACME:
            ca = self.ca_registry.pick_acme_ca(current, self._rng_tls)
        elif domain.hosting is HostingMode.HOSTING_PLATFORM:
            try:
                ca = self.ca_registry.ca("cPanel, Inc. CA")
                if self.ca_registry.profile("cPanel, Inc. CA").weight_on(current) <= 0:
                    ca = self.ca_registry.pick_pool_ca(current, self._rng_tls)
            except KeyError:
                ca = None
        elif domain.hosting is HostingMode.REGISTRAR_MANAGED:
            ca = self.ca_registry.ca("GoDaddy Secure CA - G2")
        else:
            ca = self.ca_registry.pick_pool_ca(current, self._rng_tls)
        if ca is None:
            return None
        owner = (
            f"host:{domain.hosting.value}"
            if domain.hosting.is_managed_tls
            else domain.registrant_id
        )
        key = self.key_store.generate(owner, current)
        sans = [domain.name, f"www.{domain.name}"]
        lifetime = min(ca.policy.default_lifetime_days, ca.policy.effective_max(current))
        certificate = ca.issue(
            san_dns_names=sans,
            subject_key=key,
            issuance_day=current,
            lifetime_days=lifetime,
            skip_validation=True,
        )
        self._record_issuance(certificate, current)
        return certificate

    def _schedule_renewal(self, domain: SimDomain, certificate: Certificate) -> None:
        if domain.hosting in (HostingMode.SELF_ACME, HostingMode.HOSTING_PLATFORM):
            renew_day = certificate.not_before + (certificate.lifetime_days * 2) // 3
        else:
            renew_day = certificate.not_after
        if renew_day <= self.timeline.simulation_end:
            self._seq += 1
            heapq.heappush(
                self._cert_renewals,
                (renew_day, self._seq, domain.name, certificate.serial, domain.generation),
            )

    def _process_cert_renewals(self, current: Day) -> None:
        while self._cert_renewals and self._cert_renewals[0][0] <= current:
            _, _, name, serial, generation = heapq.heappop(self._cert_renewals)
            domain = self._domains.get(name)
            if (
                domain is None
                or domain.generation != generation
                or domain.current_cert is None
                or domain.current_cert.serial != serial
            ):
                continue
            # Renewal keeps working while the registration (and thus DNS)
            # still exists — including the post-expiration grace period.
            # This is Section 7.1's "automatic issuance" amplifier: certbot
            # happily extends the name-to-key mapping of a domain whose
            # registrant has already walked away.
            if not domain.alive and self.registry.current(name) is None:
                continue
            automated = domain.hosting in (
                HostingMode.SELF_ACME,
                HostingMode.HOSTING_PLATFORM,
                HostingMode.REGISTRAR_MANAGED,
            )
            if not automated and not self._rng_tls.bernoulli(
                self.config.manual_renew_probability
            ):
                continue
            certificate = self._issue_for(domain, current)
            if certificate is not None:
                domain.current_cert = certificate
                self._schedule_renewal(domain, certificate)
                self._emit(
                    GroundTruthEventType.CERT_RENEWED,
                    current,
                    domain=name,
                    certificate_serial=certificate.serial,
                )

    def _record_issuance(
        self, certificate: Certificate, current: Day, renewal: bool = False
    ) -> None:
        self._total_issued += 1
        self._issued_by_day.setdefault(current, []).append(certificate)
        if certificate.lifetime_days > self._max_issued_lifetime:
            self._max_issued_lifetime = certificate.lifetime_days
        self._active_certs.append(certificate)
        self._submit_to_ct(certificate, current)
        if not renewal:
            self._emit(
                GroundTruthEventType.CERT_ISSUED,
                current,
                certificate_serial=certificate.serial,
            )

    def _submit_to_ct(self, certificate: Certificate, current: Day) -> None:
        logs = self._accepting_logs(certificate, current)
        if not logs:
            return
        precert = certificate.as_precertificate()
        targets = logs if len(logs) <= 2 else self._rng_ct.sample(logs, 2)
        scts = []
        for log in targets:
            scts.append(log.submit(precert, current).token())
        final = certificate.with_scts(scts)
        # Roughly half of final certificates are also submitted by crawlers.
        if self._rng_ct.bernoulli(0.5):
            targets[0].submit(final, current)

    def _accepting_logs(self, certificate: Certificate, current: Day) -> List[CtLog]:
        trusted = self._trusted_logs_cached(current)
        return [log for log in trusted if log.sharding.accepts(certificate)]

    def _trusted_logs_cached(self, current: Day) -> List[CtLog]:
        cached = getattr(self, "_trust_cache", None)
        if cached is not None and cached[0] == current:
            return cached[1]
        logs = self.log_list.logs_trusted_on(current)
        self._trust_cache = (current, logs)
        return logs

    # ------------------------------------------------------------------ CDN --

    def _delegate_to_cloudflare(self, domain: SimDomain, current: Day) -> None:
        issued = self.cloudflare.enroll(domain.name, current)
        for certificate in issued:
            self._record_issuance(certificate, current)
        self._set_cloudflare_delegation(domain)
        self._cf_recent_enrollments.append((current, domain.name))
        self._emit(
            GroundTruthEventType.MANAGED_TLS_ENROLLED, current, domain=domain.name
        )

    def _cdn_enrollments(self, current: Day) -> None:
        eligible = self.cloudflare.customers
        expected = (
            self.config.cdn_enrollment_rate_per_1k
            * max(0, self._alive_count_estimate() - len(eligible))
            / 1000.0
        )
        for _ in range(self._rng_cdn.poisson(expected)):
            domain = self._sample_alive()
            if domain is None or not domain.tls:
                continue
            if domain.hosting is HostingMode.CLOUDFLARE_MANAGED:
                continue
            domain.hosting = HostingMode.CLOUDFLARE_MANAGED
            domain.generation += 1
            domain.current_cert = None
            self._delegate_to_cloudflare(domain, current)
            self._emit(
                GroundTruthEventType.HOSTING_CHANGED,
                current,
                domain=domain.name,
                detail="to=cloudflare",
            )

    def _cdn_departures(self, current: Day) -> None:
        customers = self.cloudflare.customers
        expected = self.config.cdn_departure_rate_per_1k * len(customers) / 1000.0
        count = self._rng_cdn.poisson(expected)
        if count <= 0 or not customers:
            return
        # Trim the recent-enrollment window to ~90 days.
        horizon = current - 90
        while self._cf_recent_enrollments and self._cf_recent_enrollments[0][0] < horizon:
            self._cf_recent_enrollments.pop(0)
        chosen: List[str] = []
        recent = [name for _, name in self._cf_recent_enrollments if name in customers]
        for _ in range(min(count, len(customers))):
            if recent and self._rng_cdn.bernoulli(self.config.cdn_early_churn_share):
                name = self._rng_cdn.choice(recent)
            else:
                name = self._rng_cdn.choice(sorted(customers))
            if name not in chosen:
                chosen.append(name)
        for name in chosen:
            domain = self._domains.get(name)
            if domain is None or not domain.alive:
                self.cloudflare.customers.discard(name)
                continue
            new_host = f"hosting-{self._rng_cdn.randint(1, 40)}.net"
            self.cloudflare.depart(name, current, new_host)
            domain.hosting = (
                HostingMode.SELF_ACME
                if self._rng_cdn.bernoulli(0.6)
                else HostingMode.SELF_MANUAL
            )
            domain.generation += 1
            domain.current_cert = None
            self._set_self_delegation(domain, current, ns_base=new_host)
            self._emit(
                GroundTruthEventType.MANAGED_TLS_DEPARTED,
                current,
                domain=name,
                detail=f"to={new_host}",
            )
            if self._rng_cdn.bernoulli(self.config.post_departure_reissue_probability):
                certificate = self._issue_for(domain, current)
                if certificate is not None:
                    domain.current_cert = certificate
                    self._schedule_renewal(domain, certificate)

    # ---------------------------------------------------------- revocations --

    def _background_compromises(self, current: Day) -> None:
        expected = self.config.key_compromise_rate(current)
        for _ in range(self._rng_rev.poisson(expected)):
            certificate = self._sample_recently_issued(current)
            if certificate is None:
                continue
            key = (certificate.authority_key_id, certificate.serial)
            if key in self._revoked_serials:
                continue
            attacker = f"attacker-{self._rng_rev.randint(1, 10 ** 6)}"
            self.key_store.grant(
                certificate.subject_key, attacker, current, reason="compromise"
            )
            self._emit(
                GroundTruthEventType.KEY_COMPROMISED,
                current,
                certificate_serial=certificate.serial,
                party_id=attacker,
            )
            lag = self._rng_rev.randint(0, self.config.revocation_lag_max_days)
            self._schedule_revocation(
                certificate, current + lag, RevocationReason.KEY_COMPROMISE
            )

    def _sample_recently_issued(self, current: Day) -> Optional[Certificate]:
        """Pick a certificate whose age follows the short compromise delay.

        Long-lived (manually handled) keys are preferred: ephemeral 90-day
        ACME keys live inside automation and leak far less often than keys
        that administrators copy around — which is also what makes reported
        key-compromise staleness so long (Figure 6's ~398-day median).
        """
        fallback: Optional[Certificate] = None
        for _ in range(8):
            age = int(self._rng_rev.expovariate(1.0 / self.config.compromise_delay_mean_days))
            issue_day = current - age
            candidates = self._issued_by_day.get(issue_day)
            if candidates is None:
                pruned = self._issued_counts.get(issue_day)
                if pruned:
                    # The bucket aged out of the validity window: every
                    # certificate in it fails is_valid_on(current).
                    # Consume the one draw choice() would have (both
                    # are a single _randbelow over the bucket size) so
                    # pruning never perturbs the stream.
                    self._rng_rev.randint(0, pruned - 1)
                continue
            certificate = self._rng_rev.choice(candidates)
            if not certificate.is_valid_on(current):
                continue
            if certificate.subject_key.owner_id.startswith("cdn:"):
                continue  # CDN-managed keys never leave the CDN's HSMs
            if certificate.lifetime_days >= 180:
                return certificate
            fallback = certificate
        if fallback is not None and self._rng_rev.bernoulli(0.3):
            return fallback
        return None

    def _other_revocations(self, current: Day) -> None:
        expected = self.config.other_revocation_rate(current)
        reasons = (
            RevocationReason.SUPERSEDED,
            RevocationReason.CESSATION_OF_OPERATION,
            RevocationReason.UNSPECIFIED,
            RevocationReason.AFFILIATION_CHANGED,
        )
        weights = (0.45, 0.33, 0.17, 0.05)
        for _ in range(self._rng_rev.poisson(expected)):
            certificate = self._sample_active_cert(current)
            if certificate is None:
                continue
            if (certificate.authority_key_id, certificate.serial) in self._revoked_serials:
                continue
            reason = self._rng_rev.weighted_choice(reasons, weights)
            self._schedule_revocation(certificate, current, reason)

    def _prune_issuance_window(self, current: Day) -> None:
        """Collapse issuance buckets that can no longer yield a sample.

        A bucket from day *d* only matters to ``_sample_recently_issued``
        while some certificate in it is still valid, i.e. while
        ``d + lifetime >= current``; past ``current - max lifetime`` the
        whole bucket is dead weight. Day buckets are created by the day
        loop in increasing order, so dict order is chronological and the
        prune is a pop-from-the-front. (``_active_certs`` needs no such
        window: ``_sample_active_cert`` already swap-removes expired
        entries, and changing its layout would perturb its draws.)
        """
        cutoff = current - self._max_issued_lifetime
        while self._issued_by_day:
            head = next(iter(self._issued_by_day))
            if head >= cutoff:
                break
            self._issued_counts[head] = len(self._issued_by_day.pop(head))

    def _sample_active_cert(self, current: Day) -> Optional[Certificate]:
        while self._active_certs:
            index = self._rng_rev.randint(0, len(self._active_certs) - 1)
            certificate = self._active_certs[index]
            if certificate.is_valid_on(current):
                return certificate
            # Expired: swap-remove to keep the pool compact.
            self._active_certs[index] = self._active_certs[-1]
            self._active_certs.pop()
        return None

    def _schedule_revocation(
        self, certificate: Certificate, when: Day, reason: RevocationReason
    ) -> None:
        key = (certificate.authority_key_id, certificate.serial)
        if key in self._revoked_serials:
            return
        self._revoked_serials.add(key)
        effective = self._adjust_reason_for_reporting(certificate, when, reason)
        self._seq += 1
        heapq.heappush(
            self._revocations,
            (when, self._seq, certificate.serial, certificate.issuer_name, effective.name),
        )

    def _adjust_reason_for_reporting(
        self, certificate: Certificate, when: Day, reason: RevocationReason
    ) -> RevocationReason:
        """Let's Encrypt only began *publishing* keyCompromise reason codes in
        July 2022 (Figure 4); earlier ISRG revocations are reported under a
        generic reason even when the cause was compromise."""
        if reason is not RevocationReason.KEY_COMPROMISE:
            return reason
        if (
            certificate.issuer_name.startswith("Let's Encrypt")
            and when < self.timeline.lets_encrypt_kc_reporting_start
        ):
            return RevocationReason.SUPERSEDED
        return reason

    def _process_scheduled_revocations(self, current: Day) -> None:
        while self._revocations and self._revocations[0][0] <= current:
            when, _, serial, issuer_name, reason_name = heapq.heappop(self._revocations)
            try:
                publisher = self.ca_registry.publisher(issuer_name)
            except KeyError:
                continue
            certificate = publisher.ca.find_by_serial(serial)
            if certificate is None:
                continue
            if certificate.not_after < when:
                continue  # expired before the CA processed it
            publisher.revoke(certificate, when, RevocationReason[reason_name])
            self._emit(
                GroundTruthEventType.CERT_REVOKED,
                when,
                certificate_serial=serial,
                detail=f"reason={reason_name.lower()}",
            )

    def _should_fire_godaddy_breach(self, current: Day) -> bool:
        return (
            not self._godaddy_breach_fired
            and current == self.timeline.godaddy_breach_disclosure
        )

    def _fire_godaddy_breach(self, current: Day) -> None:
        """The November 2021 managed-WordPress breach: a large batch of
        GoDaddy-issued keys is exposed; revocations roll out over ~6 weeks."""
        self._godaddy_breach_fired = True
        godaddy = self.ca_registry.ca("GoDaddy Secure CA - G2")
        exposure_start = self.timeline.godaddy_breach_exposure_start
        exposed = [
            certificate
            for certificate in godaddy.issued()
            if exposure_start <= certificate.not_before <= current
            and certificate.is_valid_on(current)
            and self._rng_rev.bernoulli(self.config.godaddy_breach_exposure_fraction)
        ]
        end = self.timeline.godaddy_breach_revocation_end
        for certificate in exposed:
            self.key_store.grant(
                certificate.subject_key, "attacker:godaddy-breach", current,
                reason="breach",
            )
            when = self._rng_rev.randint(current, end)
            self._schedule_revocation(certificate, when, RevocationReason.KEY_COMPROMISE)
        self._emit(
            GroundTruthEventType.KEY_COMPROMISED,
            current,
            party_id="attacker:godaddy-breach",
            detail=f"breach_certificates={len(exposed)}",
        )

    # ------------------------------------------------------------------ DNS --

    def _set_self_delegation(
        self, domain: SimDomain, current: Day, ns_base: Optional[str] = None
    ) -> None:
        base = ns_base or f"dns-{1 + (sum(ord(c) for c in domain.name) % 12)}.net"
        obs = DomainObservation(domain.name)
        obs.set(RecordType.NS, (f"ns1.{base}", f"ns2.{base}"))
        obs.set(RecordType.A, (self._stable_ip(domain.name, domain.generation),))
        self._current_obs[domain.name] = obs

    def _set_cloudflare_delegation(self, domain: SimDomain) -> None:
        from repro.ecosystem.cdn import CLOUDFLARE_NAMESERVERS

        obs = DomainObservation(domain.name)
        obs.set(RecordType.NS, CLOUDFLARE_NAMESERVERS)
        obs.set(RecordType.A, ("104.16.1.1",))
        self._current_obs[domain.name] = obs

    def _draw_popularity_rank(self) -> Optional[int]:
        """Top-1M membership for a new domain.

        Most domains never enter the top lists (the paper finds only ~2.5%
        of stale-certificate domains in any biannual Alexa sample). Among
        ranked domains the mass sits in the long tail, with a thin
        log-uniform head so Top-1K rows are populated.
        """
        if not self._rng_pop.bernoulli(0.08):
            return None
        if self._rng_pop.bernoulli(0.15):
            return max(1, int(10 ** self._rng_pop.uniform(0.0, 6.0)))
        return self._rng_pop.randint(1, 1_000_000)

    @staticmethod
    def _stable_ip(name: str, generation: int) -> str:
        # Built-in str hashing is salted per process; fold bytes instead so
        # identical seeds yield identical worlds across runs.
        digest = 17
        for ch in name:
            digest = (digest * 31 + ord(ch)) & 0xFFFFFFFF
        digest = (digest + generation * 7919) & 0xFFFFFFFF
        return f"198.51.{digest % 250}.{(digest // 250) % 250}"

    # ----------------------------------------------------------- CT corpus --

    def _build_log_infrastructure(self) -> LogList:
        log_list = LogList()
        timeline = self.timeline
        unsharded = [
            ("pilot", "Google", timeline.ct_start),
            ("rocketeer", "Google", timeline.ct_start + 400),
            ("digicert-ct1", "DigiCert", timeline.ct_start + 700),
            ("symantec-vega", "Symantec", timeline.ct_start + 500),
        ]
        for log_id, operator, trusted_from in unsharded:
            log = CtLog(log_id, operator)
            log_list.add_log(log)
            log_list.trust(log_id, TrustOperator.CHROME, trusted_from)
        # Symantec's log was distrusted along with its CA (paper cites the
        # community's assertive responses, [62]).
        log_list.distrust("symantec-vega", TrustOperator.CHROME, timeline.limit_825_effective)
        for family, operator in (("argon", "Google"), ("yeti", "DigiCert"), ("nimbus", "Cloudflare")):
            for log in shard_family(family, operator, 2019, 2025):
                log_list.add_log(log)
                log_list.trust(log.log_id, TrustOperator.CHROME, timeline.limit_825_effective)
                log_list.trust(log.log_id, TrustOperator.APPLE, timeline.limit_398_effective)
        return log_list

    def _collect_ct(self) -> CertificateCorpus:
        monitor = CtMonitor(self.log_list, audit=False)
        monitor.poll_all()
        return monitor.finalize_corpus()

    # ---------------------------------------------------------------- WHOIS --

    def _whois_pairs(self) -> List[Tuple[str, Day]]:
        """(domain, creation date) pairs as observable from crawls in the
        paper's WHOIS window: spans already deleted before the window never
        appear; creation dates after the window are unobservable."""
        timeline = self.timeline
        pairs: List[Tuple[str, Day]] = []
        for name in self.registry.all_domains():
            for span in self.registry.spans(name):
                if span.creation_date > timeline.whois_end:
                    continue
                if span.deleted_on is not None and span.deleted_on < timeline.whois_start:
                    continue
                pairs.append((name, span.creation_date))
        return pairs

    def _malicious_spans(self) -> List[Tuple[str, str, Day, Day]]:
        spans: List[Tuple[str, str, Day, Day]] = []
        for name in self.registry.all_domains():
            for span in self.registry.spans(name):
                registrant = self._registrants.get(span.registrant_id)
                if registrant is None or not registrant.malicious:
                    continue
                end = span.deleted_on if span.deleted_on is not None else self.timeline.simulation_end
                spans.append((name, span.registrant_id, span.creation_date, end))
        return spans

    # ---------------------------------------------------------------- misc --

    def _emit(
        self,
        event_type: GroundTruthEventType,
        when: Day,
        domain: Optional[str] = None,
        certificate_serial: Optional[int] = None,
        party_id: Optional[str] = None,
        detail: str = "",
    ) -> None:
        self.ground_truth.append(
            GroundTruthEvent(
                event_type=event_type,
                day=when,
                domain=domain,
                certificate_serial=certificate_serial,
                party_id=party_id,
                detail=detail,
            )
        )

    def _push(self, heap: List[Tuple[Day, int, str]], when: Day, name: str) -> None:
        self._seq += 1
        heapq.heappush(heap, (when, self._seq, name))

    @staticmethod
    def _pop_due(heap: List[Tuple[Day, int, str]], current: Day) -> List[str]:
        due: List[str] = []
        while heap and heap[0][0] <= current:
            due.append(heapq.heappop(heap)[2])
        return due

    def _alive_count_estimate(self) -> int:
        return self._alive_count

    def _sample_alive(self) -> Optional[SimDomain]:
        for _ in range(12):
            if not self._alive_names:
                return None
            index = self._rng_life.randint(0, len(self._alive_names) - 1)
            domain = self._domains.get(self._alive_names[index])
            if domain is not None and domain.alive:
                return domain
            self._alive_names[index] = self._alive_names[-1]
            self._alive_names.pop()
        return None


def simulate_world(config: Optional[WorldConfig] = None) -> WorldDatasets:
    """Convenience: run a full simulation with the given (or default) config."""
    return WorldSimulator(config).run()
