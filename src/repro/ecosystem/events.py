"""Ground-truth event records emitted by the simulator.

These are the *oracle*: every invalidation event that actually happened,
including the ones the paper's conservative detectors cannot see (domain
transfers, pre-release re-registrations). The recall-ablation bench compares
detector output against this stream to quantify the paper's "lower bound"
claim (Section 4.4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.util.dates import Day


class GroundTruthEventType(enum.Enum):
    DOMAIN_REGISTERED = "domain_registered"
    DOMAIN_RENEWED = "domain_renewed"
    DOMAIN_EXPIRED_LAPSED = "domain_expired_lapsed"
    DOMAIN_RE_REGISTERED = "domain_re_registered"
    DOMAIN_TRANSFERRED = "domain_transferred"  # invisible to WHOIS detector
    CERT_ISSUED = "cert_issued"
    CERT_RENEWED = "cert_renewed"
    KEY_COMPROMISED = "key_compromised"
    CERT_REVOKED = "cert_revoked"
    MANAGED_TLS_ENROLLED = "managed_tls_enrolled"
    MANAGED_TLS_DEPARTED = "managed_tls_departed"
    HOSTING_CHANGED = "hosting_changed"


@dataclass(frozen=True)
class GroundTruthEvent:
    """One dated event with optional domain / serial / party references."""

    event_type: GroundTruthEventType
    day: Day
    domain: Optional[str] = None
    certificate_serial: Optional[int] = None
    party_id: Optional[str] = None
    detail: str = ""
