"""Actors of the simulated ecosystem: registrants and hosting arrangements.

Hosting modes mirror the certificate-management options of paper
Section 2.3; modes 2–5 are *managed TLS* — a third-party holds the private
key.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass


class HostingMode(enum.Enum):
    """How a domain serves HTTPS (paper §2.3 options)."""

    SELF_MANUAL = "self_manual"  # option 1: self-hosted, manual issuance
    SELF_ACME = "self_acme"  # option 1: self-hosted, automated issuance
    KEY_UPLOAD_CDN = "key_upload_cdn"  # option 2: own cert, key uploaded to CDN
    CLOUDFLARE_MANAGED = "cloudflare_managed"  # option 3: CDN-managed TLS
    REGISTRAR_MANAGED = "registrar_managed"  # option 4: registrar-managed SSL
    HOSTING_PLATFORM = "hosting_platform"  # option 5: cPanel/WordPress style

    @property
    def is_managed_tls(self) -> bool:
        """Options 2-5: a third-party has private-key access."""
        return self not in (HostingMode.SELF_MANUAL, HostingMode.SELF_ACME)


_registrant_counter = itertools.count(1)


@dataclass
class Registrant:
    """A domain owner (person or organization)."""

    registrant_id: str
    malicious: bool = False

    @classmethod
    def fresh(cls, malicious: bool = False) -> "Registrant":
        return cls(registrant_id=f"registrant-{next(_registrant_counter)}", malicious=malicious)


#: Registrars the simulated registry recognizes (paper cites GoDaddy,
#: Google Domains, and Namecheap refund policies in §3.1).
REGISTRARS = (
    "GoDaddy.com, LLC",
    "Namecheap, Inc.",
    "Google Domains",
    "Tucows Domains Inc.",
    "GMO Internet",
    "OVH SAS",
)
