"""Domain-popularity substrate (the paper's Alexa analysis, Table 6).

Provides Zipf-ranked top lists with biannual samples from 2014–2022 and the
min-rank lookup the paper uses: "the most popular (lowest) rank that a
domain in a stale certificate has appeared" across samples.
"""

from repro.popularity.alexa import (
    BIANNUAL_SAMPLE_DAYS,
    PopularityProvider,
    TopListSample,
    rank_buckets,
)

__all__ = [
    "BIANNUAL_SAMPLE_DAYS",
    "PopularityProvider",
    "TopListSample",
    "rank_buckets",
]
