"""Alexa-style top-1M list with biannual samples.

Each simulated domain carries a heavy-tailed base rank (assigned by the
world simulator from a truncated Zipf over 1..1M). A sample on a given day
contains every domain alive that day, with its base rank perturbed by churn
noise — popularity lists shuffle considerably between samples, which is why
the paper takes the *minimum* rank across all samples per domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.util.dates import Day, day
from repro.util.rng import RngStream

#: Biannual sample days 2014–2022, matching the paper's cadence.
BIANNUAL_SAMPLE_DAYS: Tuple[Day, ...] = tuple(
    day(year, month, 15) for year in range(2014, 2023) for month in (1, 7)
)

#: Table 6's popularity buckets.
RANK_BUCKETS: Tuple[int, ...] = (1_000, 10_000, 100_000, 1_000_000)


@dataclass
class TopListSample:
    """One dated top-list snapshot: e2LD -> rank (1 = most popular)."""

    day: Day
    ranks: Dict[str, int]

    def rank_of(self, domain: str) -> Optional[int]:
        return self.ranks.get(domain)

    def __len__(self) -> int:
        return len(self.ranks)


class PopularityProvider:
    """Builds biannual samples and answers min-rank queries."""

    def __init__(
        self,
        base_ranks: Mapping[str, int],
        alive_on: Optional[Mapping[str, Tuple[Day, Day]]] = None,
        seed: int = 7,
        churn: float = 0.35,
    ) -> None:
        """``base_ranks``: per-domain steady-state rank. ``alive_on``: per-
        domain (first, last) day the domain existed (domains outside their
        span are absent from samples). ``churn``: relative rank jitter per
        sample."""
        self._base_ranks = dict(base_ranks)
        self._alive_on = dict(alive_on) if alive_on else None
        self._rng = RngStream(seed, "popularity-samples")
        self._churn = churn
        self._samples: Dict[Day, TopListSample] = {}

    def sample(self, sample_day: Day) -> TopListSample:
        """The (cached) top-list snapshot for a sample day."""
        cached = self._samples.get(sample_day)
        if cached is not None:
            return cached
        rng = self._rng.split(f"day-{sample_day}")
        ranks: Dict[str, int] = {}
        for domain, base in self._base_ranks.items():
            if self._alive_on is not None:
                span = self._alive_on.get(domain)
                if span is None or not (span[0] <= sample_day <= span[1]):
                    continue
            jitter = 1.0 + rng.uniform(-self._churn, self._churn)
            rank = max(1, min(1_000_000, int(base * jitter)))
            ranks[domain] = rank
        sample = TopListSample(day=sample_day, ranks=ranks)
        self._samples[sample_day] = sample
        return sample

    def biannual_samples(
        self, sample_days: Sequence[Day] = BIANNUAL_SAMPLE_DAYS
    ) -> List[TopListSample]:
        return [self.sample(d) for d in sample_days]

    def min_rank(
        self, domain: str, sample_days: Sequence[Day] = BIANNUAL_SAMPLE_DAYS
    ) -> Optional[int]:
        """Most popular (lowest) rank across samples, as Table 6 uses."""
        best: Optional[int] = None
        for sample_day in sample_days:
            rank = self.sample(sample_day).rank_of(domain)
            if rank is not None and (best is None or rank < best):
                best = rank
        return best


def rank_buckets(
    min_ranks: Iterable[Optional[int]], buckets: Sequence[int] = RANK_BUCKETS
) -> Dict[int, int]:
    """Count domains whose min rank falls within each Top-N bucket.

    Buckets are cumulative, exactly like Table 6: a rank-800 domain counts
    in Top 1K, Top 10K, Top 100K, and Top 1M.
    """
    counts: Dict[int, int] = {bucket: 0 for bucket in buckets}
    for rank in min_ranks:
        if rank is None:
            continue
        for bucket in buckets:
            if rank <= bucket:
                counts[bucket] += 1
    return counts
