"""Incremental streaming detection engine.

The batch :class:`~repro.core.pipeline.MeasurementPipeline` re-reads the
entire world per run; this subsystem turns the same Section 4 methodology
into an always-on monitor. It is organized as:

* :mod:`repro.stream.events` — time-ordered event types (CT entry logged,
  CRL delta published, WHOIS creation observed, DNS snapshot taken) and the
  event-stream builder that derives them from a
  :class:`~repro.core.pipeline.DatasetBundle`;
* :mod:`repro.stream.bus` — a synchronous publish/subscribe event bus with
  queue-depth and latency accounting;
* :mod:`repro.stream.detectors` — incremental wrappers for the three
  staleness detectors, maintaining internal state (seen-cert indexes,
  pending revocations, last NS/CNAME view per domain) and emitting findings
  as events arrive instead of at end-of-batch;
* :mod:`repro.stream.checkpoint` — serialized detector state so a killed
  replay resumes mid-stream and converges to the same findings;
* :mod:`repro.stream.metrics` — :class:`StreamStats` counters surfaced by
  the ``watch`` CLI and the report layer;
* :mod:`repro.stream.engine` — the replay driver that walks a simulated
  world day by day.

The correctness bar, enforced by the test suite: a streaming replay over a
bundle yields a findings set identical to ``MeasurementPipeline.run()`` on
the same bundle — with or without a kill/resume in the middle.
"""

from repro.stream.bus import EventBus
from repro.stream.checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointMismatchError,
    CheckpointStore,
)
from repro.stream.detectors import (
    IncrementalKeyCompromiseDetector,
    IncrementalManagedTlsDetector,
    IncrementalRegistrantChangeDetector,
)
from repro.stream.engine import (
    StreamEngine,
    StreamResult,
    build_event_stream,
    canonical_findings,
    verify_equivalence,
)
from repro.stream.events import (
    CrlDeltaPublished,
    CtEntryLogged,
    DnsSnapshotTaken,
    Event,
    EventType,
    StaleFindingEmitted,
    WhoisCreationObserved,
)
from repro.stream.metrics import StreamStats

__all__ = [
    "EventBus",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointMismatchError",
    "CheckpointStore",
    "IncrementalKeyCompromiseDetector",
    "IncrementalManagedTlsDetector",
    "IncrementalRegistrantChangeDetector",
    "StreamEngine",
    "StreamResult",
    "build_event_stream",
    "canonical_findings",
    "verify_equivalence",
    "CrlDeltaPublished",
    "CtEntryLogged",
    "DnsSnapshotTaken",
    "Event",
    "EventType",
    "StaleFindingEmitted",
    "WhoisCreationObserved",
    "StreamStats",
]
