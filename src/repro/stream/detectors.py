"""Incremental wrappers for the three staleness detectors.

Each wrapper maintains exactly the state its batch counterpart derives per
run — a seen-certificate index, the merged revocation view, per-domain
registry creation dates, the last NS/CNAME view per apex — and emits
:class:`~repro.core.stale.StaleCertificate` findings *as events arrive*.

Correctness contract (enforced by the equivalence tests): fed a bundle's
events in nondecreasing day order, with CT entries dispatched before other
events of the same day, every wrapper converges to the identical findings
set its batch detector produces on the completed bundle. Revisions are
possible mid-stream (a CRL republication reporting an earlier revocation
day replaces a previously emitted finding), so the converged view is read
from :meth:`findings`, not by accumulating the emission feed.

All wrappers serialize their non-derivable state for checkpointing.
Certificates are referenced by dedup fingerprint; the engine re-ingests the
CT prefix on resume to rebuild the (derivable) indexes.

Each wrapper also presents the uniform registry shape the engine iterates
(see :class:`~repro.core.detectors.base.Detector`): a ``name`` matching its
batch counterpart's registry key, the ``event_type`` it consumes,
``consume(event)`` dispatch, ``finalize()``, a ``stats`` property, a
batch-shaped ``detect(events, findings)`` entry point, and
``restore_state(state, resolve_certificate=None)`` plus an
``after_resume()`` hook with one signature across all three.
"""

from __future__ import annotations

import bisect
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.detectors.key_compromise import RevocationJoinStats
from repro.core.detectors.managed_tls import (
    DISAPPEARANCE_LOOKAHEAD_SCANS,
    DepartureJoinStats,
    _domains_under,
    is_cloudflare_delegation,
    is_cloudflare_managed_certificate,
    CLOUDFLARE_MANAGED_SAN_SUFFIX,
)
from repro.core.detectors.registrant_change import (
    RegistrantJoinStats,
    _covers_registration,
)
from repro.core.stale import StaleCertificate, StalenessClass, StaleFindings
from repro.dns.records import RecordType
from repro.pki.certificate import Certificate
from repro.psl.registered import e2ld
from repro.revocation.crl import CrlEntry
from repro.revocation.reasons import RevocationReason
from repro.stream.events import (
    CrlDeltaPublished,
    DnsSnapshotTaken,
    EventType,
    WhoisCreationObserved,
)
from repro.util.dates import Day

RevocationKey = Tuple[str, int]


class IncrementalKeyCompromiseDetector:
    """Streaming revocation cross-referencing (paper §4.1).

    State: the seen-certificate index keyed by (authority key id, serial),
    the earliest-known revocation entry per key (the incremental equivalent
    of :func:`~repro.revocation.crl.merge_crl_series`), and the current
    findings per key. Entries whose certificate has not appeared in CT yet
    stay pending and join retroactively when it does.
    """

    name = "key_compromise"
    event_type = EventType.CRL_DELTA_PUBLISHED

    def __init__(self, revocation_cutoff_day: Optional[Day] = None) -> None:
        self._cutoff = revocation_cutoff_day
        self._certs_by_key: Dict[RevocationKey, Certificate] = {}
        self._best: Dict[RevocationKey, CrlEntry] = {}
        self._findings: Dict[
            RevocationKey, Tuple[StaleCertificate, Optional[StaleCertificate]]
        ] = {}

    # -- event handling -----------------------------------------------------

    def register_certificate(self, certificate: Certificate) -> List[StaleCertificate]:
        key = certificate.revocation_key()
        self._certs_by_key[key] = certificate
        if key in self._best:
            return self._evaluate(key)
        return []

    def handle_crl_delta(self, event: CrlDeltaPublished) -> List[StaleCertificate]:
        emitted: List[StaleCertificate] = []
        for entry in event.entries:
            key = (event.authority_key_id, entry.serial)
            existing = self._best.get(key)
            if existing is not None and entry.revocation_day >= existing.revocation_day:
                continue  # duplicate republication; earliest day wins
            self._best[key] = entry
            if key in self._certs_by_key:
                emitted.extend(self._evaluate(key))
        return emitted

    def consume(self, event: CrlDeltaPublished) -> List[StaleCertificate]:
        """Uniform source-event entry point (registry dispatch)."""
        return self.handle_crl_delta(event)

    def finalize(self) -> List[StaleCertificate]:
        """Nothing buffered: revocations join (or pend) on arrival."""
        return []

    def detect(
        self,
        events: Iterable[CrlDeltaPublished],
        findings: Optional[StaleFindings] = None,
    ) -> StaleFindings:
        """Batch-shaped entry (Detector protocol): consume *events*, then
        report the converged findings. Certificates must have been
        registered beforehand via :meth:`register_certificate`."""
        out = findings if findings is not None else StaleFindings()
        for event in events:
            self.consume(event)
        self.finalize()
        out.extend(self.findings())
        return out

    def _evaluate(self, key: RevocationKey) -> List[StaleCertificate]:
        certificate = self._certs_by_key[key]
        entry = self._best[key]
        if not self._passes_filters(entry, certificate):
            self._findings.pop(key, None)
            return []
        invalidation_day = max(entry.revocation_day, certificate.not_before)
        invalidation_day = min(invalidation_day, certificate.not_after)
        revoked_all = StaleCertificate(
            certificate=certificate,
            staleness_class=StalenessClass.REVOKED_ALL,
            invalidation_day=invalidation_day,
            detail=f"reason={entry.reason.name.lower()}",
        )
        key_compromise = None
        if entry.reason is RevocationReason.KEY_COMPROMISE:
            key_compromise = StaleCertificate(
                certificate=certificate,
                staleness_class=StalenessClass.KEY_COMPROMISE,
                invalidation_day=invalidation_day,
                detail="reason=key_compromise",
            )
        self._findings[key] = (revoked_all, key_compromise)
        return [f for f in (revoked_all, key_compromise) if f is not None]

    def _passes_filters(self, entry: CrlEntry, certificate: Certificate) -> bool:
        if entry.revocation_day < certificate.not_before:
            return False
        if entry.revocation_day > certificate.not_after:
            return False
        if self._cutoff is not None and entry.revocation_day < self._cutoff:
            return False
        return True

    # -- views --------------------------------------------------------------

    def pending_revocations(self) -> Dict[RevocationKey, CrlEntry]:
        """Revocation entries still waiting for their certificate in CT."""
        return {
            key: entry
            for key, entry in self._best.items()
            if key not in self._certs_by_key
        }

    def findings(self) -> List[StaleCertificate]:
        out: List[StaleCertificate] = []
        for revoked_all, key_compromise in self._findings.values():
            out.append(revoked_all)
            if key_compromise is not None:
                out.append(key_compromise)
        return out

    @property
    def stats(self) -> RevocationJoinStats:
        """Join accounting identical to the batch detector's."""
        stats = RevocationJoinStats(crl_entries_merged=len(self._best))
        for key, entry in self._best.items():
            certificate = self._certs_by_key.get(key)
            if certificate is None:
                stats.unmatched += 1
                continue
            stats.matched_in_ct += 1
            if entry.revocation_day < certificate.not_before:
                stats.filtered_revoked_before_valid += 1
            elif entry.revocation_day > certificate.not_after:
                stats.filtered_revoked_after_expiration += 1
            elif self._cutoff is not None and entry.revocation_day < self._cutoff:
                stats.filtered_before_cutoff += 1
            else:
                stats.survivors += 1
        return stats

    # -- checkpointing ------------------------------------------------------

    def checkpoint_state(self) -> dict:
        return {
            "entries": [
                [akid, serial, entry.revocation_day, entry.reason.name]
                for (akid, serial), entry in self._best.items()
            ]
        }

    def restore_state(self, state: dict, resolve_certificate=None) -> None:
        """Restore the merged revocation view; the engine re-ingests the CT
        prefix afterwards, which rebuilds the cert index and findings.
        ``resolve_certificate`` is unused (uniform registry signature)."""
        self._certs_by_key.clear()
        self._findings.clear()
        self._best = {
            (akid, serial): CrlEntry(
                serial=serial,
                revocation_day=revocation_day,
                reason=RevocationReason[reason_name],
            )
            for akid, serial, revocation_day, reason_name in state.get("entries", [])
        }

    def after_resume(self) -> None:
        """Post-CT-reingest hook; nothing extra to rebuild here."""


class IncrementalRegistrantChangeDetector:
    """Streaming registry-creation-date diffing (paper §4.2).

    State: sorted distinct creation dates per domain (eligible TLDs only)
    and the certificate index by e2LD. A creation date later than any seen
    for its domain is a re-registration and joins immediately; an
    out-of-order arrival (possible when feeding the API directly rather
    than through the day-ordered replay driver) triggers a per-domain
    rebuild so the converged pair structure stays identical to the batch
    :func:`~repro.core.detectors.registrant_change.find_re_registrations`.
    """

    name = "registrant_change"
    event_type = EventType.WHOIS_CREATION_OBSERVED

    def __init__(self, tlds: Optional[Sequence[str]] = ("com", "net")) -> None:
        self._tlds = tuple(tlds) if tlds is not None else None
        self._dates_by_domain: Dict[str, List[Day]] = {}
        self._certs_by_e2ld: Dict[str, List[Certificate]] = {}
        self._findings: Dict[Tuple[str, str, Day], StaleCertificate] = {}

    # -- event handling -----------------------------------------------------

    def register_certificate(self, certificate: Certificate) -> List[StaleCertificate]:
        for registrable in certificate.e2lds():
            self._certs_by_e2ld.setdefault(registrable, []).append(certificate)
        return []

    def handle_whois(self, event: WhoisCreationObserved) -> List[StaleCertificate]:
        domain, creation_day = event.domain, event.creation_day
        if self._tlds is not None and domain.rsplit(".", 1)[-1] not in self._tlds:
            return []
        dates = self._dates_by_domain.setdefault(domain, [])
        position = bisect.bisect_left(dates, creation_day)
        if position < len(dates) and dates[position] == creation_day:
            return []  # duplicate crawl observation
        dates.insert(position, creation_day)
        return self._rebuild_domain(domain)

    def consume(self, event: WhoisCreationObserved) -> List[StaleCertificate]:
        """Uniform source-event entry point (registry dispatch)."""
        return self.handle_whois(event)

    def finalize(self) -> List[StaleCertificate]:
        """Nothing buffered: creation dates join on arrival."""
        return []

    def detect(
        self,
        events: Iterable[WhoisCreationObserved],
        findings: Optional[StaleFindings] = None,
    ) -> StaleFindings:
        """Batch-shaped entry (Detector protocol): consume *events*, then
        report the converged findings. Certificates must have been
        registered beforehand via :meth:`register_certificate`."""
        out = findings if findings is not None else StaleFindings()
        for event in events:
            self.consume(event)
        self.finalize()
        out.extend(self.findings())
        return out

    def _rebuild_domain(self, domain: str) -> List[StaleCertificate]:
        """(Re)derive findings for one domain from its date list.

        In-order arrival touches only the newest pair; the rebuild is still
        cheap because domains see a handful of creation dates, and it makes
        out-of-order corrections (revised ``re_registered_after`` details)
        exact.
        """
        dates = self._dates_by_domain[domain]
        registrable = e2ld(domain)
        lookup = registrable if registrable is not None else domain
        candidates = self._certs_by_e2ld.get(lookup, ())
        emitted: List[StaleCertificate] = []
        for previous, current in zip(dates, dates[1:]):
            detail = f"re_registered_after={previous}"
            for certificate in candidates:
                if not certificate.validity.contains(current, strict=True):
                    continue
                if not _covers_registration(certificate, domain):
                    continue
                key = (certificate.dedup_fingerprint(), domain, current)
                existing = self._findings.get(key)
                if existing is not None and existing.detail == detail:
                    continue
                finding = StaleCertificate(
                    certificate=certificate,
                    staleness_class=StalenessClass.REGISTRANT_CHANGE,
                    invalidation_day=current,
                    affected_domain=domain,
                    detail=detail,
                )
                self._findings[key] = finding
                emitted.append(finding)
        return emitted

    # -- views --------------------------------------------------------------

    def findings(self) -> List[StaleCertificate]:
        return list(self._findings.values())

    def re_registration_count(self) -> int:
        return sum(
            max(0, len(dates) - 1) for dates in self._dates_by_domain.values()
        )

    @property
    def stats(self) -> RegistrantJoinStats:
        """Join accounting identical to the batch detector's (derived from
        the converged per-domain date lists, so it matches at any point the
        batch detector could have been run)."""
        stats = RegistrantJoinStats(findings=len(self._findings))
        for domain, dates in self._dates_by_domain.items():
            pairs = max(0, len(dates) - 1)
            if not pairs:
                continue
            stats.re_registration_events += pairs
            registrable = e2ld(domain)
            lookup = registrable if registrable is not None else domain
            if self._certs_by_e2ld.get(lookup):
                stats.events_joining_certificates += pairs
        return stats

    # -- checkpointing ------------------------------------------------------

    def checkpoint_state(self) -> dict:
        return {
            "dates_by_domain": {
                domain: list(dates) for domain, dates in self._dates_by_domain.items()
            }
        }

    def restore_state(self, state: dict, resolve_certificate=None) -> None:
        """``resolve_certificate`` is unused (uniform registry signature)."""
        self._certs_by_e2ld.clear()
        self._findings.clear()
        self._dates_by_domain = {
            domain: sorted(dates)
            for domain, dates in state.get("dates_by_domain", {}).items()
        }

    def rebuild_findings(self) -> None:
        """Call after the engine re-ingested the CT prefix on resume."""
        self._findings.clear()
        for domain in self._dates_by_domain:
            self._rebuild_domain(domain)

    def after_resume(self) -> None:
        """Post-CT-reingest hook: rederive findings from restored dates."""
        self.rebuild_findings()


class IncrementalManagedTlsDetector:
    """Streaming managed-TLS departure detection (paper §4.3).

    State: the Cloudflare-managed certificate index by customer domain, the
    last NS/CNAME view per apex, and pending disappearances waiting for the
    batch detector's transient-scan-loss lookahead (up to
    :data:`DISAPPEARANCE_LOOKAHEAD_SCANS` later snapshots; the first actual
    observation decides, and an exhausted lookahead confirms the loss).
    Unresolved pendings are flushed as departures by :meth:`finalize`,
    matching the batch behaviour at the end of the scan window.
    """

    name = "managed_tls"
    event_type = EventType.DNS_SNAPSHOT_TAKEN

    def __init__(self) -> None:
        self._managed_by_domain: Dict[str, List[Certificate]] = {}
        self._last_view: Dict[str, Tuple[FrozenSet[str], FrozenSet[str]]] = {}
        self._have_snapshot = False
        self._pending: List[dict] = []
        self._departures_detected = 0
        self._findings: Dict[Tuple[str, str, Day], StaleCertificate] = {}

    # -- event handling -----------------------------------------------------

    def register_certificate(self, certificate: Certificate) -> List[StaleCertificate]:
        if not is_cloudflare_managed_certificate(certificate):
            return []
        for san in certificate.fqdns():
            if san.endswith("." + CLOUDFLARE_MANAGED_SAN_SUFFIX):
                continue  # the CDN's own marker SAN
            self._managed_by_domain.setdefault(san, []).append(certificate)
        return []

    def handle_snapshot(self, event: DnsSnapshotTaken) -> List[StaleCertificate]:
        snapshot = event.snapshot
        current: Dict[str, Tuple[FrozenSet[str], FrozenSet[str]]] = {}
        for apex in snapshot.apexes():
            observation = snapshot.get(apex)
            current[apex] = (
                observation.get(RecordType.NS),
                observation.get(RecordType.CNAME),
            )
        emitted: List[StaleCertificate] = []
        if self._have_snapshot:
            # Pendings predate this snapshot: resolve them against it first.
            emitted.extend(self._resolve_pendings(current))
            for apex, (ns_old, cname_old) in self._last_view.items():
                if apex not in current:
                    removed = {
                        target
                        for target in (ns_old | cname_old)
                        if is_cloudflare_delegation(target)
                    }
                    if removed:
                        self._pending.append(
                            {
                                "apex": apex,
                                "departure_day": snapshot.day,
                                "removed": sorted(removed),
                                "remaining": DISAPPEARANCE_LOOKAHEAD_SCANS,
                            }
                        )
                    continue
                ns_new, cname_new = current[apex]
                removed = {
                    target
                    for target in ((ns_old - ns_new) | (cname_old - cname_new))
                    if is_cloudflare_delegation(target)
                }
                if not removed:
                    continue
                if any(is_cloudflare_delegation(t) for t in (ns_new | cname_new)):
                    continue  # partial nameserver shuffle within Cloudflare
                emitted.extend(self._emit_departure(apex, snapshot.day, sorted(removed)))
        self._last_view = current
        self._have_snapshot = True
        return emitted

    def consume(self, event: DnsSnapshotTaken) -> List[StaleCertificate]:
        """Uniform source-event entry point (registry dispatch)."""
        return self.handle_snapshot(event)

    def detect(
        self,
        events: Iterable[DnsSnapshotTaken],
        findings: Optional[StaleFindings] = None,
    ) -> StaleFindings:
        """Batch-shaped entry (Detector protocol): consume *events*, flush
        pendings, then report the converged findings. Certificates must
        have been registered beforehand via :meth:`register_certificate`."""
        out = findings if findings is not None else StaleFindings()
        for event in events:
            self.consume(event)
        self.finalize()
        out.extend(self.findings())
        return out

    def _resolve_pendings(
        self, current: Dict[str, Tuple[FrozenSet[str], FrozenSet[str]]]
    ) -> List[StaleCertificate]:
        emitted: List[StaleCertificate] = []
        unresolved: List[dict] = []
        for pending in self._pending:
            apex = pending["apex"]
            if apex in current:
                ns, cname = current[apex]
                if any(is_cloudflare_delegation(t) for t in (ns | cname)):
                    continue  # back on Cloudflare: transient scan loss
                emitted.extend(
                    self._emit_departure(
                        apex, pending["departure_day"], pending["removed"]
                    )
                )
                continue
            pending["remaining"] -= 1
            if pending["remaining"] <= 0:
                emitted.extend(
                    self._emit_departure(
                        apex, pending["departure_day"], pending["removed"]
                    )
                )
            else:
                unresolved.append(pending)
        self._pending = unresolved
        return emitted

    def _emit_departure(
        self, apex: str, departure_day: Day, removed: Sequence[str]
    ) -> List[StaleCertificate]:
        self._departures_detected += 1
        detail = f"left={','.join(removed)}"
        emitted: List[StaleCertificate] = []
        for domain, certificates in _domains_under(self._managed_by_domain, apex):
            for certificate in certificates:
                if not certificate.is_valid_on(departure_day):
                    continue
                key = (certificate.dedup_fingerprint(), domain, departure_day)
                if key in self._findings:
                    continue
                finding = StaleCertificate(
                    certificate=certificate,
                    staleness_class=StalenessClass.MANAGED_TLS_DEPARTURE,
                    invalidation_day=departure_day,
                    affected_domain=domain,
                    detail=detail,
                )
                self._findings[key] = finding
                emitted.append(finding)
        return emitted

    def finalize(self) -> List[StaleCertificate]:
        """Flush pendings the scan window ended before resolving."""
        emitted: List[StaleCertificate] = []
        for pending in self._pending:
            emitted.extend(
                self._emit_departure(
                    pending["apex"], pending["departure_day"], pending["removed"]
                )
            )
        self._pending = []
        return emitted

    # -- views --------------------------------------------------------------

    def findings(self) -> List[StaleCertificate]:
        return list(self._findings.values())

    def pending_departures(self) -> int:
        return len(self._pending)

    @property
    def stats(self) -> DepartureJoinStats:
        """Join accounting in the batch detector's shape. The departure
        count is the number this stream has *emitted* so far (the batch
        detector counts a completed window's departures in one shot)."""
        return DepartureJoinStats(
            managed_certificates_indexed=len(
                {
                    certificate.dedup_fingerprint()
                    for certificates in self._managed_by_domain.values()
                    for certificate in certificates
                }
            ),
            departures_detected=self._departures_detected,
            findings=len(self._findings),
        )

    # -- checkpointing ------------------------------------------------------

    def checkpoint_state(self) -> dict:
        return {
            "have_snapshot": self._have_snapshot,
            "last_view": {
                apex: {"ns": sorted(ns), "cname": sorted(cname)}
                for apex, (ns, cname) in self._last_view.items()
            },
            "pending": [dict(pending) for pending in self._pending],
            "findings": [
                [fingerprint, domain, finding.invalidation_day, finding.detail]
                for (fingerprint, domain, _), finding in self._findings.items()
            ],
        }

    def restore_state(self, state: dict, resolve_certificate=None) -> None:
        """``resolve_certificate(fingerprint) -> Certificate`` maps the
        checkpoint's certificate references back onto the bundle corpus;
        required here (unlike the other detectors) because findings are
        part of the non-derivable state."""
        if resolve_certificate is None:
            raise ValueError("managed-TLS restore requires resolve_certificate")
        self._managed_by_domain.clear()
        self._have_snapshot = state.get("have_snapshot", False)
        self._last_view = {
            apex: (frozenset(view.get("ns", ())), frozenset(view.get("cname", ())))
            for apex, view in state.get("last_view", {}).items()
        }
        self._pending = [dict(pending) for pending in state.get("pending", [])]
        self._departures_detected = 0  # counter restarts; stats are since-resume
        self._findings = {}
        for fingerprint, domain, departure_day, detail in state.get("findings", []):
            certificate = resolve_certificate(fingerprint)
            self._findings[(fingerprint, domain, departure_day)] = StaleCertificate(
                certificate=certificate,
                staleness_class=StalenessClass.MANAGED_TLS_DEPARTURE,
                invalidation_day=departure_day,
                affected_domain=domain,
                detail=detail,
            )

    def after_resume(self) -> None:
        """Post-CT-reingest hook; findings were restored, nothing to do."""
