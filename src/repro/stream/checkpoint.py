"""Checkpoint persistence for the streaming engine.

A checkpoint is one gzipped JSON document holding the replay cursor (last
fully processed event day), the cumulative :class:`StreamStats`, and each
detector's non-derivable state. Certificates are referenced by dedup
fingerprint only — the engine re-ingests the CT prefix from the bundle on
resume, so checkpoints stay small (kilobytes, not the corpus).

Writes are atomic (tmp + rename via :func:`repro.util.storage.dump_json`),
so a kill mid-checkpoint leaves the previous checkpoint intact. A bundle
fingerprint guards against resuming against a different world; mismatch
raises :class:`CheckpointMismatchError` rather than silently diverging, and
an unreadable (truncated/corrupt) file raises :class:`CheckpointCorruptError`
naming the path instead of leaking a raw gzip/JSON traceback.
"""

from __future__ import annotations

import os
import zlib
from typing import Optional

from repro.util.storage import dump_json, load_json

#: Bumped whenever the checkpoint layout changes incompatibly.
CHECKPOINT_FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """Base class for checkpoint load/restore failures."""


class CheckpointMismatchError(CheckpointError):
    """The checkpoint on disk does not belong to the bundle being replayed."""


class CheckpointCorruptError(CheckpointError):
    """The checkpoint file exists but cannot be read back.

    Raised for truncated gzip streams, corrupt compressed data, and
    malformed JSON — a kill mid-:func:`~repro.util.storage.dump_json`
    cannot produce these (writes are atomic), but disk faults, manual
    edits, and copied partial files can.
    """


class CheckpointStore:
    """Single-slot checkpoint in a directory (latest state wins)."""

    FILENAME = "stream-checkpoint.json.gz"

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.path = os.path.join(directory, self.FILENAME)

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def save(self, state: dict) -> str:
        os.makedirs(self.directory, exist_ok=True)
        document = dict(state)
        document["format_version"] = CHECKPOINT_FORMAT_VERSION
        return dump_json(self.path, document)

    def load(self) -> Optional[dict]:
        """The stored state, or None when no checkpoint exists yet.

        Raises :class:`CheckpointCorruptError` for unreadable files and
        :class:`CheckpointMismatchError` for incompatible format versions.
        """
        if not self.exists():
            return None
        try:
            # gzip raises BadGzipFile (an OSError) on corrupt headers,
            # EOFError on truncation, zlib.error on corrupt deflate data;
            # load_json wraps malformed JSON into ValueError.
            document = load_json(self.path)
        except (EOFError, OSError, ValueError, zlib.error) as error:
            raise CheckpointCorruptError(
                f"checkpoint {self.path} is truncated or corrupt ({error}); "
                "delete it (or run without --resume) to start fresh"
            ) from error
        if not isinstance(document, dict):
            raise CheckpointCorruptError(
                f"checkpoint {self.path} does not hold a checkpoint document"
            )
        version = document.get("format_version")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointMismatchError(
                f"checkpoint format v{version} != supported v{CHECKPOINT_FORMAT_VERSION}"
            )
        return document

    def clear(self) -> None:
        if self.exists():
            os.remove(self.path)
