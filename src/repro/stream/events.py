"""Time-ordered event types for the streaming engine.

The longitudinal datasets of the paper are all natural event streams: CT
logs grow monotonically, CRLs republish daily with occasional new entries,
WHOIS crawls surface new registry creation dates, and the daily DNS scan
produces one snapshot per day. Each stream maps to one event type here.

Within a day, events dispatch in dataset order — CT first, then CRL, then
WHOIS, then DNS — so that every join a detector performs on day *d* sees
exactly the certificates known to CT by *d* (the same visibility the batch
pipeline has over a completed corpus).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.core.stale import StaleCertificate
from repro.dns.snapshots import DailySnapshot
from repro.pki.certificate import Certificate
from repro.revocation.crl import CrlEntry
from repro.util.dates import Day, day_to_iso


class EventType(enum.Enum):
    """Streamed dataset events plus the derived finding event."""

    CT_ENTRY_LOGGED = "ct_entry_logged"
    CRL_DELTA_PUBLISHED = "crl_delta_published"
    WHOIS_CREATION_OBSERVED = "whois_creation_observed"
    DNS_SNAPSHOT_TAKEN = "dns_snapshot_taken"
    STALE_FINDING = "stale_finding"


#: Within-day dispatch priority (lower dispatches first). CT entries must
#: precede every join source so incremental joins see the same certificate
#: visibility the batch pipeline has.
_DISPATCH_PRIORITY = {
    EventType.CT_ENTRY_LOGGED: 0,
    EventType.CRL_DELTA_PUBLISHED: 1,
    EventType.WHOIS_CREATION_OBSERVED: 2,
    EventType.DNS_SNAPSHOT_TAKEN: 3,
    EventType.STALE_FINDING: 4,
}


@dataclass(frozen=True)
class Event:
    """Base event: a day plus a per-stream sequence number.

    ``sequence`` preserves source order among same-day events of one type
    (and makes the overall sort stable and deterministic).
    """

    day: Day
    sequence: int = 0

    @property
    def event_type(self) -> EventType:  # pragma: no cover - overridden
        raise NotImplementedError

    def sort_key(self) -> Tuple[int, int, int]:
        return (self.day, _DISPATCH_PRIORITY[self.event_type], self.sequence)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({day_to_iso(self.day)}, #{self.sequence})"


@dataclass(frozen=True, repr=False)
class CtEntryLogged(Event):
    """A deduplicated certificate became visible in CT (at its notBefore)."""

    certificate: Certificate = None  # type: ignore[assignment]

    @property
    def event_type(self) -> EventType:
        return EventType.CT_ENTRY_LOGGED


@dataclass(frozen=True, repr=False)
class CrlDeltaPublished(Event):
    """New (or revised) entries of one CRL publication.

    Daily CRL downloads overlap almost entirely; the event carries only the
    entries that are new for their (authority key id, serial) key — or that
    report an earlier revocation day than previously seen, the
    republication glitch :func:`repro.revocation.crl.merge_crl_series`
    defends against.
    """

    issuer_name: str = ""
    authority_key_id: str = ""
    entries: Tuple[CrlEntry, ...] = ()

    @property
    def event_type(self) -> EventType:
        return EventType.CRL_DELTA_PUBLISHED


@dataclass(frozen=True, repr=False)
class WhoisCreationObserved(Event):
    """A (domain, registry creation date) pair surfaced by WHOIS crawling."""

    domain: str = ""
    creation_day: Day = 0

    @property
    def event_type(self) -> EventType:
        return EventType.WHOIS_CREATION_OBSERVED


@dataclass(frozen=True, repr=False)
class DnsSnapshotTaken(Event):
    """One day of the daily DNS scan completed."""

    snapshot: DailySnapshot = None  # type: ignore[assignment]

    @property
    def event_type(self) -> EventType:
        return EventType.DNS_SNAPSHOT_TAKEN


@dataclass(frozen=True, repr=False)
class StaleFindingEmitted(Event):
    """A detector concluded a certificate is stale (the live output feed).

    A later event may *revise* an earlier one for the same certificate (a
    CRL republication reporting an earlier revocation day); consumers that
    need the converged view read ``StreamResult.findings`` instead.
    """

    finding: StaleCertificate = None  # type: ignore[assignment]

    @property
    def event_type(self) -> EventType:
        return EventType.STALE_FINDING
