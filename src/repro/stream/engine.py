"""Replay driver: walks a simulated world day by day through the event bus.

:func:`build_event_stream` derives the time-ordered event list from a
:class:`~repro.core.pipeline.DatasetBundle` — CT entries at their notBefore
day, compacted CRL deltas at each CRL's thisUpdate, distinct WHOIS creation
pairs at their creation day, DNS snapshots at their scan day.
:class:`StreamEngine` dispatches one day at a time, feeding the incremental
detectors and republishing their findings as ``STALE_FINDING`` events, with
optional periodic checkpointing and kill/resume.

The equivalence guarantee (see :func:`verify_equivalence`): a full replay
produces the same findings set as ``MeasurementPipeline.run()`` over the
same bundle.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from itertools import groupby
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.detectors.key_compromise import RevocationJoinStats
from repro.core.pipeline import DatasetBundle, MeasurementPipeline, PipelineResult
from repro.core.stale import StaleCertificate, StalenessClass, StaleFindings
from repro.revocation.crl import CrlEntry
from repro.stream.bus import EventBus
from repro.stream.checkpoint import CheckpointMismatchError, CheckpointStore
from repro.stream.detectors import (
    IncrementalKeyCompromiseDetector,
    IncrementalManagedTlsDetector,
    IncrementalRegistrantChangeDetector,
)
from repro.stream.events import (
    CrlDeltaPublished,
    CtEntryLogged,
    DnsSnapshotTaken,
    Event,
    EventType,
    StaleFindingEmitted,
    WhoisCreationObserved,
)
from repro.obs import get_heartbeat, phase_progress, span
from repro.stream.metrics import StreamStats
from repro.util.dates import Day

#: Default periodic checkpoint cadence, in processed event-days.
DEFAULT_CHECKPOINT_EVERY_DAYS = 30

FindingCallback = Callable[[StaleFindingEmitted], None]


def bundle_fingerprint(bundle: DatasetBundle) -> str:
    """Cheap identity for checkpoint/bundle matching (not cryptographic)."""
    digest = hashlib.sha256()
    parts = (
        str(len(bundle.corpus)),
        str(len(bundle.crls)),
        str(sum(len(crl) for crl in bundle.crls)),
        str(len(bundle.whois_creation_pairs)),
        str(len(bundle.dns_snapshots) if bundle.dns_snapshots is not None else 0),
        repr(sorted((cls.value, window) for cls, window in bundle.windows.items())),
    )
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"|")
    return digest.hexdigest()[:16]


def build_event_stream(bundle: DatasetBundle) -> List[Event]:
    """Derive the sorted event list a live deployment would have observed.

    CRL publications are *compacted*: each ``CrlDeltaPublished`` carries
    only the entries that are new for their (authority key id, serial) — or
    that improve on a previously published revocation day, mirroring the
    earliest-day-wins rule of
    :func:`~repro.revocation.crl.merge_crl_series`. Daily republications of
    an unchanged CRL therefore produce no event at all.
    """
    events: List[Event] = []

    certificates = sorted(
        bundle.corpus.certificates(),
        key=lambda c: (c.not_before, c.dedup_fingerprint()),
    )
    for sequence, certificate in enumerate(certificates):
        events.append(
            CtEntryLogged(
                day=certificate.not_before, sequence=sequence, certificate=certificate
            )
        )

    best_published: Dict[Tuple[str, int], Day] = {}
    sequence = 0
    for crl in sorted(
        bundle.crls, key=lambda c: (c.this_update, c.authority_key_id, c.crl_number)
    ):
        delta: List[CrlEntry] = []
        for entry in crl.entries:
            key = (crl.authority_key_id, entry.serial)
            published = best_published.get(key)
            if published is not None and entry.revocation_day >= published:
                continue
            best_published[key] = entry.revocation_day
            delta.append(entry)
        if not delta:
            continue
        events.append(
            CrlDeltaPublished(
                day=crl.this_update,
                sequence=sequence,
                issuer_name=crl.issuer_name,
                authority_key_id=crl.authority_key_id,
                entries=tuple(delta),
            )
        )
        sequence += 1

    seen_pairs: Set[Tuple[str, Day]] = set()
    sequence = 0
    for domain, creation_day in sorted(bundle.whois_creation_pairs):
        if (domain, creation_day) in seen_pairs:
            continue  # the same pair surfaces in many crawls
        seen_pairs.add((domain, creation_day))
        events.append(
            WhoisCreationObserved(
                day=creation_day,
                sequence=sequence,
                domain=domain,
                creation_day=creation_day,
            )
        )
        sequence += 1

    if bundle.dns_snapshots is not None and len(bundle.dns_snapshots) >= 2:
        for sequence, scan_day in enumerate(bundle.dns_snapshots.days()):
            events.append(
                DnsSnapshotTaken(
                    day=scan_day,
                    sequence=sequence,
                    snapshot=bundle.dns_snapshots.get(scan_day),
                )
            )

    events.sort(key=Event.sort_key)
    return events


@dataclass
class StreamResult:
    """Converged output of one (possibly partial) streaming replay."""

    findings: StaleFindings
    stats: StreamStats
    revocation_stats: Optional[RevocationJoinStats] = None
    windows: Dict[StalenessClass, Tuple[Day, Day]] = field(default_factory=dict)
    #: Whether the whole stream was consumed and detectors finalized. A
    #: partial (``max_days``/``through_day``-limited) run reports the
    #: provisional findings as of its cursor.
    complete: bool = False
    cursor_day: Optional[Day] = None

    def to_pipeline_result(self) -> PipelineResult:
        """Adapt to the batch result type the report layer consumes."""
        return PipelineResult(
            findings=self.findings,
            revocation_stats=self.revocation_stats,
            windows=dict(self.windows),
        )


class StreamEngine:
    """Day-by-day replay of a bundle through the incremental detectors.

    One engine instance runs one replay (optionally resumed from a
    checkpoint at the start). ``on_finding`` is invoked for every
    ``STALE_FINDING`` event as it is dispatched — the live advisory feed.
    """

    def __init__(
        self,
        bundle: DatasetBundle,
        revocation_cutoff_day: Optional[Day] = None,
        whois_tlds: Optional[Sequence[str]] = ("com", "net"),
        checkpoint_store: Optional[CheckpointStore] = None,
        checkpoint_every_days: int = DEFAULT_CHECKPOINT_EVERY_DAYS,
        on_finding: Optional[FindingCallback] = None,
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        """``registry`` overrides the shared obs registry the engine's
        :class:`StreamStats` are bridged onto (default: the process-wide
        registry from :func:`repro.obs.get_registry`)."""
        from repro.obs import get_registry

        self._bundle = bundle
        self._fingerprint = bundle_fingerprint(bundle)
        self._store = checkpoint_store
        self._checkpoint_every = max(1, checkpoint_every_days)
        self._on_finding = on_finding
        self._registry = registry if registry is not None else get_registry()

        self.stats = StreamStats()
        self.stats.bind_registry(self._registry)
        self.bus = EventBus(self.stats)
        self._kc = IncrementalKeyCompromiseDetector(revocation_cutoff_day)
        self._rc = IncrementalRegistrantChangeDetector(whois_tlds)
        self._mt = IncrementalManagedTlsDetector()
        #: Registry the engine iterates everywhere (dispatch, finalize,
        #: checkpoint, restore, materialize). Order fixes the emission and
        #: materialization order, matching the batch registry's.
        self._detectors = (self._kc, self._rc, self._mt)

        self._cursor: Optional[Day] = None
        self._current_day: Optional[Day] = None
        self._finding_sequence = 0
        self._finalized = False

        self.bus.subscribe(EventType.CT_ENTRY_LOGGED, self._on_ct_entry)
        for detector in self._detectors:
            self.bus.subscribe(detector.event_type, self._make_handler(detector))
        self.bus.subscribe(EventType.STALE_FINDING, self._on_stale_finding)

    # -- handlers ------------------------------------------------------------

    def _on_ct_entry(self, event: CtEntryLogged) -> None:
        for detector in self._detectors:
            self._emit(detector.register_certificate(event.certificate))

    def _make_handler(self, detector):
        def handle(event: Event) -> None:
            self._emit(detector.consume(event))

        return handle

    def _on_stale_finding(self, event: StaleFindingEmitted) -> None:
        self.stats.record_finding(event.finding.staleness_class.value)
        if self._on_finding is not None:
            self._on_finding(event)

    def _emit(self, findings: List[StaleCertificate]) -> None:
        day = self._current_day if self._current_day is not None else 0
        for finding in findings:
            self.bus.publish(
                StaleFindingEmitted(
                    day=day, sequence=self._finding_sequence, finding=finding
                )
            )
            self._finding_sequence += 1

    # -- replay --------------------------------------------------------------

    def replay(
        self,
        max_days: Optional[int] = None,
        through_day: Optional[Day] = None,
        resume: bool = False,
    ) -> StreamResult:
        """Replay the bundle's event stream and return the converged result.

        ``max_days`` limits how many event-days this run processes (for
        partial runs and kill tests); ``through_day`` stops after that
        absolute day. ``resume=True`` restores the checkpoint first (a
        missing checkpoint silently degrades to a fresh run). Detectors are
        finalized — and the result marked ``complete`` — only when the
        stream is fully consumed.
        """
        if resume and self._store is not None:
            self._restore()

        with span("stream_replay"):
            events = build_event_stream(self._bundle)
            day_progress = phase_progress("stream_days", self._registry)
            event_progress = phase_progress("stream_events", self._registry)
            total_days = len({event.day for event in events})
            day_progress.set_total(total_days)
            event_progress.set_total(len(events))
            days_this_run = 0
            since_checkpoint = 0
            exhausted = True
            for day, day_events in groupby(events, key=lambda event: event.day):
                day_events = list(day_events)
                if self._cursor is not None and day <= self._cursor:
                    # Skipped prefix still counts as done work: the resumed
                    # timeline starts from the checkpoint's position, not 0.
                    day_progress.add(1)
                    event_progress.add(len(day_events))
                    continue  # already processed before the kill
                if through_day is not None and day > through_day:
                    exhausted = False
                    break
                if max_days is not None and days_this_run >= max_days:
                    exhausted = False
                    break
                self._current_day = day
                self.bus.publish_all(day_events)
                self.bus.drain()
                self.stats.record_day(day)
                day_progress.add(1)
                event_progress.add(len(day_events))
                self._cursor = day
                days_this_run += 1
                since_checkpoint += 1
                if (
                    self._store is not None
                    and since_checkpoint >= self._checkpoint_every
                ):
                    self._checkpoint()
                    since_checkpoint = 0

            if exhausted and not self._finalized:
                with span("stream_finalize"):
                    for detector in self._detectors:
                        self._emit(detector.finalize())
                    self.bus.drain()
                self._finalized = True
            if self._store is not None:
                self._checkpoint()

        return StreamResult(
            findings=self._materialize(),
            stats=self.stats,
            revocation_stats=self._kc.stats if self._bundle.crls else None,
            windows=dict(self._bundle.windows),
            complete=self._finalized,
            cursor_day=self._cursor,
        )

    def _materialize(self) -> StaleFindings:
        findings = StaleFindings()
        for detector in self._detectors:
            findings.extend(detector.findings())
        return findings

    # -- checkpointing -------------------------------------------------------

    def _checkpoint(self) -> None:
        with span("stream_checkpoint", day=self._cursor):
            self._write_checkpoint()

    def _write_checkpoint(self) -> None:
        state = {
            "bundle_fingerprint": self._fingerprint,
            "cursor_day": self._cursor,
            "finalized": self._finalized,
            "stats": self.stats.to_record(),
            "detectors": {
                detector.name: detector.checkpoint_state()
                for detector in self._detectors
            },
        }
        self._store.save(state)
        self.stats.record_checkpoint()

    def _restore(self) -> bool:
        state = self._store.load()
        if state is None:
            return False
        if state.get("bundle_fingerprint") != self._fingerprint:
            raise CheckpointMismatchError(
                "checkpoint belongs to a different dataset bundle "
                f"({state.get('bundle_fingerprint')} != {self._fingerprint})"
            )
        self._cursor = state.get("cursor_day")
        self._finalized = state.get("finalized", False)
        heartbeat = get_heartbeat()
        if heartbeat is not None:
            # The resumed run writes a fresh timeline; this marker ties it
            # back to the checkpoint it picked up from.
            heartbeat.mark(resumed_from=self._cursor)
        self.stats.bind_registry(None)  # detach the pre-restore stats
        self.stats = StreamStats.from_record(state.get("stats", {}))
        self.stats.resumed_from_day = self._cursor
        # Rebind so the registry is seeded with the checkpointed totals
        # and go-forward records keep mirroring onto it.
        self.stats.bind_registry(self._registry)
        self.bus.stats = self.stats

        detectors = state.get("detectors", {})
        by_fingerprint = {
            certificate.dedup_fingerprint(): certificate
            for certificate in self._bundle.corpus.certificates()
        }
        for detector in self._detectors:
            detector.restore_state(
                detectors.get(detector.name, {}), by_fingerprint.__getitem__
            )

        # Re-ingest the CT prefix (certificates already logged by the
        # cursor) to rebuild the derivable seen-certificate indexes; the
        # key-compromise findings rebuild from the restored join state as a
        # side effect, and each detector's after_resume hook rederives
        # whatever else its state implies (registrant-change findings).
        if self._cursor is not None:
            for certificate in sorted(
                self._bundle.corpus.certificates(),
                key=lambda c: (c.not_before, c.dedup_fingerprint()),
            ):
                if certificate.not_before > self._cursor:
                    break
                for detector in self._detectors:
                    detector.register_certificate(certificate)
            for detector in self._detectors:
                detector.after_resume()
        return True


# -- batch equivalence -------------------------------------------------------


def canonical_findings(
    findings: StaleFindings,
) -> List[Tuple[str, str, Day, str, str]]:
    """Order-free canonical form of a findings set for comparison."""
    return sorted(
        (
            finding.staleness_class.value,
            finding.certificate.dedup_fingerprint(),
            finding.invalidation_day,
            finding.affected_domain or "",
            finding.detail,
        )
        for finding in findings.all_findings()
    )


def verify_equivalence(
    bundle: DatasetBundle,
    stream_findings: StaleFindings,
    revocation_cutoff_day: Optional[Day] = None,
    whois_tlds: Optional[Sequence[str]] = ("com", "net"),
) -> Tuple[bool, PipelineResult]:
    """Compare streaming findings against a fresh batch pipeline run."""
    batch = MeasurementPipeline(
        bundle, revocation_cutoff_day=revocation_cutoff_day, whois_tlds=whois_tlds
    ).run()
    matches = canonical_findings(batch.findings) == canonical_findings(stream_findings)
    return matches, batch
