"""Stream metrics: per-event-type counters, detector latency, queue depth.

A long-running monitor needs the operational numbers the batch pipeline
never had to report: how many events of each type flowed, how long handler
dispatch takes, how deep the bus queue gets, and how many findings each
staleness class has produced. :class:`StreamStats` accumulates them and
round-trips through checkpoints so counters survive a kill/resume.

:meth:`StreamStats.bind_registry` bridges the stats onto a shared
:class:`~repro.obs.MetricsRegistry` so watch-mode counters and batch
counters share one namespace (the findings counter a shard worker
increments is the same series the stream engine increments). The bound
registry is deliberately *not* serialized — checkpoint round-trip is
byte-identical with or without a bridge — and binding a restored stats
object seeds the registry with the checkpointed totals first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs import names
from repro.obs.metrics import MetricsRegistry
from repro.util.dates import Day, day_to_iso


@dataclass
class StreamStats:
    """Counters for one streaming replay (cumulative across resumes)."""

    events_by_type: Dict[str, int] = field(default_factory=dict)
    findings_by_class: Dict[str, int] = field(default_factory=dict)
    handler_seconds_by_type: Dict[str, float] = field(default_factory=dict)
    days_processed: int = 0
    first_event_day: Optional[Day] = None
    last_event_day: Optional[Day] = None
    max_queue_depth: int = 0
    checkpoints_written: int = 0
    resumed_from_day: Optional[Day] = None

    # The obs bridge (never serialized; rebound after a checkpoint restore).
    _registry = None

    # -- obs bridge ----------------------------------------------------------

    def bind_registry(self, registry: Optional[MetricsRegistry]) -> None:
        """Mirror these stats onto *registry* (pass ``None`` to unbind).

        Counts already accumulated — e.g. restored from a checkpoint —
        are seeded into the registry immediately; subsequent records
        mirror incrementally. Handler latencies are mirrored into a
        histogram going forward only (a checkpoint stores per-type sums,
        not bucketized samples).
        """
        self._registry = registry
        if registry is None:
            self._c_events = self._c_findings = self._c_days = None
            self._c_checkpoints = self._g_queue = self._h_handler = None
            return
        self._c_events = registry.counter(
            names.STREAM_EVENTS, names.STREAM_EVENTS_HELP, labels=("type",)
        )
        self._c_findings = registry.counter(
            names.FINDINGS_TOTAL, names.FINDINGS_TOTAL_HELP,
            labels=("staleness_class",),
        )
        self._c_days = registry.counter(names.STREAM_DAYS, names.STREAM_DAYS_HELP)
        self._c_checkpoints = registry.counter(
            names.STREAM_CHECKPOINTS, names.STREAM_CHECKPOINTS_HELP
        )
        self._g_queue = registry.gauge(
            names.STREAM_MAX_QUEUE_DEPTH, names.STREAM_MAX_QUEUE_DEPTH_HELP
        )
        self._h_handler = registry.histogram(
            names.STREAM_HANDLER_SECONDS, names.STREAM_HANDLER_SECONDS_HELP,
            labels=("type",),
        )
        for type_value, count in self.events_by_type.items():
            self._c_events.inc(count, type=type_value)
        for class_value, count in self.findings_by_class.items():
            self._c_findings.inc(count, staleness_class=class_value)
        if self.days_processed:
            self._c_days.inc(self.days_processed)
        if self.checkpoints_written:
            self._c_checkpoints.inc(self.checkpoints_written)
        if self.max_queue_depth:
            self._g_queue.set_max(self.max_queue_depth)

    # -- recording ----------------------------------------------------------

    def record_event(self, type_value: str, elapsed_seconds: float) -> None:
        self.events_by_type[type_value] = self.events_by_type.get(type_value, 0) + 1
        self.handler_seconds_by_type[type_value] = (
            self.handler_seconds_by_type.get(type_value, 0.0) + elapsed_seconds
        )
        if self._registry is not None:
            self._c_events.inc(1, type=type_value)
            self._h_handler.observe(elapsed_seconds, type=type_value)

    def record_finding(self, class_value: str) -> None:
        self.findings_by_class[class_value] = (
            self.findings_by_class.get(class_value, 0) + 1
        )
        if self._registry is not None:
            self._c_findings.inc(1, staleness_class=class_value)

    def record_day(self, event_day: Day) -> None:
        self.days_processed += 1
        if self.first_event_day is None or event_day < self.first_event_day:
            self.first_event_day = event_day
        if self.last_event_day is None or event_day > self.last_event_day:
            self.last_event_day = event_day
        if self._registry is not None:
            self._c_days.inc(1)

    def record_checkpoint(self) -> None:
        self.checkpoints_written += 1
        if self._registry is not None:
            self._c_checkpoints.inc(1)

    def observe_queue_depth(self, depth: int) -> None:
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
            if self._registry is not None:
                self._g_queue.set_max(depth)

    # -- views --------------------------------------------------------------

    @property
    def events_total(self) -> int:
        return sum(self.events_by_type.values())

    @property
    def findings_total(self) -> int:
        return sum(self.findings_by_class.values())

    def mean_latency_ms(self, type_value: str) -> float:
        count = self.events_by_type.get(type_value, 0)
        if not count:
            return 0.0
        return 1000.0 * self.handler_seconds_by_type.get(type_value, 0.0) / count

    def summary_rows(self) -> List[Tuple[str, object]]:
        """(quantity, value) rows for the report layer."""
        rows: List[Tuple[str, object]] = [
            ("days processed", self.days_processed),
            ("events total", self.events_total),
        ]
        for type_value in sorted(self.events_by_type):
            rows.append(
                (
                    f"events: {type_value}",
                    f"{self.events_by_type[type_value]:,} "
                    f"({self.mean_latency_ms(type_value):.3f} ms/event)",
                )
            )
        for class_value in sorted(self.findings_by_class):
            rows.append((f"findings: {class_value}", self.findings_by_class[class_value]))
        rows.append(("max queue depth", self.max_queue_depth))
        rows.append(("checkpoints written", self.checkpoints_written))
        if self.resumed_from_day is not None:
            rows.append(("resumed from", day_to_iso(self.resumed_from_day)))
        if self.first_event_day is not None and self.last_event_day is not None:
            rows.append(
                (
                    "event-day range",
                    f"{day_to_iso(self.first_event_day)} - "
                    f"{day_to_iso(self.last_event_day)}",
                )
            )
        return rows

    # -- persistence --------------------------------------------------------

    def to_record(self) -> dict:
        return {
            "events_by_type": dict(self.events_by_type),
            "findings_by_class": dict(self.findings_by_class),
            "handler_seconds_by_type": dict(self.handler_seconds_by_type),
            "days_processed": self.days_processed,
            "first_event_day": self.first_event_day,
            "last_event_day": self.last_event_day,
            "max_queue_depth": self.max_queue_depth,
            "checkpoints_written": self.checkpoints_written,
            "resumed_from_day": self.resumed_from_day,
        }

    @classmethod
    def from_record(cls, record: dict) -> "StreamStats":
        return cls(
            events_by_type=dict(record.get("events_by_type", {})),
            findings_by_class=dict(record.get("findings_by_class", {})),
            handler_seconds_by_type=dict(record.get("handler_seconds_by_type", {})),
            days_processed=record.get("days_processed", 0),
            first_event_day=record.get("first_event_day"),
            last_event_day=record.get("last_event_day"),
            max_queue_depth=record.get("max_queue_depth", 0),
            checkpoints_written=record.get("checkpoints_written", 0),
            resumed_from_day=record.get("resumed_from_day"),
        )
