"""Synchronous publish/subscribe event bus.

Handlers subscribe per :class:`~repro.stream.events.EventType`; publishing
enqueues, :meth:`EventBus.drain` dispatches in FIFO order. Handlers may
publish further events while draining (the engine republishes detector
findings as ``STALE_FINDING`` events), which simply extends the queue —
dispatch stays single-threaded and deterministic.

The bus doubles as the metrics tap: queue depth and per-type handler
latency are recorded into the attached :class:`StreamStats`.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.stream.events import Event, EventType
from repro.stream.metrics import StreamStats

Handler = Callable[[Event], None]


class EventBus:
    """Time-ordered FIFO dispatch with per-type subscriptions."""

    def __init__(self, stats: Optional[StreamStats] = None) -> None:
        self._handlers: Dict[EventType, List[Handler]] = {}
        self._queue: Deque[Event] = deque()
        self.stats = stats if stats is not None else StreamStats()

    def subscribe(self, event_type: EventType, handler: Handler) -> None:
        self._handlers.setdefault(event_type, []).append(handler)

    def publish(self, event: Event) -> None:
        """Enqueue an event; it dispatches on the next :meth:`drain`."""
        self._queue.append(event)
        self.stats.observe_queue_depth(len(self._queue))

    def publish_all(self, events) -> None:
        for event in events:
            self.publish(event)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def drain(self) -> int:
        """Dispatch queued events FIFO until the queue is empty.

        Returns the number of events dispatched. Per-event wall time across
        all its handlers is accumulated into the stats object.
        """
        dispatched = 0
        while self._queue:
            event = self._queue.popleft()
            started = time.perf_counter()
            for handler in self._handlers.get(event.event_type, ()):
                handler(event)
            self.stats.record_event(
                event.event_type.value, time.perf_counter() - started
            )
            dispatched += 1
        return dispatched
