"""`repro.serve` — the staleness query service.

An indexed findings store (:class:`~repro.serve.index.FindingsIndex`)
plus a read-only WSGI API (:class:`~repro.serve.app.StalenessApp`) that
answers "is this domain exposed through a stale certificate?" without
re-running the pipeline. See ``docs/API.md`` for the endpoint table.
"""

from repro.serve.app import ApiError, StalenessApp, create_app
from repro.serve.index import FindingsIndex
from repro.serve.server import call_app, run_server, warm_check

__all__ = [
    "ApiError",
    "FindingsIndex",
    "StalenessApp",
    "call_app",
    "create_app",
    "run_server",
    "warm_check",
]
