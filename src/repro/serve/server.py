"""Hosting and self-query harnesses for the staleness query service.

Three entry points, in decreasing order of ceremony:

* :func:`run_server` — bind the app to a ``wsgiref`` reference server
  and serve until interrupted. Dependency-light by design; production
  deployments can mount :class:`~repro.serve.app.StalenessApp` under any
  WSGI host instead.
* :func:`call_app` — drive the WSGI callable with a synthetic environ
  and no socket. This is how tier-1 tests and the benchmark exercise the
  HTTP layer.
* :func:`warm_check` — the ``--warm-check`` self-query mode: hit every
  endpoint family once through :func:`call_app` and report per-route
  status. CI smoke jobs use it to prove the service answers without
  keeping a long-lived process around.
"""

from __future__ import annotations

import json
from io import BytesIO
from typing import Dict, List, Optional, Tuple
from urllib.parse import quote
from wsgiref.simple_server import WSGIRequestHandler, make_server

from repro.obs import log
from repro.serve.app import StalenessApp


class _QuietHandler(WSGIRequestHandler):
    """Route wsgiref's per-request stderr lines through structured logs."""

    def log_message(self, format: str, *args) -> None:
        log("serve_access", subsystem="serve", line=format % args)


class ClientResponse:
    """What a socket-free request returns: status, headers, parsed body."""

    def __init__(self, status_line: str, headers: List[Tuple[str, str]],
                 body: bytes) -> None:
        self.status_line = status_line
        self.status = int(status_line.split(" ", 1)[0])
        self.headers = dict(headers)
        self.body = body

    def json(self) -> dict:
        return json.loads(self.body.decode("utf-8"))


def call_app(
    app: StalenessApp,
    path: str,
    query: str = "",
    method: str = "GET",
) -> ClientResponse:
    """Invoke the WSGI app directly — no server, no socket, no thread."""
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": query,
        "SERVER_NAME": "warm-check",
        "SERVER_PORT": "0",
        "SERVER_PROTOCOL": "HTTP/1.1",
        "wsgi.version": (1, 0),
        "wsgi.url_scheme": "http",
        "wsgi.input": BytesIO(b""),
        "wsgi.errors": BytesIO(),
        "wsgi.multithread": False,
        "wsgi.multiprocess": False,
        "wsgi.run_once": True,
    }
    captured: Dict[str, object] = {}

    def start_response(status_line, headers, exc_info=None):
        captured["status_line"] = status_line
        captured["headers"] = headers

    chunks = app(environ, start_response)
    return ClientResponse(
        captured["status_line"], captured["headers"], b"".join(chunks)
    )


def warm_check(app: StalenessApp) -> dict:
    """Self-query every endpoint family once; return a machine-readable report.

    A probe "passes" when it gets the status the route contract promises —
    including the deliberate 404/400/405 probes, which prove the error
    model answers in JSON rather than a traceback.
    """
    domains = app.index.domains()
    probe_domain = domains[0] if domains else "nonexistent.example"
    probes: List[Tuple[str, str, str, int]] = [
        ("/health", "", "GET", 200),
        (f"/v1/domains/{quote(probe_domain)}", "", "GET", 200 if domains else 404),
        ("/v1/aggregates", "by=class", "GET", 200),
        ("/v1/aggregates", "by=issuer", "GET", 200),
        ("/v1/aggregates", "by=year", "GET", 200),
        ("/v1/survival", "", "GET", 200),
        ("/v1/whatif/caps", "days=45,90,215", "GET", 200),
        ("/v1/whatif/caps", "days=47", "GET", 200),
        ("/v1/domains/zzz-no-such-domain.example", "", "GET", 404),
        ("/v1/aggregates", "by=volume", "GET", 400),
        ("/v1/whatif/caps", "days=0", "GET", 400),
        ("/health", "", "POST", 405),
        ("/metrics", "", "GET", 200),
    ]
    checks: List[dict] = []
    failures = 0
    for path, query, method, expected in probes:
        response = call_app(app, path, query=query, method=method)
        if path == "/metrics":
            # Text exposition, not JSON: passing means 200 with the
            # Prometheus content type and at least one sample line.
            ok = (
                response.status == expected
                and response.headers.get("Content-Type", "").startswith("text/plain")
                and b"repro_" in response.body
            )
        else:
            payload = response.json()
            ok = response.status == expected and isinstance(payload, dict)
            if response.status >= 400:
                ok = ok and set(payload) == {"error"}
        if not ok:
            failures += 1
        checks.append(
            {
                "method": method,
                "path": path,
                "query": query,
                "expected_status": expected,
                "status": response.status,
                "ok": ok,
            }
        )
    return {
        "ok": failures == 0,
        "probes": len(checks),
        "failures": failures,
        "index": app.index.stats(),
        "checks": checks,
    }


def run_server(
    app: StalenessApp,
    host: str = "127.0.0.1",
    port: int = 8323,
    max_requests: Optional[int] = None,
) -> None:
    """Serve *app* on the stdlib reference server until interrupted.

    ``max_requests`` bounds the loop for tests/smoke runs; ``None`` means
    serve forever (Ctrl-C returns cleanly).
    """
    with make_server(host, port, app, handler_class=_QuietHandler) as httpd:
        log(
            "serve_listening",
            subsystem="serve",
            host=host,
            port=httpd.server_port,
            findings=len(app.index),
        )
        try:
            if max_requests is None:
                httpd.serve_forever()
            else:
                for _ in range(max_requests):
                    httpd.handle_request()
        except KeyboardInterrupt:
            log("serve_stopped", subsystem="serve", reason="interrupt")
