"""Read-only WSGI application over a :class:`~repro.serve.index.FindingsIndex`.

A dependency-light staleness query service: the app is a plain WSGI
callable (stdlib ``wsgiref`` hosts it for the reference server, but any
WSGI/ASGI-with-adapter host can mount it). Endpoints:

=======  =============================  =============================================
Method   Path                           Answer
=======  =============================  =============================================
GET      ``/health``                    liveness + index shape
GET      ``/v1/domains/{domain}``       per-domain findings across all classes
GET      ``/v1/aggregates?by=...``      grouped counts (``class``/``issuer``/``year``)
GET      ``/v1/survival?class=...``     survival-curve slices (Figure 8)
GET      ``/v1/whatif/caps?days=...``   lifetime-cap reductions (Section 6)
GET      ``/metrics``                   Prometheus text exposition of the live registry
=======  =============================  =============================================

Every response — success or failure — is a JSON document with sorted
keys, so identical queries produce byte-identical bodies (the one
exception is ``/metrics``, whose body is the Prometheus text exposition
format so a running server is scrapeable, not just file-dumpable). Failures use
one error model and **never** leak a traceback::

    {"error": {"status": 404, "code": "unknown_domain", "message": "..."}}

Observability: each request runs under a ``serve_request`` span and
records into the shared :mod:`repro.obs` registry — a request counter by
route template and status, and a latency histogram by route template
(templates, not raw paths, so domain names never explode a label set).
"""

from __future__ import annotations

import json
import logging
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, unquote

from repro.core.stale import StalenessClass
from repro.obs import get_registry, log, names, span
from repro.serve.index import FindingsIndex
from repro.util.dates import parse_day

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}

#: Default evaluation points for survival slices (the Figure 8 readoffs).
DEFAULT_SURVIVAL_AT = (90, 215)

#: Default lifetime-cap grid (the paper's Section 6 study points).
DEFAULT_CAPS = (45, 90, 215)


class ApiError(Exception):
    """One expected request failure, rendered as the JSON error model."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


def json_error(status: int, code: str, message: str) -> Tuple[int, dict]:
    """The one error shape every failing response uses."""
    return status, {
        "error": {"status": status, "code": code, "message": message}
    }


def _single(query: Dict[str, List[str]], key: str) -> Optional[str]:
    values = query.get(key)
    if not values:
        return None
    if len(values) > 1:
        raise ApiError(400, "bad_query", f"parameter {key!r} given more than once")
    return values[0]


def _int_list(text: str, key: str) -> List[int]:
    items: List[int] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            items.append(int(part))
        except ValueError:
            raise ApiError(
                400, "bad_query", f"parameter {key!r} wants integers, got {part!r}"
            ) from None
    if not items:
        raise ApiError(400, "bad_query", f"parameter {key!r} is empty")
    return items


class StalenessApp:
    """WSGI callable answering staleness queries from a warm index."""

    def __init__(self, index: FindingsIndex) -> None:
        self._index = index
        #: (template, matcher) pairs; the template doubles as the metric
        #: route label so cardinality stays bounded.
        self._routes: Tuple[Tuple[str, Callable[..., dict]], ...] = (
            ("/health", self._health),
            ("/v1/domains/{domain}", self._domain),
            ("/v1/aggregates", self._aggregates),
            ("/v1/survival", self._survival),
            ("/v1/whatif/caps", self._caps),
        )

    @property
    def index(self) -> FindingsIndex:
        return self._index

    # -- WSGI ----------------------------------------------------------------

    def __call__(self, environ, start_response) -> List[bytes]:
        started = perf_counter()
        method = (environ.get("REQUEST_METHOD") or "GET").upper()
        path = environ.get("PATH_INFO") or "/"
        query = parse_qs(environ.get("QUERY_STRING") or "", keep_blank_values=True)
        route, handler, argument = self._resolve(path)
        content_type = "application/json; charset=utf-8"
        with span("serve_request", route=route, method=method):
            if route == "/metrics" and method in ("GET", "HEAD"):
                # Scrape endpoint: the live registry in Prometheus text
                # exposition — the same bytes --metrics-out would write.
                status = 200
                body = get_registry().render_text().encode("utf-8")
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            elif route == "/metrics":
                status, payload = json_error(
                    405, "method_not_allowed",
                    f"{method} not supported; this API is read-only (GET/HEAD)",
                )
                body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
            else:
                status, payload = self._dispatch(
                    route, handler, argument, method, query
                )
                body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        registry = get_registry()
        registry.counter(
            names.SERVE_REQUESTS, names.SERVE_REQUESTS_HELP,
            labels=("route", "status"),
        ).inc(route=route, status=str(status))
        registry.histogram(
            names.SERVE_REQUEST_SECONDS, names.SERVE_REQUEST_SECONDS_HELP,
            labels=("route",),
        ).observe(perf_counter() - started, route=route)
        headers = [
            ("Content-Type", content_type),
            ("Content-Length", str(len(body))),
        ]
        if status == 405:
            headers.append(("Allow", "GET, HEAD"))
        start_response(f"{status} {_REASONS.get(status, 'Unknown')}", headers)
        if method == "HEAD":
            return [b""]
        return [body]

    def _dispatch(
        self,
        route: str,
        handler: Optional[Callable[..., dict]],
        argument: Optional[str],
        method: str,
        query: Dict[str, List[str]],
    ) -> Tuple[int, dict]:
        try:
            if handler is None:
                raise ApiError(404, "unknown_route", f"no such endpoint: {route}")
            if method not in ("GET", "HEAD"):
                raise ApiError(
                    405, "method_not_allowed",
                    f"{method} not supported; this API is read-only (GET/HEAD)",
                )
            if argument is None:
                return 200, handler(query)
            return 200, handler(argument, query)
        except ApiError as error:
            return json_error(error.status, error.code, error.message)
        except Exception as error:
            # The one broad handler: an unexpected failure becomes the same
            # JSON error shape as every expected one — never a traceback in
            # the body — and leaves a structured record behind for operators.
            log(
                "serve_unhandled_error",
                level=logging.ERROR,
                subsystem="serve",
                route=route,
                error=repr(error),
            )
            return json_error(
                500, "internal_error", "unexpected error answering the query"
            )

    def _resolve(
        self, path: str
    ) -> Tuple[str, Optional[Callable[..., dict]], Optional[str]]:
        """Match a raw path to (route template, handler, path argument)."""
        if path == "/metrics":
            # Text exposition, not JSON — handled specially in __call__.
            return "/metrics", None, None
        if path.startswith("/v1/domains/"):
            remainder = unquote(path[len("/v1/domains/"):])
            if remainder and "/" not in remainder:
                return "/v1/domains/{domain}", self._domain, remainder
            return "/v1/domains/{domain}", None, None
        for template, handler in self._routes:
            if template == path:
                return template, handler, None
        return "unmatched", None, None

    # -- handlers ------------------------------------------------------------

    def _health(self, query: Dict[str, List[str]]) -> dict:
        return {"status": "ok", "index": self._index.stats()}

    def _domain(self, name: str, query: Dict[str, List[str]]) -> dict:
        on_text = _single(query, "on")
        on_day = None
        if on_text is not None:
            try:
                on_day = parse_day(on_text)
            except ValueError as error:
                raise ApiError(400, "bad_query", f"bad 'on' date: {error}") from error
        try:
            answer = self._index.domain(name, on_day=on_day)
        except ValueError as error:
            raise ApiError(
                400, "bad_domain", f"invalid domain name {name!r}: {error}"
            ) from error
        if answer is None:
            raise ApiError(
                404, "unknown_domain",
                f"no stale-certificate findings indexed for {name!r}",
            )
        return answer

    def _aggregates(self, query: Dict[str, List[str]]) -> dict:
        by = _single(query, "by") or "class"
        if by not in ("class", "issuer", "year"):
            raise ApiError(
                400, "bad_query",
                f"parameter 'by' must be class, issuer, or year; got {by!r}",
            )
        return {"by": by, "rows": self._index.aggregates(by)}

    def _survival(self, query: Dict[str, List[str]]) -> dict:
        at_text = _single(query, "at")
        at: Sequence[int] = (
            _int_list(at_text, "at") if at_text is not None else DEFAULT_SURVIVAL_AT
        )
        class_text = _single(query, "class")
        if class_text is not None:
            try:
                requested = (StalenessClass(class_text),)
            except ValueError:
                raise ApiError(
                    400, "bad_query",
                    f"unknown staleness class {class_text!r}; one of "
                    + ", ".join(cls.value for cls in StalenessClass),
                ) from None
        else:
            requested = self._index.survival_classes()
        return {
            "at": list(at),
            "classes": [self._index.survival(cls, at) for cls in requested],
        }

    def _caps(self, query: Dict[str, List[str]]) -> dict:
        days_text = _single(query, "days")
        caps: Sequence[int] = (
            _int_list(days_text, "days") if days_text is not None else DEFAULT_CAPS
        )
        if len(caps) > 32:
            raise ApiError(400, "bad_query", "at most 32 caps per query")
        try:
            return self._index.caps(caps)
        except ValueError as error:
            raise ApiError(400, "bad_query", str(error)) from error


def create_app(index: FindingsIndex) -> StalenessApp:
    """Compose the query service over a built index."""
    return StalenessApp(index)
