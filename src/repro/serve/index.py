"""The indexed findings store behind the staleness query service.

The operational question the paper poses — "is this domain exposed
through a stale certificate, and for how long?" — should not require
re-running a detection pipeline or scanning a findings JSONL. A
:class:`FindingsIndex` is built **once** from a :class:`~repro.core.pipeline.PipelineResult`
(or a saved dataset bundle, via :meth:`FindingsIndex.from_bundle`) and
answers every query shape the API serves with plain dict lookups and
``bisect`` slices:

* hash maps keyed by **registered domain** (e2LD) and by **issuer**,
  holding indices into one canonically-ordered record list;
* **pre-sorted arrays** per staleness class (staleness days,
  days-to-invalidation) so percentile and survival slices are
  ``O(log n)`` bisects over data sorted at build time;
* **precomputed aggregate tables** (by class, by issuer, by year) that
  reproduce the batch pipeline's Table 4 numbers exactly;
* lifetime-cap what-ifs delegated to
  :class:`~repro.core.lifetime.LifetimePolicySimulator` — the same code
  path Section 6 uses — memoized per cap so the 45/90/215 grid and any
  ad-hoc cap (e.g. the 47-day CA/B ballot) cost one evaluation ever.

The warm path never touches pipeline code: every response field either
exists verbatim in a precomputed structure or is a bisect over one.
"""

from __future__ import annotations

from bisect import bisect_right
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.lifetime import LifetimePolicySimulator
from repro.core.pipeline import PipelineResult
from repro.core.stale import StaleCertificate, StalenessClass
from repro.obs import get_registry, names, phase_progress, span
from repro.parallel.pipeline import canonical_order_key
from repro.psl.registered import e2ld
from repro.util.dates import Day, day_to_iso, year_of

#: Largest lifetime cap (days) a what-if query may ask for; bounds the
#: per-cap memo so an adversarial query stream cannot grow it unboundedly.
MAX_CAP_DAYS = 3650

#: Classes the lifetime-cap what-if sweeps (the paper's Section 6 scope).
_CAP_CLASSES = (
    StalenessClass.KEY_COMPROMISE,
    StalenessClass.REGISTRANT_CHANGE,
    StalenessClass.MANAGED_TLS_DEPARTURE,
)


def _percentile_sorted(ordered: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile over an **already sorted** sequence.

    Same interpolation as :func:`repro.util.stats.percentile`, minus the
    sort — the index sorts once at build time, so evaluation is O(1).
    """
    if not ordered:
        raise ValueError("percentile of empty sequence")
    if len(ordered) == 1:
        return float(ordered[0])
    position = (pct / 100.0) * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return float(ordered[lower]) * (1 - fraction) + float(ordered[upper]) * fraction


def _finding_record(finding: StaleCertificate) -> dict:
    """The JSON-ready projection of one finding, built once at index time."""
    certificate = finding.certificate
    return {
        "staleness_class": finding.staleness_class.value,
        "issuer": certificate.issuer_name,
        "serial": certificate.serial,
        "authority_key_id": certificate.authority_key_id,
        "not_before": day_to_iso(certificate.not_before),
        "not_after": day_to_iso(certificate.not_after),
        "invalidation": day_to_iso(finding.invalidation_day),
        "staleness_days": finding.staleness_days,
        "days_to_invalidation": finding.days_to_invalidation,
        "affected_domain": finding.affected_domain,
        "detail": finding.detail,
    }


class FindingsIndex:
    """Read-optimized, query-ready view of one measurement run.

    Construction walks the findings once; every accessor afterwards is
    dict/bisect work over structures frozen at build time.
    """

    def __init__(self, result: PipelineResult) -> None:
        started = perf_counter()
        with span("serve_index_build"):
            self._build(result)
        self.build_seconds = perf_counter() - started
        registry = get_registry()
        registry.gauge(
            names.SERVE_INDEX_FINDINGS, names.SERVE_INDEX_FINDINGS_HELP
        ).set(len(self._records))
        registry.gauge(
            names.SERVE_INDEX_BUILD_SECONDS, names.SERVE_INDEX_BUILD_SECONDS_HELP
        ).set(self.build_seconds)

    @classmethod
    def from_bundle(
        cls,
        directory: str,
        workers: int = 1,
        revocation_cutoff_day: Optional[Day] = None,
    ) -> "FindingsIndex":
        """Build an index from a bundle saved by ``repro save``/``--bundle``.

        Reuses :func:`repro.data.open_bundle` — there is deliberately no
        second deserializer, and both the columnar and the legacy layout
        are accepted — so a missing or corrupt bundle raises the same
        ``OSError``/``ValueError`` the CLI already maps to exit code 2.
        """
        from repro.core.pipeline import MeasurementPipeline
        from repro.data import open_bundle
        from repro.ecosystem.timeline import DEFAULT_TIMELINE

        bundle = open_bundle(directory)
        if revocation_cutoff_day is None:
            revocation_cutoff_day = DEFAULT_TIMELINE.revocation_cutoff
        result = MeasurementPipeline.run_bundle(
            bundle, revocation_cutoff_day=revocation_cutoff_day, workers=workers
        )
        return cls(result)

    # -- build ---------------------------------------------------------------

    def _build(self, result: PipelineResult) -> None:
        findings = sorted(result.findings.all_findings(), key=canonical_order_key)
        progress = phase_progress("serve_index_build")
        progress.set_total(len(findings))
        self._records: List[dict] = []
        for finding in findings:
            self._records.append(_finding_record(finding))
            progress.add(1)
        self._stale_from: List[Day] = [f.stale_from for f in findings]
        self._stale_until: List[Day] = [f.stale_until for f in findings]

        by_domain: Dict[str, List[int]] = {}
        by_issuer: Dict[str, List[int]] = {}
        staleness: Dict[str, List[int]] = {}
        dti: Dict[str, List[int]] = {}
        class_counts: Dict[str, int] = {}
        for position, finding in enumerate(findings):
            for registered in sorted(finding.affected_e2lds()):
                by_domain.setdefault(registered, []).append(position)
            by_issuer.setdefault(finding.certificate.issuer_name, []).append(position)
            cls_value = finding.staleness_class.value
            staleness.setdefault(cls_value, []).append(finding.staleness_days)
            dti.setdefault(cls_value, []).append(finding.days_to_invalidation)
            class_counts[cls_value] = class_counts.get(cls_value, 0) + 1
        for values in staleness.values():
            values.sort()
        for values in dti.values():
            values.sort()
        self._by_domain = by_domain
        self._by_issuer = by_issuer
        self._staleness_sorted = staleness
        self._dti_sorted = dti
        self._class_counts = class_counts
        self._domains: List[str] = sorted(by_domain)

        self._aggregates_by_class = self._build_class_aggregates(result)
        self._aggregates_by_issuer = self._build_issuer_aggregates(findings)
        self._aggregates_by_year = self._build_year_aggregates(findings)

        # Section 6 cap math stays in repro.core.lifetime; the index only
        # memoizes whole evaluations so repeat caps are O(1) lookups.
        self._simulator = LifetimePolicySimulator(result.findings)
        self._cap_classes = tuple(
            cls for cls in _CAP_CLASSES if result.findings.of_class(cls)
        )
        self._cap_cache: Dict[int, List[dict]] = {}
        self._overall_cache: Dict[int, float] = {}

    def _build_class_aggregates(self, result: PipelineResult) -> List[dict]:
        rows: List[dict] = []
        for aggregate in result.aggregate_table():
            cls_value = aggregate.staleness_class.value
            ordered = self._staleness_sorted.get(cls_value, [])
            rows.append(
                {
                    "class": cls_value,
                    "first_day": day_to_iso(aggregate.first_day),
                    "last_day": day_to_iso(aggregate.last_day),
                    "stale_certificates": aggregate.stale_certificates,
                    "stale_fqdns": aggregate.stale_fqdns,
                    "stale_e2lds": aggregate.stale_e2lds,
                    "daily_certificates": aggregate.daily_certificates,
                    "daily_e2lds": aggregate.daily_e2lds,
                    "staleness_days_total": sum(ordered),
                    "median_staleness_days": (
                        _percentile_sorted(ordered, 50.0) if ordered else None
                    ),
                }
            )
        return rows

    def _build_issuer_aggregates(
        self, findings: Sequence[StaleCertificate]
    ) -> List[dict]:
        table: Dict[str, dict] = {}
        for finding in findings:
            row = table.setdefault(
                finding.certificate.issuer_name,
                {"findings": 0, "staleness_days_total": 0, "classes": {}},
            )
            row["findings"] += 1
            row["staleness_days_total"] += finding.staleness_days
            cls_value = finding.staleness_class.value
            row["classes"][cls_value] = row["classes"].get(cls_value, 0) + 1
        return [
            {"issuer": issuer, **table[issuer]} for issuer in sorted(table)
        ]

    def _build_year_aggregates(
        self, findings: Sequence[StaleCertificate]
    ) -> List[dict]:
        table: Dict[int, dict] = {}
        for finding in findings:
            year = year_of(finding.invalidation_day)
            row = table.setdefault(
                year, {"findings": 0, "staleness_days_total": 0}
            )
            row["findings"] += 1
            row["staleness_days_total"] += finding.staleness_days
        return [{"year": year, **table[year]} for year in sorted(table)]

    # -- queries (the warm path) ---------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def domains(self) -> List[str]:
        """Every registered domain with at least one finding, sorted."""
        return list(self._domains)

    def stats(self) -> dict:
        """The /health payload: index shape plus build cost."""
        return {
            "findings": len(self._records),
            "domains": len(self._by_domain),
            "issuers": len(self._by_issuer),
            "classes": dict(self._class_counts),
            "build_seconds": round(self.build_seconds, 6),
        }

    def domain(self, name: str, on_day: Optional[Day] = None) -> Optional[dict]:
        """Per-domain findings across all staleness classes.

        *name* is normalized to its registered domain, so querying
        ``www.example.com`` answers for ``example.com``. ``on_day``
        restricts to findings whose staleness window covers that day.
        Returns ``None`` for a domain with no indexed findings; raises
        ``ValueError`` for a syntactically invalid name (the caller maps
        that to a 400, not a 404).
        """
        normalized = name.strip().strip(".").lower()
        key = e2ld(normalized) or normalized
        positions = self._by_domain.get(key)
        if positions is None:
            return None
        if on_day is not None:
            positions = [
                p
                for p in positions
                if self._stale_from[p] <= on_day <= self._stale_until[p]
            ]
        classes: Dict[str, int] = {}
        for position in positions:
            cls_value = self._records[position]["staleness_class"]
            classes[cls_value] = classes.get(cls_value, 0) + 1
        return {
            "domain": key,
            "queried": name,
            "on": day_to_iso(on_day) if on_day is not None else None,
            "exposed": bool(positions),
            "classes": classes,
            "findings": [self._records[p] for p in positions],
        }

    def aggregates(self, by: str) -> List[dict]:
        """Precomputed aggregate rows, grouped ``by`` class, issuer, or year."""
        if by == "class":
            return list(self._aggregates_by_class)
        if by == "issuer":
            return list(self._aggregates_by_issuer)
        if by == "year":
            return list(self._aggregates_by_year)
        raise ValueError(f"unknown aggregation axis {by!r}")

    def survival(
        self, staleness_class: StalenessClass, at: Sequence[int]
    ) -> dict:
        """Survival-curve slice (Figure 8) for one class.

        ``S(t)`` is the share of findings whose invalidation event lands
        strictly after day *t* of the certificate lifetime — one
        ``bisect_right`` over the pre-sorted days-to-invalidation array,
        numerically identical to
        :meth:`repro.util.stats.SurvivalCurve.survival_at`.
        """
        ordered = self._dti_sorted.get(staleness_class.value, [])
        n = len(ordered)
        entry: dict = {"class": staleness_class.value, "n": n}
        if n:
            entry["median_days_to_invalidation"] = _percentile_sorted(ordered, 50.0)
            entry["survival"] = {
                str(t): 1.0 - bisect_right(ordered, t) / n for t in at
            }
        else:
            entry["median_days_to_invalidation"] = None
            entry["survival"] = {}
        return entry

    def survival_classes(self) -> Tuple[StalenessClass, ...]:
        """Classes with at least one finding, in the paper's order."""
        return tuple(
            cls
            for cls in StalenessClass
            if self._dti_sorted.get(cls.value)
        )

    def caps(self, caps: Sequence[int]) -> dict:
        """Lifetime-cap what-ifs (Section 6 / Figure 9) for the given caps.

        Every cap is evaluated through
        :class:`~repro.core.lifetime.LifetimePolicySimulator` exactly once
        per index lifetime; results are memoized so the 45/90/215 grid —
        or a hot ad-hoc cap like 47 — is a dict hit on the warm path.
        """
        rows: List[dict] = []
        overall: List[dict] = []
        seen: List[int] = []
        for cap in caps:
            if not isinstance(cap, int) or isinstance(cap, bool):
                raise ValueError(f"cap must be an integer day count, got {cap!r}")
            if not 0 < cap <= MAX_CAP_DAYS:
                raise ValueError(
                    f"cap {cap} outside (0, {MAX_CAP_DAYS}] days"
                )
            if cap in seen:
                continue
            seen.append(cap)
            rows.extend(self._cap_rows(cap))
            overall.append(
                {
                    "cap_days": cap,
                    "staleness_days_reduction": self._overall_reduction(cap),
                }
            )
        return {"caps": seen, "classes": rows, "overall": overall}

    def _cap_rows(self, cap: int) -> List[dict]:
        cached = self._cap_cache.get(cap)
        if cached is None:
            cached = []
            for cls in self._cap_classes:
                result = self._simulator.evaluate(cls, cap)
                cached.append(
                    {
                        "class": cls.value,
                        "cap_days": cap,
                        "baseline_staleness_days": result.baseline_staleness_days,
                        "capped_staleness_days": result.capped_staleness_days,
                        "staleness_days_reduction": result.staleness_days_reduction,
                        "certificate_reduction": result.certificate_reduction,
                    }
                )
            self._cap_cache[cap] = cached
        return list(cached)

    def _overall_reduction(self, cap: int) -> float:
        value = self._overall_cache.get(cap)
        if value is None:
            value = self._simulator.overall_staleness_reduction(cap)
            self._overall_cache[cap] = value
        return value
