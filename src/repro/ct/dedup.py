"""Certificate corpus assembly with precert/cert dedup and outlier filtering.

Implements two corpus rules from paper Section 4:

* *Dedup*: "We deduplicate precertificates and issued certificates based on
  their non-CT components" — both map to one logical certificate via
  :meth:`Certificate.dedup_fingerprint`.
* *Anomalous-FQDN filter*: "we ignore fully qualified domain names that have
  more than 3K certificates" (test domains like flowers-to-the-world.com).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.pki.certificate import Certificate

#: Paper's per-FQDN anomaly threshold.
ANOMALOUS_FQDN_CERT_LIMIT = 3000


@dataclass
class DedupStats:
    """Bookkeeping from corpus assembly."""

    raw_entries: int = 0
    duplicates_collapsed: int = 0
    anomalous_fqdns: Set[str] = field(default_factory=set)
    certificates_dropped_as_anomalous: int = 0

    @property
    def unique_certificates(self) -> int:
        return self.raw_entries - self.duplicates_collapsed


class CertificateCorpus:
    """The deduplicated certificate set the detectors operate on."""

    def __init__(self, fqdn_cert_limit: int = ANOMALOUS_FQDN_CERT_LIMIT) -> None:
        self._by_fingerprint: Dict[str, Certificate] = {}
        self._fqdn_counts: Dict[str, int] = {}
        self._fqdn_cert_limit = fqdn_cert_limit
        self.stats = DedupStats()

    def ingest(self, certificates: Iterable[Certificate]) -> None:
        """Add certificates (or precertificates); duplicates collapse.

        When both the precertificate and the final certificate are seen, the
        final certificate (with SCTs) wins as the canonical instance.
        """
        for certificate in certificates:
            self.stats.raw_entries += 1
            fingerprint = certificate.dedup_fingerprint()
            existing = self._by_fingerprint.get(fingerprint)
            if existing is None:
                self._by_fingerprint[fingerprint] = certificate
                for fqdn in certificate.fqdns():
                    self._fqdn_counts[fqdn] = self._fqdn_counts.get(fqdn, 0) + 1
            else:
                self.stats.duplicates_collapsed += 1
                if existing.is_precertificate and not certificate.is_precertificate:
                    self._by_fingerprint[fingerprint] = certificate

    def finalize(self) -> "CertificateCorpus":
        """Apply the anomalous-FQDN filter; call after all ingestion."""
        anomalous = {
            fqdn
            for fqdn, count in self._fqdn_counts.items()
            if count > self._fqdn_cert_limit
        }
        if anomalous:
            self.stats.anomalous_fqdns = anomalous
            keep: Dict[str, Certificate] = {}
            for fingerprint, certificate in self._by_fingerprint.items():
                if certificate.fqdns() & anomalous:
                    self.stats.certificates_dropped_as_anomalous += 1
                else:
                    keep[fingerprint] = certificate
            self._by_fingerprint = keep
        return self

    # -- queries -----------------------------------------------------------------

    def certificates(self) -> Iterator[Certificate]:
        return iter(self._by_fingerprint.values())

    def __len__(self) -> int:
        return len(self._by_fingerprint)

    def by_revocation_key(self) -> Dict[Tuple[str, int], Certificate]:
        """Index by (authority key id, serial) — the CRL cross-reference key."""
        return {cert.revocation_key(): cert for cert in self._by_fingerprint.values()}

    def covering_domain(self, fqdn: str) -> List[Certificate]:
        return [cert for cert in self._by_fingerprint.values() if cert.covers_name(fqdn)]

    def with_san_suffix(self, suffix: str) -> List[Certificate]:
        """Certificates with any SAN under *suffix* (e.g. cloudflaressl.com)."""
        needle = "." + suffix.lower().strip(".")
        return [
            cert
            for cert in self._by_fingerprint.values()
            if any(san == needle[1:] or san.endswith(needle) for san in cert.san_dns_names)
        ]
