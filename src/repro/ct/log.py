"""CT log server: submission, SCTs, temporal sharding, entry retrieval.

Mirrors the operational shape of production logs: precertificates are
submitted before final issuance, the log returns a Signed Certificate
Timestamp (SCT) within its maximum merge delay, entries land in an
append-only Merkle tree, and — as the paper notes in Section 7.2 — modern
logs are *temporally sharded*: a shard only accepts certificates whose
notAfter falls inside its year window.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.ct.merkle import MerkleTree
from repro.pki.certificate import Certificate
from repro.util.dates import Day, day, day_to_iso


@dataclass(frozen=True)
class SignedCertificateTimestamp:
    """The log's promise to incorporate an entry (RFC 6962 §3)."""

    log_id: str
    timestamp_day: Day
    entry_fingerprint: str

    def token(self) -> str:
        material = f"{self.log_id}:{self.timestamp_day}:{self.entry_fingerprint}"
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]


@dataclass(frozen=True)
class LogEntry:
    """One sequenced entry in a log."""

    index: int
    certificate: Certificate
    submitted_on: Day

    def leaf_bytes(self) -> bytes:
        return (
            f"{self.certificate.dedup_fingerprint()}:"
            f"{int(self.certificate.is_precertificate)}"
        ).encode("utf-8")


class ShardRejection(Exception):
    """Submission outside a temporal shard's notAfter window."""


@dataclass(frozen=True)
class LogShardingPolicy:
    """Temporal shard acceptance window (by certificate expiry year)."""

    not_after_start: Optional[Day] = None  # inclusive
    not_after_end: Optional[Day] = None  # exclusive

    @classmethod
    def for_year(cls, year: int) -> "LogShardingPolicy":
        return cls(not_after_start=day(year, 1, 1), not_after_end=day(year + 1, 1, 1))

    def accepts(self, certificate: Certificate) -> bool:
        if self.not_after_start is not None and certificate.not_after < self.not_after_start:
            return False
        if self.not_after_end is not None and certificate.not_after >= self.not_after_end:
            return False
        return True


class CtLog:
    """One CT log (possibly a temporal shard of a log family)."""

    def __init__(
        self,
        log_id: str,
        operator: str,
        sharding: Optional[LogShardingPolicy] = None,
        max_merge_delay_days: int = 1,
    ) -> None:
        self.log_id = log_id
        self.operator = operator
        self.sharding = sharding or LogShardingPolicy()
        self.max_merge_delay_days = max_merge_delay_days
        self._tree = MerkleTree()
        self._entries: List[LogEntry] = []
        self._by_fingerprint: Dict[Tuple[str, bool], int] = {}

    def submit(self, certificate: Certificate, submission_day: Day) -> SignedCertificateTimestamp:
        """Submit a (pre)certificate; returns an SCT.

        Duplicate submissions return the original SCT (logs are idempotent
        on entry content).
        """
        if not self.sharding.accepts(certificate):
            raise ShardRejection(
                f"{self.log_id}: notAfter {day_to_iso(certificate.not_after)} "
                f"outside shard window"
            )
        key = (certificate.dedup_fingerprint(), certificate.is_precertificate)
        existing = self._by_fingerprint.get(key)
        if existing is not None:
            entry = self._entries[existing]
            return SignedCertificateTimestamp(
                self.log_id, entry.submitted_on, certificate.dedup_fingerprint()
            )
        entry = LogEntry(
            index=len(self._entries), certificate=certificate, submitted_on=submission_day
        )
        self._entries.append(entry)
        self._tree.append(entry.leaf_bytes())
        self._by_fingerprint[key] = entry.index
        return SignedCertificateTimestamp(
            self.log_id, submission_day, certificate.dedup_fingerprint()
        )

    # -- retrieval (the monitor-facing API) ------------------------------------

    @property
    def tree_size(self) -> int:
        return self._tree.size

    def root_hash(self, tree_size: Optional[int] = None) -> bytes:
        return self._tree.root(tree_size)

    def get_entries(self, start: int, end: int) -> List[LogEntry]:
        """Entries in ``[start, end]`` inclusive, like the RFC 6962 endpoint."""
        if start < 0 or end < start:
            raise ValueError(f"invalid entry range [{start}, {end}]")
        return self._entries[start : end + 1]

    def inclusion_proof(self, index: int, tree_size: Optional[int] = None) -> List[bytes]:
        return self._tree.inclusion_proof(index, tree_size)

    def consistency_proof(self, old_size: int, new_size: Optional[int] = None) -> List[bytes]:
        return self._tree.consistency_proof(old_size, new_size)

    def entries(self) -> Iterator[LogEntry]:
        return iter(self._entries)

    def __repr__(self) -> str:
        return f"CtLog({self.log_id!r}, size={self.tree_size})"


def shard_family(
    family_name: str, operator: str, first_year: int, last_year: int
) -> List[CtLog]:
    """Create a temporally-sharded log family (e.g. 'argon2021..argon2023')."""
    return [
        CtLog(
            log_id=f"{family_name}{year}",
            operator=operator,
            sharding=LogShardingPolicy.for_year(year),
        )
        for year in range(first_year, last_year + 1)
    ]
