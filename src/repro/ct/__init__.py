"""Certificate Transparency substrate (RFC 6962 shape).

The paper's primary dataset is CT: 5B deduplicated certificates from 117
logs trusted by Chrome or Apple, 2013–2023. This package implements the log
machinery — append-only Merkle tree with inclusion and consistency proofs,
SCT issuance, temporal sharding, trust-list membership — plus the monitor
client and the precert/cert dedup that produce the certificate corpus the
detectors consume.
"""

from repro.ct.merkle import MerkleTree, verify_consistency, verify_inclusion
from repro.ct.log import CtLog, LogEntry, LogShardingPolicy, SignedCertificateTimestamp
from repro.ct.loglist import LogList, LogListEntry, TrustOperator
from repro.ct.client import CtMonitor, MonitorState
from repro.ct.dedup import CertificateCorpus, DedupStats

__all__ = [
    "MerkleTree",
    "verify_consistency",
    "verify_inclusion",
    "CtLog",
    "LogEntry",
    "LogShardingPolicy",
    "SignedCertificateTimestamp",
    "LogList",
    "LogListEntry",
    "TrustOperator",
    "CtMonitor",
    "MonitorState",
    "CertificateCorpus",
    "DedupStats",
]
