"""RFC 6962 Merkle hash tree with inclusion and consistency proofs.

CT's auditability rests on this structure: leaves are hashed with a 0x00
prefix and interior nodes with 0x01 (domain separation prevents second-
preimage splicing), the tree head commits to the full append-only sequence,
inclusion proofs show one entry is present, and consistency proofs show one
tree head extends another without rewriting history.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence

LEAF_PREFIX = b"\x00"
NODE_PREFIX = b"\x01"


def leaf_hash(data: bytes) -> bytes:
    return hashlib.sha256(LEAF_PREFIX + data).digest()


def node_hash(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(NODE_PREFIX + left + right).digest()


def _root_of(hashes: Sequence[bytes]) -> bytes:
    """Merkle tree hash over a sequence of leaf hashes (RFC 6962 §2.1)."""
    n = len(hashes)
    if n == 0:
        return hashlib.sha256(b"").digest()
    if n == 1:
        return hashes[0]
    k = _largest_power_of_two_below(n)
    return node_hash(_root_of(hashes[:k]), _root_of(hashes[k:]))


def _largest_power_of_two_below(n: int) -> int:
    """Largest power of two strictly less than n (n >= 2)."""
    k = 1
    while k * 2 < n:
        k *= 2
    return k


class MerkleTree:
    """Append-only Merkle tree over opaque byte-string entries."""

    def __init__(self) -> None:
        self._leaf_hashes: List[bytes] = []

    def append(self, data: bytes) -> int:
        """Append an entry; returns its index."""
        self._leaf_hashes.append(leaf_hash(data))
        return len(self._leaf_hashes) - 1

    @property
    def size(self) -> int:
        return len(self._leaf_hashes)

    def root(self, tree_size: Optional[int] = None) -> bytes:
        """Root hash over the first *tree_size* entries (default: all)."""
        size = self.size if tree_size is None else tree_size
        if not 0 <= size <= self.size:
            raise ValueError(f"tree size {size} out of range 0..{self.size}")
        return _root_of(self._leaf_hashes[:size])

    # -- inclusion proofs (RFC 6962 §2.1.1) -----------------------------------

    def inclusion_proof(self, index: int, tree_size: Optional[int] = None) -> List[bytes]:
        size = self.size if tree_size is None else tree_size
        if not 0 <= index < size <= self.size:
            raise ValueError(f"index {index} not in tree of size {size}")
        return self._subproof_path(index, self._leaf_hashes[:size])

    def _subproof_path(self, m: int, hashes: Sequence[bytes]) -> List[bytes]:
        n = len(hashes)
        if n == 1:
            return []
        k = _largest_power_of_two_below(n)
        if m < k:
            path = self._subproof_path(m, hashes[:k])
            path.append(_root_of(hashes[k:]))
        else:
            path = self._subproof_path(m - k, hashes[k:])
            path.append(_root_of(hashes[:k]))
        return path

    # -- consistency proofs (RFC 6962 §2.1.2) ---------------------------------

    def consistency_proof(self, old_size: int, new_size: Optional[int] = None) -> List[bytes]:
        size = self.size if new_size is None else new_size
        if not 0 < old_size <= size <= self.size:
            raise ValueError(f"invalid sizes: old={old_size}, new={size}")
        if old_size == size:
            return []
        return self._consistency_subproof(old_size, self._leaf_hashes[:size], True)

    def _consistency_subproof(
        self, m: int, hashes: Sequence[bytes], old_is_complete: bool
    ) -> List[bytes]:
        n = len(hashes)
        if m == n:
            if old_is_complete:
                return []
            return [_root_of(hashes)]
        k = _largest_power_of_two_below(n)
        if m <= k:
            path = self._consistency_subproof(m, hashes[:k], old_is_complete)
            path.append(_root_of(hashes[k:]))
        else:
            path = self._consistency_subproof(m - k, hashes[k:], False)
            path.append(_root_of(hashes[:k]))
        return path


def verify_inclusion(
    leaf_data: bytes,
    index: int,
    tree_size: int,
    proof: Sequence[bytes],
    root: bytes,
) -> bool:
    """Verify an inclusion proof against a signed tree head root."""
    if not 0 <= index < tree_size:
        return False
    # RFC 9162 §2.1.3.2: walk the proof bottom-up tracking (fn, sn).
    fn, sn = index, tree_size - 1
    computed = leaf_hash(leaf_data)
    for sibling in proof:
        if sn == 0:
            return False  # proof longer than the path
        if fn & 1 or fn == sn:
            computed = node_hash(sibling, computed)
            if fn & 1 == 0:
                while fn != 0 and fn & 1 == 0:
                    fn >>= 1
                    sn >>= 1
        else:
            computed = node_hash(computed, sibling)
        fn >>= 1
        sn >>= 1
    return sn == 0 and computed == root


def verify_consistency(
    old_size: int,
    new_size: int,
    old_root: bytes,
    new_root: bytes,
    proof: Sequence[bytes],
) -> bool:
    """Verify a consistency proof between two tree heads (RFC 6962 §2.1.4.2)."""
    if old_size == new_size:
        return old_root == new_root and not proof
    if not 0 < old_size < new_size:
        return False
    proof_list = list(proof)
    # When old_size is a power of two, the old root itself seeds the walk.
    if old_size & (old_size - 1) == 0:
        proof_list.insert(0, old_root)
    if not proof_list:
        return False
    fn, sn = old_size - 1, new_size - 1
    while fn & 1:
        fn >>= 1
        sn >>= 1
    fr = sr = proof_list[0]
    for sibling in proof_list[1:]:
        if sn == 0:
            return False
        if fn & 1 or fn == sn:
            fr = node_hash(sibling, fr)
            sr = node_hash(sibling, sr)
            while fn != 0 and fn & 1 == 0:
                fn >>= 1
                sn >>= 1
        else:
            sr = node_hash(sr, sibling)
        fn >>= 1
        sn >>= 1
    return fr == old_root and sr == new_root and sn == 0
