"""Trusted-log lists (Chrome / Apple analogues).

The paper collects from "117 CT logs ... trusted by Google Chrome or Apple
at some point in time". A :class:`LogList` records which operator trusts
which log over which period; the union across operators defines the corpus
the monitor ingests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.ct.log import CtLog
from repro.util.dates import Day


class TrustOperator(enum.Enum):
    CHROME = "chrome"
    APPLE = "apple"


@dataclass(frozen=True)
class LogListEntry:
    """Trust interval for one log under one root program."""

    log_id: str
    operator: TrustOperator
    trusted_from: Day
    trusted_until: Optional[Day] = None  # None = still trusted

    def trusted_on(self, query_day: Day) -> bool:
        if query_day < self.trusted_from:
            return False
        return self.trusted_until is None or query_day < self.trusted_until

    @property
    def ever_trusted(self) -> bool:
        return self.trusted_until is None or self.trusted_until > self.trusted_from


class LogList:
    """Registry of logs and their trust status across root programs."""

    def __init__(self) -> None:
        self._logs: Dict[str, CtLog] = {}
        self._entries: List[LogListEntry] = []

    def add_log(self, log: CtLog) -> None:
        if log.log_id in self._logs:
            raise ValueError(f"log {log.log_id} already registered")
        self._logs[log.log_id] = log

    def trust(
        self,
        log_id: str,
        operator: TrustOperator,
        trusted_from: Day,
        trusted_until: Optional[Day] = None,
    ) -> None:
        if log_id not in self._logs:
            raise KeyError(f"unknown log {log_id}")
        self._entries.append(LogListEntry(log_id, operator, trusted_from, trusted_until))

    def distrust(self, log_id: str, operator: TrustOperator, on_day: Day) -> None:
        """Close the open trust interval for (log, operator)."""
        for i, entry in enumerate(self._entries):
            if (
                entry.log_id == log_id
                and entry.operator is operator
                and entry.trusted_until is None
            ):
                self._entries[i] = LogListEntry(log_id, operator, entry.trusted_from, on_day)
                return
        raise KeyError(f"no open trust interval for {log_id}/{operator.value}")

    def get_log(self, log_id: str) -> CtLog:
        return self._logs[log_id]

    def logs_trusted_on(self, query_day: Day, operator: Optional[TrustOperator] = None) -> List[CtLog]:
        ids: Set[str] = set()
        for entry in self._entries:
            if operator is not None and entry.operator is not operator:
                continue
            if entry.trusted_on(query_day):
                ids.add(entry.log_id)
        return [self._logs[log_id] for log_id in sorted(ids)]

    def logs_ever_trusted(self) -> List[CtLog]:
        """All logs trusted by Chrome or Apple at any point — the paper's
        collection criterion."""
        ids = {entry.log_id for entry in self._entries if entry.ever_trusted}
        return [self._logs[log_id] for log_id in sorted(ids)]

    def all_logs(self) -> List[CtLog]:
        return [self._logs[log_id] for log_id in sorted(self._logs)]

    def __len__(self) -> int:
        return len(self._logs)
