"""CT monitor client.

The measurement pipeline's CT collector: walks every log trusted by Chrome
or Apple, fetches entries in batches (``get-entries`` style), audits
inclusion and tree-head consistency as it goes, and feeds the certificates
into a :class:`~repro.ct.dedup.CertificateCorpus`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ct.dedup import CertificateCorpus
from repro.ct.log import CtLog, LogEntry
from repro.ct.loglist import LogList
from repro.ct.merkle import verify_consistency, verify_inclusion


class AuditFailure(Exception):
    """A log served an inconsistent tree or a bad inclusion proof."""


@dataclass
class MonitorState:
    """Per-log resume state: last fetched index and last seen tree head."""

    fetched_upto: int = 0  # number of entries consumed
    last_tree_size: int = 0
    last_root: Optional[bytes] = None


class CtMonitor:
    """Incremental, auditing CT monitor across a log list."""

    def __init__(
        self,
        log_list: LogList,
        corpus: Optional[CertificateCorpus] = None,
        batch_size: int = 256,
        audit: bool = True,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        self.log_list = log_list
        self.corpus = corpus or CertificateCorpus()
        self.batch_size = batch_size
        self.audit = audit
        self._states: Dict[str, MonitorState] = {}

    def state_of(self, log_id: str) -> MonitorState:
        return self._states.setdefault(log_id, MonitorState())

    def poll_log(self, log: CtLog) -> int:
        """Fetch all new entries from one log; returns how many were new."""
        state = self.state_of(log.log_id)
        new_size = log.tree_size
        if new_size < state.last_tree_size:
            raise AuditFailure(
                f"{log.log_id}: tree shrank from {state.last_tree_size} to {new_size}"
            )
        if self.audit and state.last_root is not None and new_size > state.last_tree_size:
            proof = log.consistency_proof(state.last_tree_size, new_size)
            if not verify_consistency(
                state.last_tree_size, new_size, state.last_root, log.root_hash(new_size), proof
            ):
                raise AuditFailure(f"{log.log_id}: consistency proof failed")
        fetched = 0
        while state.fetched_upto < new_size:
            end = min(state.fetched_upto + self.batch_size, new_size) - 1
            entries = log.get_entries(state.fetched_upto, end)
            if self.audit:
                self._audit_entries(log, entries, new_size)
            self.corpus.ingest(entry.certificate for entry in entries)
            fetched += len(entries)
            state.fetched_upto = end + 1
        state.last_tree_size = new_size
        state.last_root = log.root_hash(new_size)
        return fetched

    def poll_all(self) -> int:
        """Poll every log ever trusted by Chrome or Apple (paper criterion)."""
        total = 0
        for log in self.log_list.logs_ever_trusted():
            total += self.poll_log(log)
        return total

    def finalize_corpus(self) -> CertificateCorpus:
        """Apply corpus-level filters after collection completes."""
        return self.corpus.finalize()

    def _audit_entries(self, log: CtLog, entries: List[LogEntry], tree_size: int) -> None:
        root = log.root_hash(tree_size)
        # Spot-check the first entry of each batch; full per-entry audit is
        # O(n log n) hashing and the tests exercise it separately.
        if not entries:
            return
        entry = entries[0]
        proof = log.inclusion_proof(entry.index, tree_size)
        if not verify_inclusion(entry.leaf_bytes(), entry.index, tree_size, proof, root):
            raise AuditFailure(f"{log.log_id}: inclusion proof failed for index {entry.index}")
