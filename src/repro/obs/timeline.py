"""Run timelines: crash-durable JSONL snapshots of a run in flight.

``timeline.jsonl`` sits next to the other run artifacts and is written
*incrementally* — one JSON object per line, flushed as soon as it is
appended — so a killed or hung run still leaves a readable record of
everything up to its last heartbeat. Three record kinds share the file:

* ``meta`` — first line: schema version, command, heartbeat cadence, pid.
* ``snapshot`` — one heartbeat sample: elapsed wall time, RSS, per-phase
  progress (done / total / rate / ETA), the registry's flat samples, and
  the slowest currently-open spans.
* ``marker`` — one-off annotations (e.g. ``resumed_from`` after a
  checkpoint restore, or the ``final`` end-of-run marker fields on the
  closing snapshot).

:func:`read_timeline` tolerates a truncated last line — the expected
shape of a SIGKILL mid-append — and :func:`summarize_timeline` reduces a
timeline to the per-phase rates and RSS curve that ``repro obs-timeline``
prints (and can diff across runs).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Bump when the snapshot layout changes incompatibly.
TIMELINE_SCHEMA = 1

#: Canonical file name, next to ``metrics.prom`` / ``run.json``.
TIMELINE_NAME = "timeline.jsonl"


class TimelineWriter:
    """Append-only JSONL writer, one flush per record (crash-durable).

    Each CLI invocation owns one timeline: the file is truncated on open
    (a resumed run is a *new* run whose meta carries the resume marker),
    and every record is flushed to the OS immediately so a ``kill -9``
    loses at most the line being written.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "w", encoding="utf-8")
        self._records = 0

    @property
    def records(self) -> int:
        return self._records

    def append(self, record: Mapping[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        self._handle.write(line + "\n")
        self._handle.flush()
        self._records += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "TimelineWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_timeline(path: str) -> List[Dict[str, Any]]:
    """Read a timeline, tolerating a truncated final line.

    A run killed mid-append leaves a partial last line; that line is
    dropped silently. A malformed line anywhere *else* is corruption, not
    truncation, and raises ``ValueError`` naming the line number.
    """
    if os.path.isdir(path):
        path = os.path.join(path, TIMELINE_NAME)
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    # A complete file ends with "\n", so the final split element is "".
    last_index = len(lines) - 1
    for number, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as error:
            if number == last_index:
                break  # truncated mid-append; everything before it stands
            raise ValueError(
                f"{path}:{number + 1}: corrupt timeline record: {error}"
            ) from error
        if not isinstance(record, dict):
            raise ValueError(f"{path}:{number + 1}: timeline record is not an object")
        records.append(record)
    return records


def snapshots(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Just the ``snapshot`` records, in file order."""
    return [record for record in records if record.get("kind") == "snapshot"]


def timeline_meta(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The ``meta`` record (first line), or an empty dict."""
    for record in records:
        if record.get("kind") == "meta":
            return record
    return {}


def quantile_from_buckets(
    bucket_counts: List[Tuple[float, float]], q: float
) -> Optional[float]:
    """Estimate a quantile from cumulative ``(upper_bound, count)`` pairs.

    The pairs are Prometheus-style cumulative bucket counts (``+Inf`` as
    ``float('inf')``). Returns the upper bound of the bucket holding the
    q-th sample — the standard monitoring approximation — or ``None``
    with no samples.
    """
    if not bucket_counts:
        return None
    ordered = sorted(bucket_counts)
    total = ordered[-1][1]
    if total <= 0:
        return None
    rank = q * total
    for bound, cumulative in ordered:
        if cumulative >= rank:
            return bound
    return ordered[-1][0]


def histogram_quantiles(
    samples: Mapping[str, float], family: str, quantiles: Tuple[float, ...] = (0.5, 0.99)
) -> Dict[str, Dict[float, Optional[float]]]:
    """Per-labelset quantiles for one histogram family in a flat sample map.

    Groups ``family_bucket{...,le="x"}`` series by their non-``le`` labels
    and estimates each requested quantile. Returns
    ``{labelset_text: {q: value}}``.
    """
    prefix = family + "_bucket{"
    grouped: Dict[str, List[Tuple[float, float]]] = {}
    for series, value in samples.items():
        if not series.startswith(prefix):
            continue
        labels_text = series[len(prefix) : -1]
        parts = [part for part in labels_text.split(",") if part]
        bound: Optional[float] = None
        rest: List[str] = []
        for part in parts:
            if part.startswith('le="'):
                text = part[4:-1]
                bound = float("inf") if text == "+Inf" else float(text)
            else:
                rest.append(part)
        if bound is None:
            continue
        grouped.setdefault(",".join(rest), []).append((bound, value))
    return {
        key: {q: quantile_from_buckets(buckets, q) for q in quantiles}
        for key, buckets in sorted(grouped.items())
    }


def summarize_timeline(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Reduce a timeline to its headline curves.

    Per phase: final done/total, mean rate over the sampled interval, and
    whether progress ever regressed (it must not). Plus the RSS curve
    (first/max/final) and the snapshot cadence actually achieved.
    """
    snaps = snapshots(records)
    meta = timeline_meta(records)
    summary: Dict[str, Any] = {
        "schema": meta.get("schema"),
        "command": meta.get("command"),
        "heartbeat_seconds": meta.get("heartbeat_seconds"),
        "snapshots": len(snaps),
        "duration_seconds": None,
        "phases": {},
        "rss": {},
        "monotonic": True,
    }
    if not snaps:
        return summary
    first, last = snaps[0], snaps[-1]
    duration = float(last.get("elapsed", 0.0)) - float(first.get("elapsed", 0.0))
    summary["duration_seconds"] = round(float(last.get("elapsed", 0.0)), 3)

    phases: Dict[str, Dict[str, Any]] = {}
    previous_done: Dict[str, float] = {}
    first_seen: Dict[str, Tuple[float, float]] = {}
    for snap in snaps:
        elapsed = float(snap.get("elapsed", 0.0))
        for phase, progress in (snap.get("phases") or {}).items():
            done = float(progress.get("done", 0.0))
            if done < previous_done.get(phase, 0.0) - 1e-9:
                summary["monotonic"] = False
            previous_done[phase] = done
            if phase not in first_seen:
                first_seen[phase] = (elapsed, done)
            phases[phase] = {
                "done": done,
                "total": float(progress.get("total", 0.0)),
                "last_rate": progress.get("rate"),
            }
    for phase, row in phases.items():
        started_at, first_done = first_seen[phase]
        last_elapsed = float(last.get("elapsed", 0.0))
        window = last_elapsed - started_at
        row["mean_rate"] = (
            round((row["done"] - first_done) / window, 3) if window > 0 else None
        )
    summary["phases"] = dict(sorted(phases.items()))

    rss_series = [
        float(snap["rss_bytes"]) for snap in snaps if snap.get("rss_bytes") is not None
    ]
    if rss_series:
        summary["rss"] = {
            "first_bytes": int(rss_series[0]),
            "max_bytes": int(max(rss_series)),
            "final_bytes": int(rss_series[-1]),
        }
    if duration > 0 and len(snaps) > 1:
        summary["mean_interval_seconds"] = round(duration / (len(snaps) - 1), 3)
    return summary


def diff_summaries(
    a: Mapping[str, Any], b: Mapping[str, Any], threshold_pct: float = 25.0
) -> Dict[str, Any]:
    """Compare two timeline summaries; flag RSS and rate regressions.

    One-sided gates, mirroring ``repro obs-diff``: candidate ``b``
    regresses when its peak RSS grows, or a shared phase's mean rate
    drops, by more than ``threshold_pct`` percent. Phases present in only
    one run are reported but never fail the gate.
    """
    deltas: List[Dict[str, Any]] = []
    regressions: List[str] = []

    rss_a = (a.get("rss") or {}).get("max_bytes")
    rss_b = (b.get("rss") or {}).get("max_bytes")
    if rss_a and rss_b:
        pct = 100.0 * (rss_b - rss_a) / rss_a
        row = {"series": "rss_max_bytes", "a": rss_a, "b": rss_b,
               "delta_pct": round(pct, 2)}
        deltas.append(row)
        if pct > threshold_pct:
            regressions.append("rss_max_bytes")

    phases_a = a.get("phases") or {}
    phases_b = b.get("phases") or {}
    for phase in sorted(set(phases_a) | set(phases_b)):
        rate_a = (phases_a.get(phase) or {}).get("mean_rate")
        rate_b = (phases_b.get(phase) or {}).get("mean_rate")
        if rate_a is None or rate_b is None:
            deltas.append({"series": f"phase:{phase}", "a": rate_a, "b": rate_b,
                           "delta_pct": None})
            continue
        pct = 100.0 * (rate_b - rate_a) / rate_a if rate_a else 0.0
        deltas.append({"series": f"phase:{phase}", "a": rate_a, "b": rate_b,
                       "delta_pct": round(pct, 2)})
        if rate_a and pct < -threshold_pct:
            regressions.append(f"phase:{phase}")

    return {
        "threshold_pct": threshold_pct,
        "deltas": deltas,
        "regressions": regressions,
        "ok": not regressions,
    }
