"""Run-over-run regression diffing of metric families and span profiles.

``repro obs-diff RUN_A RUN_B [--threshold PCT]`` compares two runs'
artifacts — each a run directory (holding ``run.json`` + ``metrics.prom``),
a ``run.json`` manifest, or a bare metrics textfile — and exits non-zero
when run B regressed beyond the threshold. CI wires this against a
committed baseline under ``benchmarks/baselines/``.

Series are classified by name:

* ``*_bucket`` histogram lines are skipped entirely — bucket membership
  is timing-dependent, so identical workloads legitimately disagree;
* ``*_seconds_sum`` lines (and the manifests' wall time) are **timing**
  series: a regression is run B slower than A by more than the threshold
  percentage *and* more than an absolute floor (so microsecond spans
  cannot trip the gate on scheduler noise);
* everything else (counters, gauges, ``*_seconds_count``) is a **count**
  series: deterministic for a fixed seed/scale, so drift beyond the
  threshold in either direction is a regression.

Series present in only one run are reported as added/removed but never
fail the diff — new instrumentation must not break the baseline gate.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import parse_text
from repro.obs.runmeta import (
    RUN_MANIFEST_NAME,
    load_run_manifest,
    resolve_artifact,
)

#: Series kinds.
TIMING = "timing"
COUNT = "count"

#: Default regression threshold (percent) and absolute timing floor.
DEFAULT_THRESHOLD_PCT = 25.0
DEFAULT_MIN_TIMING_SECONDS = 0.005

#: Synthetic series name for the manifests' wall-time comparison.
WALL_SERIES = "run_wall_seconds"


@dataclass
class RunArtifacts:
    """One run's comparable artifacts, however the path named them."""

    label: str
    samples: Dict[str, float]
    manifest: Optional[Dict[str, object]] = None

    @property
    def wall_seconds(self) -> Optional[float]:
        if self.manifest is None:
            return None
        value = self.manifest.get("wall_seconds")
        return float(value) if value is not None else None


@dataclass
class SeriesDelta:
    """One compared series: values, relative delta, and the verdict."""

    series: str
    kind: str
    a: float
    b: float
    delta_pct: float
    regression: bool = False


@dataclass
class RunDiff:
    """The full comparison ``repro obs-diff`` renders."""

    deltas: List[SeriesDelta] = field(default_factory=list)
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    threshold_pct: float = DEFAULT_THRESHOLD_PCT

    @property
    def regressions(self) -> List[SeriesDelta]:
        return [delta for delta in self.deltas if delta.regression]

    def delta_rows(self, top: Optional[int] = None) -> List[Tuple[object, ...]]:
        """(series, kind, A, B, delta%, verdict) rows, largest drift first."""
        ordered = sorted(
            self.deltas,
            key=lambda d: (not d.regression, -abs(d.delta_pct), d.series),
        )
        if top is not None:
            ordered = ordered[:top]
        return [
            (
                delta.series,
                delta.kind,
                _format_value(delta.a),
                _format_value(delta.b),
                f"{delta.delta_pct:+.1f}%",
                "REGRESSION" if delta.regression else "ok",
            )
            for delta in ordered
        ]


def _format_value(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.6g}"


def classify_series(series: str) -> Optional[str]:
    """``TIMING``, ``COUNT``, or ``None`` for series the diff skips."""
    name = series.split("{", 1)[0]
    if name.endswith("_bucket"):
        return None
    if name.endswith("_seconds_sum") or name == WALL_SERIES:
        return TIMING
    return COUNT


def load_run(path: str, label: Optional[str] = None) -> RunArtifacts:
    """Resolve *path* — run directory, ``run.json``, or metrics textfile —
    into comparable artifacts. Raises ``FileNotFoundError``/``ValueError``
    with the offending path in the message."""
    manifest = None
    metrics_path: Optional[str] = None
    if os.path.isdir(path):
        manifest_path = os.path.join(path, RUN_MANIFEST_NAME)
        if os.path.exists(manifest_path):
            manifest = load_run_manifest(manifest_path)
            metrics_path = resolve_artifact(manifest, "metrics_path")
        if metrics_path is None or not os.path.exists(metrics_path):
            metrics_path = os.path.join(path, "metrics.prom")
    elif path.endswith(".json"):
        manifest = load_run_manifest(path)
        metrics_path = resolve_artifact(manifest, "metrics_path")
        if metrics_path is None:
            raise ValueError(f"{path}: manifest names no metrics_path to compare")
    else:
        metrics_path = path
    if not os.path.exists(metrics_path):
        raise FileNotFoundError(f"{metrics_path}: no metrics textfile for run {path}")
    with open(metrics_path, "r", encoding="utf-8") as handle:
        samples = parse_text(handle.read())
    return RunArtifacts(label=label or path, samples=samples, manifest=manifest)


def diff_runs(
    a: RunArtifacts,
    b: RunArtifacts,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    min_timing_seconds: float = DEFAULT_MIN_TIMING_SECONDS,
) -> RunDiff:
    """Compare run B against baseline run A."""
    diff = RunDiff(threshold_pct=threshold_pct)
    a_samples = dict(a.samples)
    b_samples = dict(b.samples)
    if a.wall_seconds is not None and b.wall_seconds is not None:
        a_samples[WALL_SERIES] = a.wall_seconds
        b_samples[WALL_SERIES] = b.wall_seconds

    for series in sorted(set(a_samples) | set(b_samples)):
        kind = classify_series(series)
        if kind is None:
            continue
        if series not in a_samples:
            diff.added.append(series)
            continue
        if series not in b_samples:
            diff.removed.append(series)
            continue
        value_a = a_samples[series]
        value_b = b_samples[series]
        if value_a == value_b:
            delta_pct = 0.0
        elif value_a == 0.0:
            delta_pct = float("inf") if value_b > 0 else float("-inf")
        else:
            delta_pct = 100.0 * (value_b - value_a) / abs(value_a)
        if kind == TIMING:
            regression = (
                value_b - value_a > min_timing_seconds
                and delta_pct > threshold_pct
            )
        else:
            regression = abs(delta_pct) > threshold_pct
        diff.deltas.append(
            SeriesDelta(
                series=series,
                kind=kind,
                a=value_a,
                b=value_b,
                delta_pct=delta_pct,
                regression=regression,
            )
        )
    return diff
