"""Unified observability: metrics, span tracing, structured JSON logging.

The operational counterpart to :mod:`repro.stream` (incremental detection)
and :mod:`repro.parallel` (sharded detection): one process-wide
:class:`MetricsRegistry` that every engine layer records into —

* :class:`~repro.revocation.fetcher.CrlFetcher` counts per-operator fetch
  attempts, retries, and outcomes, and traces a span per fetch day;
* :class:`~repro.core.pipeline.MeasurementPipeline` and the shard workers
  record per-detector duration histograms and finding counters by
  staleness class;
* the stream engine bridges :class:`~repro.stream.metrics.StreamStats`
  onto the registry so watch-mode and batch counters share one namespace;
* the parallel engine snapshots each shard's registry into its
  :class:`~repro.parallel.executor.ShardOutcome` and merges them
  deterministically in the parent.

``repro detect/lifetime/report/watch --metrics-out FILE`` writes the
registry as a Prometheus-style textfile; ``--log-json`` turns on the
structured log feed (span timings, fetch progress) on stderr.

Three sibling modules turn one run's telemetry into run *artifacts*:
:mod:`repro.obs.traceout` collects span begin/end events into a bounded
buffer and exports Chrome trace-event JSON (``--trace-out FILE``; shard
workers snapshot their local buffers and merge onto deterministic pid
lanes), :mod:`repro.obs.profile` aggregates a trace into per-span-name
self/cumulative time and the cross-lane critical path
(``repro profile TRACE``), and :mod:`repro.obs.diff` compares two runs'
metric families and span profiles against a regression threshold
(``repro obs-diff RUN_A RUN_B``). :mod:`repro.obs.runmeta` writes the
``run.json`` manifest tying a run's artifacts together.

Live telemetry (PR 9) adds the in-flight view: :mod:`repro.obs.live`
runs a heartbeat thread (``--heartbeat SECS``) that appends versioned
JSON snapshots — progress gauges with rate/ETA, registry samples,
process RSS, open spans — to a crash-durable ``timeline.jsonl``
(:mod:`repro.obs.timeline`), rendered live or post-hoc by
``repro top`` (:mod:`repro.obs.topview`) and ``repro obs-timeline``.
"""

from repro.obs import names
from repro.obs.log import (
    JsonLogHandler,
    configure_json_logging,
    get_logger,
    log,
    remove_json_logging,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramData,
    MetricsRegistry,
    get_registry,
    parse_text,
    set_default_registry,
    use_registry,
)
from repro.obs.live import (
    Heartbeat,
    PhaseProgress,
    get_heartbeat,
    phase_progress,
    read_rss_bytes,
    set_heartbeat,
    use_heartbeat,
)
from repro.obs.timeline import (
    TIMELINE_NAME,
    TimelineWriter,
    read_timeline,
    summarize_timeline,
)
from repro.obs.trace import (
    Span,
    current_span,
    get_slow_span_ms,
    open_spans,
    set_slow_span_ms,
    span,
)
from repro.obs.traceout import (
    TraceCollector,
    get_collector,
    load_trace,
    set_default_collector,
    use_collector,
)

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Heartbeat",
    "Histogram",
    "HistogramData",
    "JsonLogHandler",
    "MetricsRegistry",
    "PhaseProgress",
    "Span",
    "TIMELINE_NAME",
    "TimelineWriter",
    "TraceCollector",
    "configure_json_logging",
    "current_span",
    "get_collector",
    "get_heartbeat",
    "get_logger",
    "get_registry",
    "get_slow_span_ms",
    "load_trace",
    "log",
    "names",
    "open_spans",
    "parse_text",
    "phase_progress",
    "read_rss_bytes",
    "read_timeline",
    "remove_json_logging",
    "set_default_collector",
    "set_default_registry",
    "set_heartbeat",
    "set_slow_span_ms",
    "span",
    "summarize_timeline",
    "use_collector",
    "use_heartbeat",
    "use_registry",
]
