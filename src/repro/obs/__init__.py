"""Unified observability: metrics, span tracing, structured JSON logging.

The operational counterpart to :mod:`repro.stream` (incremental detection)
and :mod:`repro.parallel` (sharded detection): one process-wide
:class:`MetricsRegistry` that every engine layer records into —

* :class:`~repro.revocation.fetcher.CrlFetcher` counts per-operator fetch
  attempts, retries, and outcomes, and traces a span per fetch day;
* :class:`~repro.core.pipeline.MeasurementPipeline` and the shard workers
  record per-detector duration histograms and finding counters by
  staleness class;
* the stream engine bridges :class:`~repro.stream.metrics.StreamStats`
  onto the registry so watch-mode and batch counters share one namespace;
* the parallel engine snapshots each shard's registry into its
  :class:`~repro.parallel.executor.ShardOutcome` and merges them
  deterministically in the parent.

``repro detect/lifetime/report/watch --metrics-out FILE`` writes the
registry as a Prometheus-style textfile; ``--log-json`` turns on the
structured log feed (span timings, fetch progress) on stderr.

Three sibling modules turn one run's telemetry into run *artifacts*:
:mod:`repro.obs.traceout` collects span begin/end events into a bounded
buffer and exports Chrome trace-event JSON (``--trace-out FILE``; shard
workers snapshot their local buffers and merge onto deterministic pid
lanes), :mod:`repro.obs.profile` aggregates a trace into per-span-name
self/cumulative time and the cross-lane critical path
(``repro profile TRACE``), and :mod:`repro.obs.diff` compares two runs'
metric families and span profiles against a regression threshold
(``repro obs-diff RUN_A RUN_B``). :mod:`repro.obs.runmeta` writes the
``run.json`` manifest tying a run's artifacts together.
"""

from repro.obs import names
from repro.obs.log import (
    JsonLogHandler,
    configure_json_logging,
    get_logger,
    log,
    remove_json_logging,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramData,
    MetricsRegistry,
    get_registry,
    parse_text,
    set_default_registry,
    use_registry,
)
from repro.obs.trace import Span, current_span, span
from repro.obs.traceout import (
    TraceCollector,
    get_collector,
    load_trace,
    set_default_collector,
    use_collector,
)

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "HistogramData",
    "JsonLogHandler",
    "MetricsRegistry",
    "Span",
    "TraceCollector",
    "configure_json_logging",
    "current_span",
    "get_collector",
    "get_logger",
    "get_registry",
    "load_trace",
    "log",
    "names",
    "parse_text",
    "remove_json_logging",
    "set_default_collector",
    "set_default_registry",
    "span",
    "use_collector",
    "use_registry",
]
