"""Unified observability: metrics, span tracing, structured JSON logging.

The operational counterpart to :mod:`repro.stream` (incremental detection)
and :mod:`repro.parallel` (sharded detection): one process-wide
:class:`MetricsRegistry` that every engine layer records into —

* :class:`~repro.revocation.fetcher.CrlFetcher` counts per-operator fetch
  attempts, retries, and outcomes, and traces a span per fetch day;
* :class:`~repro.core.pipeline.MeasurementPipeline` and the shard workers
  record per-detector duration histograms and finding counters by
  staleness class;
* the stream engine bridges :class:`~repro.stream.metrics.StreamStats`
  onto the registry so watch-mode and batch counters share one namespace;
* the parallel engine snapshots each shard's registry into its
  :class:`~repro.parallel.executor.ShardOutcome` and merges them
  deterministically in the parent.

``repro detect/lifetime/report/watch --metrics-out FILE`` writes the
registry as a Prometheus-style textfile; ``--log-json`` turns on the
structured log feed (span timings, fetch progress) on stderr.
"""

from repro.obs import names
from repro.obs.log import (
    JsonLogHandler,
    configure_json_logging,
    get_logger,
    log,
    remove_json_logging,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramData,
    MetricsRegistry,
    get_registry,
    parse_text,
    set_default_registry,
    use_registry,
)
from repro.obs.trace import Span, current_span, span

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "HistogramData",
    "JsonLogHandler",
    "MetricsRegistry",
    "Span",
    "configure_json_logging",
    "current_span",
    "get_logger",
    "get_registry",
    "log",
    "names",
    "parse_text",
    "remove_json_logging",
    "set_default_registry",
    "span",
    "use_registry",
]
