"""``python -m repro top`` — a live console view over ``timeline.jsonl``.

No curses, no dependencies: live mode repaints the screen with two ANSI
escapes per frame (cursor-home + clear), and ``--once`` prints a single
plain-text frame — deterministic for a fixed timeline file, which is how
the golden-snapshot test pins the layout. All state comes from the
timeline itself (the run's own clock), never from the viewer's wall
clock, so a finished run renders identically forever.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional, TextIO

from repro.obs.timeline import (
    TIMELINE_NAME,
    read_timeline,
    snapshots,
    timeline_meta,
)

#: Eight-level block ramp for the RSS sparkline.
SPARK_CHARS = "▁▂▃▄▅▆▇█"

BAR_WIDTH = 24
SPARK_WIDTH = 32
MAX_SPAN_ROWS = 5

ANSI_REPAINT = "\x1b[H\x1b[2J"


def format_count(value: float) -> str:
    """Human-scale integer formatting: 1234567 → ``1.23M``."""
    value = float(value)
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= threshold:
            return f"{value / threshold:.2f}{suffix}"
    if value.is_integer():
        return str(int(value))
    return f"{value:.2f}"


def format_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    seconds = max(0.0, float(seconds))
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, rem = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{rem:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def progress_bar(done: float, total: float, width: int = BAR_WIDTH) -> str:
    """``[######----------]`` — indeterminate phases render as dots."""
    if total <= 0:
        return "[" + "·" * width + "]"
    fraction = min(1.0, done / total)
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def sparkline(series: List[float], width: int = SPARK_WIDTH) -> str:
    """Block-character sparkline of *series*, downsampled to *width*."""
    values = [float(v) for v in series if v is not None]
    if not values:
        return ""
    if len(values) > width:
        # Last value of each of `width` even chunks — keeps the endpoint.
        step = len(values) / width
        values = [values[min(len(values) - 1, int((i + 1) * step) - 1)]
                  for i in range(width)]
    low, high = min(values), max(values)
    if high <= low:
        return SPARK_CHARS[0] * len(values)
    scale = (len(SPARK_CHARS) - 1) / (high - low)
    return "".join(SPARK_CHARS[int((v - low) * scale)] for v in values)


def _phase_lines(last: Dict[str, Any]) -> List[str]:
    lines: List[str] = []
    phases = last.get("phases") or {}
    if not phases:
        return ["  (no progress phases reported yet)"]
    name_width = max(len(name) for name in phases)
    for name in sorted(phases):
        row = phases[name]
        done = float(row.get("done", 0.0))
        total = float(row.get("total", 0.0))
        bar = progress_bar(done, total)
        if total > 0:
            pct = f"{min(100.0, 100.0 * done / total):5.1f}%"
            amount = f"{format_count(done)}/{format_count(total)}"
        else:
            pct = "    -"
            amount = format_count(done)
        rate = row.get("rate")
        rate_text = f"{format_count(rate)}/s" if rate else "-"
        eta_text = format_duration(row.get("eta_seconds")) if row.get(
            "eta_seconds") is not None else "-"
        lines.append(
            f"  {name:<{name_width}}  {bar} {pct}  {amount:>15}  "
            f"{rate_text:>10}  eta {eta_text}"
        )
    return lines


def _span_lines(last: Dict[str, Any]) -> List[str]:
    spans = last.get("open_spans") or []
    if not spans:
        return ["  (none)"]
    lines = []
    for span in spans[:MAX_SPAN_ROWS]:
        indent = "  " * int(span.get("depth", 0))
        parent = span.get("parent")
        suffix = f"  (in {parent})" if parent else ""
        lines.append(
            f"  {format_duration(span.get('seconds')):>8}  "
            f"{indent}{span.get('name')}{suffix}"
        )
    return lines


def render_frame(records: List[Dict[str, Any]], width: int = 80) -> str:
    """One full console frame for a timeline — pure function of *records*."""
    meta = timeline_meta(records)
    snaps = snapshots(records)
    title = meta.get("command") or "repro run"
    header = f"repro top — {title}"
    lines = [header, "=" * min(width, max(len(header), 20))]
    if not snaps:
        lines.append("(no snapshots yet — heartbeat warming up)")
        return "\n".join(lines) + "\n"

    last = snaps[-1]
    status = "finished" if last.get("final") else "running"
    lines.append(
        f"status: {status}   elapsed: {format_duration(last.get('elapsed'))}   "
        f"snapshots: {len(snaps)}   heartbeat: {meta.get('heartbeat_seconds')}s"
    )
    markers = [r for r in records if r.get("kind") == "marker"]
    for marker in markers:
        fields = {k: v for k, v in marker.items()
                  if k not in ("kind", "ts", "elapsed")}
        if fields:
            text = ", ".join(f"{k}={v}" for k, v in sorted(fields.items()))
            lines.append(f"marker @ {format_duration(marker.get('elapsed'))}: {text}")

    lines.append("")
    lines.append("progress")
    lines.extend(_phase_lines(last))

    rss_series = [s.get("rss_bytes") for s in snaps if s.get("rss_bytes")]
    lines.append("")
    if rss_series:
        current_mib = rss_series[-1] / (1024 * 1024)
        peak_mib = max(rss_series) / (1024 * 1024)
        lines.append(
            f"rss  {sparkline(rss_series)}  "
            f"{current_mib:.1f} MiB (peak {peak_mib:.1f} MiB)"
        )
    else:
        lines.append("rss  (unavailable)")

    lines.append("")
    lines.append("open spans (longest first)")
    lines.extend(_span_lines(last))
    return "\n".join(lines) + "\n"


def run_top(
    path: str,
    once: bool = False,
    interval: float = 1.0,
    stream: Optional[TextIO] = None,
    max_frames: Optional[int] = None,
) -> int:
    """Entry point behind ``repro top RUN_DIR``.

    ``--once`` prints a single frame and exits. Live mode repaints every
    *interval* seconds until the timeline's final snapshot appears (or
    Ctrl-C). *max_frames* bounds live mode for tests.
    """
    out = stream if stream is not None else sys.stdout
    frames = 0
    while True:
        records = read_timeline(path)
        frame = render_frame(records)
        if once:
            out.write(frame)
            return 0
        out.write(ANSI_REPAINT + frame)
        out.flush()
        frames += 1
        snaps = snapshots(records)
        if snaps and snaps[-1].get("final"):
            return 0
        if max_frames is not None and frames >= max_frames:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0


__all__ = [
    "TIMELINE_NAME",
    "format_count",
    "format_duration",
    "progress_bar",
    "render_frame",
    "run_top",
    "sparkline",
]
