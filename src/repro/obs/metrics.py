"""Process-wide metrics: counters, gauges, and fixed-bucket histograms.

The paper's pipelines are long-running collection operations (six months of
daily CRL fetches, decade-scale CT replay); a deployment needs their health
quantified continuously, not discovered when a test fails. This module is
the storage half of that: a :class:`MetricsRegistry` holding named metric
families, a Prometheus-style text exposition (:meth:`MetricsRegistry.render_text`
/ :meth:`~MetricsRegistry.write_textfile`), and a deterministic
:meth:`~MetricsRegistry.merge` so per-shard snapshots from the parallel
engine sum into the parent's registry.

Merge semantics are chosen to be commutative and associative — counters and
histograms add, gauges take the maximum — so merging shard snapshots in any
order produces identical totals (the parallel engine's determinism bar).

A process-wide default registry is reachable via :func:`get_registry`;
:func:`use_registry` scopes a replacement per thread (shard workers and the
CLI use it so concurrent runs never interleave their counters).
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: Default histogram buckets (seconds) — wide enough for both per-event
#: handler latencies (sub-millisecond) and whole-detector passes (seconds).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0
)

LabelValues = Tuple[str, ...]


class HistogramData:
    """Bucket counts, sum, and count for one labelled histogram series."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, num_buckets: int) -> None:
        # One slot per finite upper bound plus the implicit +Inf bucket.
        self.bucket_counts: List[int] = [0] * (num_buckets + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float, buckets: Sequence[float]) -> None:
        # Prometheus buckets are cumulative-by-convention only at render
        # time; internally each slot counts its own range, upper bound
        # inclusive (bisect_left: value == bound lands in that bucket).
        self.bucket_counts[bisect_left(buckets, value)] += 1
        self.sum += value
        self.count += 1

    def to_record(self) -> Dict[str, object]:
        return {
            "bucket_counts": list(self.bucket_counts),
            "sum": self.sum,
            "count": self.count,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "HistogramData":
        counts = list(record["bucket_counts"])  # type: ignore[arg-type]
        data = cls(len(counts) - 1)
        data.bucket_counts = [int(c) for c in counts]
        data.sum = float(record["sum"])  # type: ignore[arg-type]
        data.count = int(record["count"])  # type: ignore[arg-type]
        return data


class MetricFamily:
    """One named metric with fixed label names and one sample per labelset."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self.buckets = buckets
        self.samples: Dict[LabelValues, Union[float, HistogramData]] = {}

    def label_values(self, labels: Mapping[str, str]) -> LabelValues:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)


class _Handle:
    """Base for the per-family handles the instrumented code holds."""

    def __init__(self, registry: "MetricsRegistry", family: MetricFamily) -> None:
        self._registry = registry
        self._family = family

    @property
    def name(self) -> str:
        return self._family.name


class Counter(_Handle):
    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up (got {amount})")
        key = self._family.label_values(labels)
        with self._registry._lock:
            self._family.samples[key] = self._family.samples.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return float(self._family.samples.get(self._family.label_values(labels), 0.0))


class Gauge(_Handle):
    def set(self, value: float, **labels: str) -> None:
        key = self._family.label_values(labels)
        with self._registry._lock:
            self._family.samples[key] = float(value)

    def set_max(self, value: float, **labels: str) -> None:
        """Keep the larger of the current and new value (high-water mark)."""
        key = self._family.label_values(labels)
        with self._registry._lock:
            current = self._family.samples.get(key)
            if current is None or value > current:
                self._family.samples[key] = float(value)

    def value(self, **labels: str) -> float:
        return float(self._family.samples.get(self._family.label_values(labels), 0.0))


class Histogram(_Handle):
    def observe(self, value: float, **labels: str) -> None:
        key = self._family.label_values(labels)
        with self._registry._lock:
            data = self._family.samples.get(key)
            if data is None:
                data = HistogramData(len(self._family.buckets))
                self._family.samples[key] = data
            data.observe(value, self._family.buckets)

    def data(self, **labels: str) -> Optional[HistogramData]:
        return self._family.samples.get(self._family.label_values(labels))


_HANDLE_TYPES = {COUNTER: Counter, GAUGE: Gauge, HISTOGRAM: Histogram}


class MetricsRegistry:
    """A set of metric families with snapshot, merge, and text exposition."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: Dict[str, MetricFamily] = {}

    # -- registration --------------------------------------------------------

    def counter(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._handle(name, COUNTER, help_text, labels)

    def gauge(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._handle(name, GAUGE, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._handle(name, HISTOGRAM, help_text, labels, tuple(buckets))

    def _handle(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Sequence[str],
        buckets: Optional[Tuple[float, ...]] = None,
    ):
        if buckets is not None and (
            not buckets or list(buckets) != sorted(set(buckets))
        ):
            raise ValueError(f"{name}: buckets must be sorted, distinct, non-empty")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help_text, tuple(labels), buckets)
                self._families[name] = family
            else:
                if family.kind != kind:
                    raise ValueError(
                        f"{name} already registered as {family.kind}, not {kind}"
                    )
                if family.label_names != tuple(labels):
                    raise ValueError(
                        f"{name} already registered with labels "
                        f"{family.label_names}, not {tuple(labels)}"
                    )
                if kind == HISTOGRAM and family.buckets != buckets:
                    raise ValueError(f"{name} already registered with other buckets")
        return _HANDLE_TYPES[kind](self, family)

    # -- reads ---------------------------------------------------------------

    def families(self) -> Iterator[MetricFamily]:
        return iter(sorted(self._families.values(), key=lambda f: f.name))

    def counter_total(self, name: str) -> float:
        """Sum of a counter family across all labelsets (0.0 when absent)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        return float(sum(family.samples.values()))  # type: ignore[arg-type]

    def reset(self) -> None:
        with self._lock:
            self._families.clear()

    # -- snapshot / merge ----------------------------------------------------

    def to_record(self) -> Dict[str, object]:
        """JSON-serializable snapshot (travels in ShardOutcome pickles too)."""
        with self._lock:
            families = {}
            for family in self.families():
                samples = []
                for key in sorted(family.samples):
                    value = family.samples[key]
                    samples.append(
                        [
                            list(key),
                            value.to_record()
                            if isinstance(value, HistogramData)
                            else value,
                        ]
                    )
                families[family.name] = {
                    "kind": family.kind,
                    "help": family.help,
                    "labels": list(family.label_names),
                    "buckets": list(family.buckets) if family.buckets else None,
                    "samples": samples,
                }
            return {"families": families}

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "MetricsRegistry":
        registry = cls()
        registry.merge(record)
        return registry

    def merge(self, other: Union["MetricsRegistry", Mapping[str, object]]) -> None:
        """Fold another registry (or its record) into this one.

        Counters and histogram buckets add; gauges take the maximum — all
        commutative and associative, so shard snapshots merge to identical
        totals in any order.
        """
        record = other.to_record() if isinstance(other, MetricsRegistry) else other
        with self._lock:
            for name, spec in record.get("families", {}).items():  # type: ignore[union-attr]
                kind = spec["kind"]
                buckets = tuple(spec["buckets"]) if spec.get("buckets") else None
                self._handle(name, kind, spec.get("help", ""), spec["labels"], buckets)
                family = self._families[name]
                for key_list, value in spec["samples"]:
                    key = tuple(key_list)
                    if kind == HISTOGRAM:
                        incoming = HistogramData.from_record(value)
                        data = family.samples.get(key)
                        if data is None:
                            family.samples[key] = incoming
                        else:
                            if len(data.bucket_counts) != len(incoming.bucket_counts):
                                raise ValueError(
                                    f"{name}: histogram bucket layouts differ"
                                )
                            for i, c in enumerate(incoming.bucket_counts):
                                data.bucket_counts[i] += c
                            data.sum += incoming.sum
                            data.count += incoming.count
                    elif kind == COUNTER:
                        family.samples[key] = family.samples.get(key, 0.0) + value
                    else:  # gauge: high-water mark
                        current = family.samples.get(key)
                        if current is None or value > current:
                            family.samples[key] = float(value)

    # -- exposition ----------------------------------------------------------

    def render_text(self) -> str:
        """Prometheus text exposition format, deterministically ordered."""
        lines: List[str] = []
        with self._lock:
            for family in self.families():
                if not family.samples:
                    continue
                # HELP text is one line by format; escape like Prometheus
                # clients do so backslashes/newlines survive a round trip.
                escaped_help = family.help.replace("\\", "\\\\").replace("\n", "\\n")
                lines.append(f"# HELP {family.name} {escaped_help}")
                lines.append(f"# TYPE {family.name} {family.kind}")
                for key in sorted(family.samples):
                    value = family.samples[key]
                    if isinstance(value, HistogramData):
                        cumulative = 0
                        bounds = [_format_value(b) for b in family.buckets] + ["+Inf"]
                        for bound, count in zip(bounds, value.bucket_counts):
                            cumulative += count
                            labels = _render_labels(
                                family.label_names + ("le",), key + (bound,)
                            )
                            lines.append(
                                f"{family.name}_bucket{labels} {cumulative}"
                            )
                        labels = _render_labels(family.label_names, key)
                        lines.append(
                            f"{family.name}_sum{labels} {_format_value(value.sum)}"
                        )
                        lines.append(f"{family.name}_count{labels} {value.count}")
                    else:
                        labels = _render_labels(family.label_names, key)
                        lines.append(
                            f"{family.name}{labels} {_format_value(value)}"
                        )
        return "\n".join(lines) + ("\n" if lines else "")

    def flat_samples(self) -> Dict[str, float]:
        """One flat ``{'name{label="v"}': value}`` mapping of every sample.

        Exactly the series :func:`parse_text` recovers from
        :meth:`render_text` — histogram buckets appear as cumulative
        ``_bucket{...,le="..."}`` series plus ``_sum``/``_count``. The
        heartbeat's timeline snapshots use this, so a run's final
        snapshot and its ``metrics.prom`` agree by construction.
        """
        return parse_text(self.render_text())

    def write_textfile(self, path: str) -> str:
        """Atomically write :meth:`render_text` output (textfile-collector style)."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(self.render_text())
        os.replace(tmp_path, path)
        return path


def _format_value(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return format(float(value), ".9g")


def _render_labels(names: Tuple[str, ...], values: Tuple[str, ...]) -> str:
    if not names:
        return ""
    escaped = (
        str(v).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        for v in values
    )
    return "{" + ",".join(f'{n}="{v}"' for n, v in zip(names, escaped)) + "}"


def parse_text(text: str) -> Dict[str, float]:
    """Parse an exposition back into ``{'name{label="v"}': value}``.

    Deliberately minimal — enough for tests and CI to assert on a written
    textfile without a prometheus client dependency.
    """
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        samples[series] = float("inf") if value == "+Inf" else float(value)
    return samples


# -- process-wide default registry -------------------------------------------

_DEFAULT_REGISTRY = MetricsRegistry()
_ACTIVE = threading.local()


def get_registry() -> MetricsRegistry:
    """The registry instrumented code records into (thread-scoped override
    via :func:`use_registry`, else the process-wide default)."""
    return getattr(_ACTIVE, "registry", None) or _DEFAULT_REGISTRY


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:  # repro-lint: disable=RL703  # embedding API: hosts swap the process registry
    """Replace the process-wide default registry; returns the previous one."""
    global _DEFAULT_REGISTRY
    previous = _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = registry
    return previous


@contextmanager
def use_registry(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Scope :func:`get_registry` to *registry* for the current thread.

    Shard workers wrap their detector pass in this so each shard snapshot
    is isolated; tests use it to keep assertions off the global registry.
    """
    if registry is None:
        registry = MetricsRegistry()
    previous = getattr(_ACTIVE, "registry", None)
    _ACTIVE.registry = registry
    try:
        yield registry
    finally:
        _ACTIVE.registry = previous
