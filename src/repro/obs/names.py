"""Canonical metric names (and help strings) for the shared registry.

Every instrumented subsystem — the CRL fetcher, the batch pipeline, the
shard workers, and the stream engine — registers its metrics under these
names so that batch, parallel, and watch runs share one namespace: a
findings counter incremented by a shard worker and one incremented by the
stream engine land in the *same* time series. Keeping the names here (and
only here) prevents the drift that silently splits a series in two.
"""

from __future__ import annotations

# -- CRL collection (repro.revocation.fetcher) -------------------------------

CRL_FETCH_ATTEMPTS = "repro_crl_fetch_attempts_total"
CRL_FETCH_ATTEMPTS_HELP = "CRL fetch attempts per CA operator, including retries."

CRL_FETCH_RETRIES = "repro_crl_fetch_retries_total"
CRL_FETCH_RETRIES_HELP = "Transient-failure retries per CA operator."

CRL_FETCH_OUTCOMES = "repro_crl_fetch_outcomes_total"
CRL_FETCH_OUTCOMES_HELP = "Final per-day CRL fetch outcomes per CA operator."

# -- detection (repro.core.pipeline / repro.parallel) ------------------------

DETECTOR_SECONDS = "repro_detector_seconds"
DETECTOR_SECONDS_HELP = "Wall time of one detector pass over its dataset."

FINDINGS_TOTAL = "repro_findings_total"
FINDINGS_TOTAL_HELP = "Stale-certificate findings by staleness class."

# -- streaming engine (repro.stream) -----------------------------------------

STREAM_EVENTS = "repro_stream_events_total"
STREAM_EVENTS_HELP = "Events dispatched by the stream bus, by event type."

STREAM_HANDLER_SECONDS = "repro_stream_handler_seconds"
STREAM_HANDLER_SECONDS_HELP = "Per-event handler dispatch wall time, by event type."

STREAM_DAYS = "repro_stream_days_processed_total"
STREAM_DAYS_HELP = "Event-days fully processed by the stream engine."

STREAM_CHECKPOINTS = "repro_stream_checkpoints_written_total"
STREAM_CHECKPOINTS_HELP = "Checkpoints written by the stream engine."

STREAM_MAX_QUEUE_DEPTH = "repro_stream_max_queue_depth"
STREAM_MAX_QUEUE_DEPTH_HELP = "High-water mark of the event bus queue."

# -- interval joins (repro.util.intervals) -----------------------------------

SWEEP_SCANS = "repro_interval_sweep_scans_total"
SWEEP_SCANS_HELP = "Active intervals scanned by interval_sweep_join."

SWEEP_PAIRS = "repro_interval_sweep_pairs_total"
SWEEP_PAIRS_HELP = "(event, interval) pairs emitted by interval_sweep_join."

# -- query service (repro.serve) ---------------------------------------------

SERVE_REQUESTS = "repro_serve_requests_total"
SERVE_REQUESTS_HELP = "HTTP requests answered, by route template and status."

SERVE_REQUEST_SECONDS = "repro_serve_request_seconds"
SERVE_REQUEST_SECONDS_HELP = "Request handling wall time, by route template."

SERVE_INDEX_FINDINGS = "repro_serve_index_findings"
SERVE_INDEX_FINDINGS_HELP = "Findings held by the serving index."

SERVE_INDEX_BUILD_SECONDS = "repro_serve_index_build_seconds"
SERVE_INDEX_BUILD_SECONDS_HELP = "Wall time spent building the serving index."

# -- columnar data plane (repro.data) ----------------------------------------

DATA_SEGMENTS_OPENED = "repro_data_segments_opened_total"
DATA_SEGMENTS_OPENED_HELP = "Columnar segments mapped into memory, by table."

DATA_SEGMENTS_PRUNED = "repro_data_segments_pruned_total"
DATA_SEGMENTS_PRUNED_HELP = (
    "Columnar segments skipped by zone-map pruning during scans, by table."
)

# -- streaming world generation (repro.ecosystem.streamgen) ------------------

GEN_DOMAINS = "repro_gen_domains_total"
GEN_DOMAINS_HELP = "Domains emitted by the streaming world generator."

GEN_ROWS = "repro_gen_rows_total"
GEN_ROWS_HELP = "Rows emitted by the streaming world generator, by table."

GEN_SHARDS = "repro_gen_shards"
GEN_SHARDS_HELP = "Shard count used by the streaming world generator."

GEN_DNS_STRIDE = "repro_gen_dns_stride"
GEN_DNS_STRIDE_HELP = (
    "Scan-day stride chosen to keep DNS rows within the row budget "
    "(1 = every day in the scan window)."
)

# -- live progress / heartbeat (repro.obs.live) ------------------------------

PROGRESS_DONE = "repro_progress_done"
PROGRESS_DONE_HELP = "Work units completed so far, by phase."

PROGRESS_TOTAL = "repro_progress_total"
PROGRESS_TOTAL_HELP = (
    "Work units expected for the phase (0 = unknown ahead of time)."
)

HEARTBEAT_SNAPSHOTS = "repro_heartbeat_snapshots_total"
HEARTBEAT_SNAPSHOTS_HELP = "Timeline snapshots appended by the heartbeat."

PROCESS_RSS_BYTES = "repro_process_rss_bytes"
PROCESS_RSS_BYTES_HELP = "Resident set size sampled by the heartbeat."

#: Declared progress phases — the ``phase`` label values the engines may
#: report through :func:`repro.obs.live.phase_progress`. RL302 enforces
#: that every call site uses a phase declared here, for the same reason
#: RL301 pins metric names: an undeclared phase silently splits the
#: progress timeline the moment a second call site drifts.
PROGRESS_PHASES = (
    "load_bundle",
    "detect_detectors",
    "detect_shards",
    "stream_days",
    "stream_events",
    "gen_shards",
    "gen_domains",
    "gen_rows_certs",
    "gen_rows_revocations",
    "gen_rows_whois",
    "gen_rows_dns",
    "gen_spill_bytes",
    "serve_index_build",
)

#: Declared RNG stream labels — every site that forks a random stream
#: (``RngStream(seed, *labels)``, ``split_seed(seed, *labels)``, or a
#: keyed wrapper such as ``_hash_uniform``) must use a label tuple listed
#: here, with ``"*"`` standing for a runtime-varying component (a domain
#: name, a shard index). RL702 enforces the registry in both directions:
#: an undeclared fork site is flagged (two subsystems silently sharing a
#: stream is the determinism bug the label scheme exists to prevent), and
#: a declared tuple with no surviving fork site is flagged as stale.
#: Child ``.split(...)`` calls are exempt — they are rooted in a declared
#: parent namespace, so their labels cannot collide across subsystems.
RNG_LABELS = (
    ("cdn",),
    ("crl-fetch",),
    ("ct",),
    ("lifecycle",),
    ("popularity",),
    ("popularity-samples",),
    ("registrations",),
    ("revocations",),
    ("streamgen", "breach", "*"),
    ("streamgen", "breach-day", "*"),
    ("streamgen", "dns-loss", "*", "*"),
    ("streamgen", "domain", "*"),
    ("streamgen", "plan", "*"),
    ("table5-sample",),
    ("tls",),
)

# -- tracing (repro.obs.trace / repro.obs.traceout) --------------------------

SPAN_SECONDS = "repro_span_seconds"
SPAN_SECONDS_HELP = "Wall time of traced spans, by span name."

SPAN_EXCEPTIONS = "repro_span_exceptions_total"
SPAN_EXCEPTIONS_HELP = "Traced blocks that exited by raising, by span name."

TRACE_EVENTS_DROPPED = "repro_trace_events_dropped"
TRACE_EVENTS_DROPPED_HELP = (
    "Trace events discarded because the collector buffer was full."
)
