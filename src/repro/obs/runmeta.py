"""Run manifests: one ``run.json`` describing each observed CLI run.

Written next to ``--metrics-out`` by the pipeline-running subcommands, the
manifest is the index card that makes run artifacts comparable later: the
exact CLI arguments, world seed/scale, wall time, peak RSS (via
``resource.getrusage``), Python/platform identity, and relative paths to
the run's ``metrics.prom`` and trace file. ``repro obs-diff`` resolves a
run directory through its manifest; CI commits one under
``benchmarks/baselines/`` as the regression baseline.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from typing import Any, Dict, Mapping, Optional

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA = 1

#: Canonical file name, both for writing and directory resolution.
RUN_MANIFEST_NAME = "run.json"


def peak_rss_bytes() -> Optional[int]:
    """This process's peak resident set size, or ``None`` off-POSIX.

    ``ru_maxrss`` is kibibytes on Linux but bytes on macOS.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def peak_rss_children_bytes() -> Optional[int]:
    """Largest peak RSS among waited-for child processes, or ``None``.

    This is what bounds a *shard worker* of the streaming generator or
    the parallel detector: RUSAGE_SELF only sees the parent, so an
    O(shard) memory claim is checked against this field instead.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    if peak <= 0:
        return None  # no children have been waited for
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def build_run_manifest(
    command: str,
    argv: Optional[list] = None,
    seed: Optional[int] = None,
    scale: Optional[float] = None,
    workers: Optional[int] = None,
    wall_seconds: float = 0.0,
    exit_status: str = "ok",
    exit_code: Optional[int] = None,
    metrics_path: Optional[str] = None,
    trace_path: Optional[str] = None,
    trace_events: Optional[int] = None,
    trace_dropped: Optional[int] = None,
    timeline_path: Optional[str] = None,
    timeline_snapshots: Optional[int] = None,
    heartbeat_seconds: Optional[float] = None,
) -> Dict[str, Any]:
    """Assemble the manifest document (pure data; write it separately)."""
    return {
        "schema": MANIFEST_SCHEMA,
        "command": command,
        "argv": list(argv) if argv is not None else None,
        "seed": seed,
        "scale": scale,
        "workers": workers,
        "wall_seconds": wall_seconds,
        "peak_rss_bytes": peak_rss_bytes(),
        "peak_rss_children_bytes": peak_rss_children_bytes(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "exit_status": exit_status,
        "exit_code": exit_code,
        "metrics_path": metrics_path,
        "trace_path": trace_path,
        "trace_events": trace_events,
        "trace_dropped": trace_dropped,
        "timeline_path": timeline_path,
        "timeline_snapshots": timeline_snapshots,
        "heartbeat_seconds": heartbeat_seconds,
    }


def write_run_manifest(path: str, manifest: Mapping[str, Any]) -> str:
    """Atomically write *manifest* as JSON; artifact paths are stored
    relative to the manifest's directory when possible.

    Every ``*_path`` field is relativized — not a fixed list — so a new
    sibling artifact (``timeline_path`` was the latest) is portable the
    moment it is added, even when the caller passed ``--metrics-out`` as
    an absolute path into a different directory.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    document = dict(manifest)
    for key in sorted(document):
        if not key.endswith("_path"):
            continue
        value = document.get(key)
        if value:
            try:
                document[key] = os.path.relpath(os.path.abspath(value), directory)
            except ValueError:  # pragma: no cover - cross-drive on Windows
                document[key] = os.path.abspath(value)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)
    return path


def load_run_manifest(path: str) -> Dict[str, Any]:
    """Read a manifest from a ``run.json`` path or a directory holding one."""
    if os.path.isdir(path):
        path = os.path.join(path, RUN_MANIFEST_NAME)
    with open(path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if not isinstance(manifest, dict):
        raise ValueError(f"{path}: not a run manifest")
    manifest["_manifest_dir"] = os.path.dirname(os.path.abspath(path))
    return manifest


def resolve_artifact(manifest: Mapping[str, Any], key: str) -> Optional[str]:
    """Absolute path of a manifest artifact (``metrics_path``/``trace_path``),
    or ``None`` when the run did not produce it."""
    value = manifest.get(key)
    if not value:
        return None
    if os.path.isabs(value):
        return str(value)
    return os.path.join(str(manifest.get("_manifest_dir", "")), str(value))
