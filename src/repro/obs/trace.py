"""Lightweight span tracing: wall time + nesting, no external deps.

``with span("crl_fetch_day", day=d):`` times a block, records the elapsed
wall time into the shared registry's ``repro_span_seconds`` histogram
(labelled by span name only — attributes stay out of metric labels so
high-cardinality values like days never explode a time series), and emits
a DEBUG-level structured log record carrying the attributes, duration,
nesting depth, parent span name, and exit status.

Spans are failure-aware: a block that raises is recorded with
``status="error"`` (on the log record and the trace event) and bumps the
``repro_span_exceptions_total`` counter by span name — the exception
itself always propagates untouched.

When a :class:`~repro.obs.traceout.TraceCollector` is active (see
:func:`~repro.obs.traceout.use_collector`), every span additionally
records a begin and an end trace event, exportable as a Chrome trace.
With no collector active, the trace path costs a single ``None`` check.

Spans nest per thread; :func:`current_span` exposes the innermost open
span so deeply nested code can attach context without threading a handle
through every call.
"""

from __future__ import annotations

import logging
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional

from repro.obs import names
from repro.obs.log import log
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.traceout import get_collector

_STACK = threading.local()


@dataclass
class Span:
    """One traced block; ``seconds`` and ``status`` are filled on exit."""

    name: str
    attrs: Dict[str, Any] = field(default_factory=dict)
    depth: int = 0
    parent: Optional[str] = None
    seconds: Optional[float] = None
    status: str = "ok"


def _spans() -> List[Span]:
    stack = getattr(_STACK, "spans", None)
    if stack is None:
        stack = []
        _STACK.spans = stack
    return stack


def current_span() -> Optional[Span]:
    """The innermost open span on this thread, or ``None``."""
    stack = _spans()
    return stack[-1] if stack else None


@contextmanager
def span(
    name: str,
    registry: Optional[MetricsRegistry] = None,
    **attrs: Any,
) -> Iterator[Span]:
    """Time a block; record a histogram sample, trace events, and a log."""
    stack = _spans()
    current = Span(
        name=name,
        attrs=dict(attrs),
        depth=len(stack),
        parent=stack[-1].name if stack else None,
    )
    stack.append(current)
    # Captured once so begin/end land in the same collector even if the
    # active scope changes inside the block.
    collector = get_collector()
    if collector is not None:
        collector.record_begin(name, current.attrs or None)
    started = perf_counter()
    try:
        yield current
    except BaseException:
        current.status = "error"
        raise
    finally:
        current.seconds = perf_counter() - started
        stack.pop()
        if collector is not None:
            collector.record_end(name, status=current.status)
        active_registry = registry or get_registry()
        active_registry.histogram(
            names.SPAN_SECONDS, names.SPAN_SECONDS_HELP, labels=("name",)
        ).observe(current.seconds, name=name)
        if current.status == "error":
            active_registry.counter(
                names.SPAN_EXCEPTIONS, names.SPAN_EXCEPTIONS_HELP, labels=("name",)
            ).inc(name=name)
        log(
            "span",
            level=logging.DEBUG,
            name=name,
            seconds=round(current.seconds, 6),
            depth=current.depth,
            parent=current.parent,
            status=current.status,
            **current.attrs,
        )
