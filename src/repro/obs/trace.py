"""Lightweight span tracing: wall time + nesting, no external deps.

``with span("crl_fetch_day", day=d):`` times a block, records the elapsed
wall time into the shared registry's ``repro_span_seconds`` histogram
(labelled by span name only — attributes stay out of metric labels so
high-cardinality values like days never explode a time series), and emits
a DEBUG-level structured log record carrying the attributes, duration,
nesting depth, parent span name, and exit status.

Spans are failure-aware: a block that raises is recorded with
``status="error"`` (on the log record and the trace event) and bumps the
``repro_span_exceptions_total`` counter by span name — the exception
itself always propagates untouched.

When a :class:`~repro.obs.traceout.TraceCollector` is active (see
:func:`~repro.obs.traceout.use_collector`), every span additionally
records a begin and an end trace event, exportable as a Chrome trace.
With no collector active, the trace path costs a single ``None`` check.

Spans nest per thread; :func:`current_span` exposes the innermost open
span so deeply nested code can attach context without threading a handle
through every call. :func:`open_spans` snapshots every *currently open*
span across all threads — the heartbeat samples it so a live timeline
shows what a wedged run is stuck inside.

Slow-span logging: :func:`set_slow_span_ms` (or the ``REPRO_SLOW_SPAN_MS``
environment variable, surfaced as ``--slow-span-ms`` on the CLI) arms a
threshold; any span at or over it emits a WARNING-level ``slow_span``
record carrying the span name, duration, and full parent chain. The
default is off, and the off path is a single ``None`` check with no
extra allocation.
"""

from __future__ import annotations

import logging
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.obs import names
from repro.obs.log import log
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.traceout import get_collector

_STACK = threading.local()

# Cross-thread view of every thread's open-span stack, keyed by thread
# ident, so the heartbeat can report what other threads are inside. The
# stacks themselves are only mutated by their owning thread; the dict is
# guarded for registration/iteration. Deliberately process-global (like
# the executor fork channel): written per-thread, read-only elsewhere.
_OPEN_STACKS: Dict[int, List["Span"]] = {}  # repro-lint: disable=RL201
_OPEN_LOCK = threading.Lock()

#: Environment variable arming the slow-span log outside the CLI.
SLOW_SPAN_ENV = "REPRO_SLOW_SPAN_MS"


def _env_slow_span_ms() -> Optional[float]:
    raw = os.environ.get(SLOW_SPAN_ENV)
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value >= 0 else None


_SLOW_SPAN_MS: Optional[float] = _env_slow_span_ms()


def set_slow_span_ms(value: Optional[float]) -> Optional[float]:
    """Arm (or, with ``None``, disarm) the slow-span log; returns the
    previous threshold so callers can restore it."""
    global _SLOW_SPAN_MS
    previous = _SLOW_SPAN_MS
    _SLOW_SPAN_MS = value if value is not None and value >= 0 else None
    return previous


def get_slow_span_ms() -> Optional[float]:
    """The active slow-span threshold in milliseconds, or ``None`` (off)."""
    return _SLOW_SPAN_MS


@dataclass
class Span:
    """One traced block; ``seconds`` and ``status`` are filled on exit."""

    name: str
    attrs: Dict[str, Any] = field(default_factory=dict)
    depth: int = 0
    parent: Optional[str] = None
    seconds: Optional[float] = None
    status: str = "ok"
    #: ``perf_counter()`` at entry; lets :func:`open_spans` report how
    #: long a still-open span has been running.
    started: Optional[float] = None


def _spans() -> List[Span]:
    stack = getattr(_STACK, "spans", None)
    if stack is None:
        stack = []
        _STACK.spans = stack
        with _OPEN_LOCK:
            _OPEN_STACKS[threading.get_ident()] = stack
    return stack


def current_span() -> Optional[Span]:
    """The innermost open span on this thread, or ``None``."""
    stack = _spans()
    return stack[-1] if stack else None


def open_spans() -> List[Dict[str, Any]]:
    """Snapshot every currently open span, across all threads.

    Returns dicts with ``name``, ``seconds`` (open so far), ``depth``,
    ``parent``, and ``thread``, longest-open first. The read is lock-free
    against the owning threads (list copies under the GIL), so a racing
    push/pop at worst misses or double-counts one frame — fine for a
    telemetry sample.
    """
    now = perf_counter()
    with _OPEN_LOCK:
        stacks = [
            (ident, list(stack)) for ident, stack in _OPEN_STACKS.items() if stack
        ]
    snapshot: List[Dict[str, Any]] = []
    for ident, stack in stacks:
        for span_obj in stack:
            if span_obj.started is None:
                continue
            snapshot.append(
                {
                    "name": span_obj.name,
                    "seconds": now - span_obj.started,
                    "depth": span_obj.depth,
                    "parent": span_obj.parent,
                    "thread": ident,
                }
            )
    snapshot.sort(key=lambda record: (-record["seconds"], record["name"]))
    return snapshot


def _emit_slow_span(current: Span, ancestors: Sequence[Span]) -> None:
    """WARNING-level record for one span at/over the armed threshold."""
    log(
        "slow_span",
        level=logging.WARNING,
        name=current.name,
        duration_ms=round((current.seconds or 0.0) * 1000.0, 3),
        threshold_ms=_SLOW_SPAN_MS,
        status=current.status,
        parent_chain=[span_obj.name for span_obj in ancestors],
        **current.attrs,
    )


@contextmanager
def span(
    name: str,
    registry: Optional[MetricsRegistry] = None,
    **attrs: Any,
) -> Iterator[Span]:
    """Time a block; record a histogram sample, trace events, and a log."""
    stack = _spans()
    current = Span(
        name=name,
        attrs=dict(attrs),
        depth=len(stack),
        parent=stack[-1].name if stack else None,
    )
    stack.append(current)
    # Captured once so begin/end land in the same collector even if the
    # active scope changes inside the block.
    collector = get_collector()
    if collector is not None:
        collector.record_begin(name, current.attrs or None)
    started = perf_counter()
    current.started = started
    try:
        yield current
    except BaseException:
        current.status = "error"
        raise
    finally:
        current.seconds = perf_counter() - started
        stack.pop()
        if collector is not None:
            collector.record_end(name, status=current.status)
        active_registry = registry or get_registry()
        active_registry.histogram(
            names.SPAN_SECONDS, names.SPAN_SECONDS_HELP, labels=("name",)
        ).observe(current.seconds, name=name)
        if current.status == "error":
            active_registry.counter(
                names.SPAN_EXCEPTIONS, names.SPAN_EXCEPTIONS_HELP, labels=("name",)
            ).inc(name=name)
        # Off path is one None check: the parent chain is only built for
        # spans that actually cross the armed threshold.
        if _SLOW_SPAN_MS is not None and current.seconds * 1000.0 >= _SLOW_SPAN_MS:
            _emit_slow_span(current, stack)
        log(
            "span",
            level=logging.DEBUG,
            name=name,
            seconds=round(current.seconds, 6),
            depth=current.depth,
            parent=current.parent,
            status=current.status,
            **current.attrs,
        )
