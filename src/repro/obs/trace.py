"""Lightweight span tracing: wall time + nesting, no external deps.

``with span("crl_fetch_day", day=d):`` times a block, records the elapsed
wall time into the shared registry's ``repro_span_seconds`` histogram
(labelled by span name only — attributes stay out of metric labels so
high-cardinality values like days never explode a time series), and emits
a DEBUG-level structured log record carrying the attributes, duration,
nesting depth, and parent span name.

Spans nest per thread; :func:`current_span` exposes the innermost open
span so deeply nested code can attach context without threading a handle
through every call.
"""

from __future__ import annotations

import logging
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional

from repro.obs import names
from repro.obs.log import log
from repro.obs.metrics import MetricsRegistry, get_registry

_STACK = threading.local()


@dataclass
class Span:
    """One traced block; ``seconds`` is filled when the block exits."""

    name: str
    attrs: Dict[str, Any] = field(default_factory=dict)
    depth: int = 0
    parent: Optional[str] = None
    seconds: Optional[float] = None


def _spans() -> List[Span]:
    stack = getattr(_STACK, "spans", None)
    if stack is None:
        stack = []
        _STACK.spans = stack
    return stack


def current_span() -> Optional[Span]:
    """The innermost open span on this thread, or ``None``."""
    stack = _spans()
    return stack[-1] if stack else None


@contextmanager
def span(
    name: str,
    registry: Optional[MetricsRegistry] = None,
    **attrs: Any,
) -> Iterator[Span]:
    """Time a block; record a histogram sample and a DEBUG log record."""
    stack = _spans()
    current = Span(
        name=name,
        attrs=dict(attrs),
        depth=len(stack),
        parent=stack[-1].name if stack else None,
    )
    stack.append(current)
    started = perf_counter()
    try:
        yield current
    finally:
        current.seconds = perf_counter() - started
        stack.pop()
        (registry or get_registry()).histogram(
            names.SPAN_SECONDS, names.SPAN_SECONDS_HELP, labels=("name",)
        ).observe(current.seconds, name=name)
        log(
            "span",
            level=logging.DEBUG,
            name=name,
            seconds=round(current.seconds, 6),
            depth=current.depth,
            parent=current.parent,
            **current.attrs,
        )
