"""Structured JSON log records with a stdlib-``logging`` bridge.

:func:`log` emits one structured record — an event name plus arbitrary
key/value fields — through the ordinary ``logging`` machinery under the
``repro`` logger namespace, so existing handlers, levels, and filters all
apply. :func:`configure_json_logging` installs a :class:`JsonLogHandler`
that renders *every* record reaching the ``repro`` logger (structured or
plain stdlib) as one JSON object per line — the bridge works in both
directions: ``obs.log(...)`` flows into stdlib logging, and plain
``logging.getLogger("repro.x").warning(...)`` calls come out as JSON.

Nothing is printed until a handler is configured (the root ``repro``
logger gets a ``NullHandler``), so library use stays silent by default;
the CLI's ``--log-json`` flag turns the feed on.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, Optional, TextIO

LOGGER_NAME = "repro"

#: LogRecord attribute carrying the structured fields of an obs record.
_FIELDS_ATTR = "obs_fields"

logging.getLogger(LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(subsystem: Optional[str] = None) -> logging.Logger:
    """The ``repro`` logger, or a ``repro.<subsystem>`` child."""
    if subsystem:
        return logging.getLogger(f"{LOGGER_NAME}.{subsystem}")
    return logging.getLogger(LOGGER_NAME)


def log(
    event: str,
    *,
    level: int = logging.INFO,
    subsystem: Optional[str] = None,
    **fields: Any,
) -> None:
    """Emit one structured record: an event name plus key/value fields."""
    get_logger(subsystem).log(level, event, extra={_FIELDS_ATTR: fields})


class JsonLogHandler(logging.StreamHandler):
    """Renders every record as one JSON object per line.

    Structured fields from :func:`log` are inlined at the top level;
    plain stdlib records simply have no extra fields. Non-serializable
    values degrade to ``str`` rather than raising inside logging.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        payload.update(getattr(record, _FIELDS_ATTR, None) or {})
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = logging.Formatter().formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def configure_json_logging(
    stream: Optional[TextIO] = None,
    level: int = logging.INFO,
) -> JsonLogHandler:
    """Install a :class:`JsonLogHandler` on the ``repro`` logger.

    Returns the handler so callers (the CLI, tests) can remove it again
    with :func:`remove_json_logging`.
    """
    handler = JsonLogHandler(stream if stream is not None else sys.stderr)
    handler.setLevel(level)
    logger = get_logger()
    logger.addHandler(handler)
    logger.setLevel(min(level, logger.level or level) if logger.level else level)
    return handler


def remove_json_logging(handler: JsonLogHandler) -> None:
    """Detach a handler installed by :func:`configure_json_logging`."""
    get_logger().removeHandler(handler)
