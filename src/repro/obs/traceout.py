"""Bounded trace collection with Chrome trace-event export.

:class:`TraceCollector` records every :func:`~repro.obs.trace.span` begin
and end as one event — thread-safe, bounded (events past ``max_events``
are counted in :attr:`~TraceCollector.dropped`, never grown without
limit), and cheap enough to leave on for whole runs. The buffer exports
as Chrome trace-event JSON (``{"traceEvents": [...]}``; loadable in
Perfetto or ``chrome://tracing``) or as JSONL, via ``--trace-out FILE``
on the pipeline-running CLI subcommands.

Cross-process runs merge into one timeline: each shard worker in
:mod:`repro.parallel` snapshots its local collector into its
:class:`~repro.parallel.executor.ShardOutcome` (exactly as PR 3 did for
metrics), and the parent :meth:`~TraceCollector.extend`\\ s those events
with a deterministic ``pid`` lane per shard — lane 0 is the coordinating
process, lane ``i + 1`` is shard ``i`` — so the exported trace shows all
workers regardless of real (nondeterministic) OS pids. Thread ids are
likewise normalized to small integers in order of first appearance.

Timestamps are wall-clock microseconds (``time.time() * 1e6``), the one
clock comparable across processes, so worker lanes line up with the
parent's on a shared axis.

Collection is opt-in: :func:`get_collector` returns ``None`` unless a
collector is scoped via :func:`use_collector` (or installed process-wide
with :func:`set_default_collector`), and :func:`~repro.obs.trace.span`
skips all trace work on the ``None`` fast path — tracing off costs one
attribute read per span.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from time import time
from typing import Any, Dict, Iterator, List, Mapping, Optional

#: Phase markers, as in the Chrome trace-event format.
PHASE_BEGIN = "B"
PHASE_END = "E"
PHASE_METADATA = "M"

#: Schema version carried in snapshots (shard -> parent payloads).
SNAPSHOT_VERSION = 1

#: Default buffer bound — ~2 events per span, so ~100k spans per run.
DEFAULT_MAX_EVENTS = 200_000


class TraceCollector:
    """Thread-safe, bounded buffer of trace events for one process lane."""

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS, lane: int = 0) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []
        self._max_events = max_events
        self._tids: Dict[int, int] = {}
        self.lane = lane
        self.dropped = 0

    # -- recording -----------------------------------------------------------

    def record_begin(self, name: str, attrs: Optional[Mapping[str, Any]] = None) -> None:
        self._record(PHASE_BEGIN, name, attrs)

    def record_end(self, name: str, status: str = "ok") -> None:
        self._record(PHASE_END, name, {"status": status})

    def _record(
        self, phase: str, name: str, attrs: Optional[Mapping[str, Any]]
    ) -> None:
        ts = time() * 1e6
        with self._lock:
            if len(self._events) >= self._max_events:
                self.dropped += 1
                return
            ident = threading.get_ident()
            tid = self._tids.get(ident)
            if tid is None:
                # Normalize thread idents to 1..n in first-appearance order
                # so traces are deterministic across runs and platforms.
                tid = len(self._tids) + 1
                self._tids[ident] = tid
            event: Dict[str, Any] = {
                "name": name,
                "ph": phase,
                "ts": ts,
                "pid": self.lane,
                "tid": tid,
            }
            if attrs:
                event["args"] = dict(attrs)
            self._events.append(event)

    # -- reads / merge -------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def events(self) -> List[Dict[str, Any]]:
        """A defensive copy of the buffered events, in record order."""
        with self._lock:
            return [dict(event) for event in self._events]

    def snapshot(self) -> Dict[str, Any]:
        """JSON/pickle-safe payload for cross-process hand-off
        (travels in :class:`~repro.parallel.executor.ShardOutcome`)."""
        with self._lock:
            return {
                "version": SNAPSHOT_VERSION,
                "events": [dict(event) for event in self._events],
                "dropped": self.dropped,
            }

    def extend(self, snapshot: Mapping[str, Any], lane: int) -> None:
        """Fold another process's snapshot in, assigning it pid *lane*.

        The lane is deterministic (the parent passes ``shard_index + 1``),
        so merged traces are stable run-over-run even though OS pids are
        not. Honors the buffer bound; overflow adds to :attr:`dropped`.
        """
        incoming = snapshot.get("events", [])
        with self._lock:
            self.dropped += int(snapshot.get("dropped", 0))
            for event in incoming:
                if len(self._events) >= self._max_events:
                    self.dropped += 1
                    continue
                event = dict(event)
                event["pid"] = lane
                self._events.append(event)

    # -- export --------------------------------------------------------------

    def to_chrome(self) -> Dict[str, Any]:
        """The Chrome trace-event document (Perfetto / chrome://tracing)."""
        events = self.events()
        lanes = sorted({event["pid"] for event in events})
        metadata: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": PHASE_METADATA,
                "pid": lane,
                "tid": 0,
                "args": {"name": "main" if lane == 0 else f"shard {lane - 1}"},
            }
            for lane in lanes
        ]
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.obs.traceout",
                "dropped_events": self.dropped,
            },
        }

    def write(self, path: str) -> str:
        """Atomically write the trace: JSONL for ``*.jsonl``, else Chrome JSON."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            if path.endswith(".jsonl"):
                for event in self.events():
                    handle.write(json.dumps(event, sort_keys=True, default=str))
                    handle.write("\n")
            else:
                json.dump(self.to_chrome(), handle, sort_keys=True, default=str)
                handle.write("\n")
        os.replace(tmp_path, path)
        return path


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Read a trace written by :meth:`TraceCollector.write` (either format).

    Accepts a Chrome trace document (``{"traceEvents": [...]}``), a bare
    JSON event list, or JSONL (one event object per line).
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        events = []
        for line in text.splitlines():
            line = line.strip()
            if line:
                events.append(json.loads(line))
        return events
    if isinstance(document, dict):
        return list(document.get("traceEvents", []))
    if isinstance(document, list):
        return document
    raise ValueError(f"{path}: not a trace document (got {type(document).__name__})")


# -- active-collector scoping (mirrors repro.obs.metrics registries) ----------

_DEFAULT_COLLECTOR: Optional[TraceCollector] = None
_ACTIVE = threading.local()


def get_collector() -> Optional[TraceCollector]:
    """The collector :func:`~repro.obs.trace.span` records into, or ``None``
    (the fast path: tracing disabled)."""
    active = getattr(_ACTIVE, "collector", None)
    return active if active is not None else _DEFAULT_COLLECTOR


def set_default_collector(
    collector: Optional[TraceCollector],
) -> Optional[TraceCollector]:
    """Install (or, with ``None``, remove) the process-wide collector;
    returns the previous one."""
    global _DEFAULT_COLLECTOR
    previous = _DEFAULT_COLLECTOR
    _DEFAULT_COLLECTOR = collector
    return previous


@contextmanager
def use_collector(
    collector: Optional[TraceCollector] = None,
) -> Iterator[TraceCollector]:
    """Scope :func:`get_collector` to *collector* for the current thread
    (a fresh :class:`TraceCollector` when ``None`` is passed)."""
    if collector is None:
        collector = TraceCollector()
    previous = getattr(_ACTIVE, "collector", None)
    _ACTIVE.collector = collector
    try:
        yield collector
    finally:
        _ACTIVE.collector = previous
