"""Profile aggregation over exported traces: self time, cumulative time,
and the cross-lane critical path.

Consumes the event stream a :class:`~repro.obs.traceout.TraceCollector`
exports (Chrome JSON or JSONL; see :func:`~repro.obs.traceout.load_trace`)
and answers the question the raw timeline cannot: *where did the wall
clock go?*

* :func:`pair_events` reconstructs closed spans from begin/end events,
  one stack per ``(pid, tid)`` lane — depth and parent fall out of the
  pairing. Begin events left open (a crashed run) are closed at the
  lane's last timestamp with ``status="unclosed"`` so partial traces
  still profile.
* :func:`aggregate_names` folds spans into per-name totals: count,
  cumulative time, *self* time (cumulative minus direct children), max,
  and error counts. Self times are disjoint, so they sum to at most the
  traced extent — the column to sort by when hunting hot spots.
* :func:`critical_path` tiles the trace extent ``[start, end]`` with
  segments, each attributed to the *latest-started* span active at that
  moment (ties broken by depth). Walking backward from the trace end,
  this crosses process lanes — through the slowest shard worker during
  the parallel window, back to the coordinator around it — and the
  segment durations sum exactly to the trace's wall time (idle gaps
  appear as explicit ``(idle)`` segments).

``python -m repro profile TRACE [--top N]`` renders all three.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.traceout import PHASE_BEGIN, PHASE_END, load_trace

#: Timestamps closer than this (µs) are considered the same instant.
_EPSILON_US = 0.5


@dataclass
class SpanRecord:
    """One closed span reconstructed from a begin/end event pair."""

    name: str
    pid: int
    tid: int
    start_us: float
    end_us: float
    depth: int = 0
    parent: Optional[str] = None
    status: str = "ok"
    args: Dict[str, Any] = field(default_factory=dict)
    #: Cumulative µs of *direct* children (filled during pairing).
    child_us: float = 0.0

    @property
    def duration_us(self) -> float:
        return max(0.0, self.end_us - self.start_us)

    @property
    def self_us(self) -> float:
        return max(0.0, self.duration_us - self.child_us)


@dataclass
class NameProfile:
    """Aggregate over all spans sharing one name."""

    name: str
    count: int = 0
    total_us: float = 0.0
    self_us: float = 0.0
    max_us: float = 0.0
    errors: int = 0


@dataclass
class PathSegment:
    """One tile of the critical path; ``span`` is ``None`` for idle gaps."""

    start_us: float
    end_us: float
    span: Optional[SpanRecord] = None

    @property
    def duration_us(self) -> float:
        return max(0.0, self.end_us - self.start_us)

    @property
    def name(self) -> str:
        return self.span.name if self.span is not None else "(idle)"


@dataclass
class ProfileReport:
    """Everything ``repro profile`` renders, as data."""

    spans: List[SpanRecord]
    names: Dict[str, NameProfile]
    path: List[PathSegment]
    start_us: float = 0.0
    end_us: float = 0.0

    @property
    def wall_seconds(self) -> float:
        return max(0.0, self.end_us - self.start_us) / 1e6

    @property
    def path_seconds(self) -> float:
        return sum(segment.duration_us for segment in self.path) / 1e6


def pair_events(events: Sequence[Mapping[str, Any]]) -> List[SpanRecord]:
    """Reconstruct closed spans from raw begin/end events.

    Events are grouped by ``(pid, tid)`` lane; within a lane they are
    stably sorted by timestamp (record order breaks ties, so zero-length
    spans keep begin before end). Mismatched end events are ignored.
    """
    lanes: Dict[Tuple[int, int], List[Mapping[str, Any]]] = {}
    for event in events:
        if event.get("ph") not in (PHASE_BEGIN, PHASE_END):
            continue
        key = (int(event.get("pid", 0)), int(event.get("tid", 0)))
        lanes.setdefault(key, []).append(event)

    spans: List[SpanRecord] = []
    for (pid, tid) in sorted(lanes):
        lane_events = sorted(lanes[(pid, tid)], key=lambda e: float(e.get("ts", 0.0)))
        stack: List[SpanRecord] = []
        last_ts = 0.0
        for event in lane_events:
            ts = float(event.get("ts", 0.0))
            last_ts = max(last_ts, ts)
            name = str(event.get("name", ""))
            if event["ph"] == PHASE_BEGIN:
                stack.append(
                    SpanRecord(
                        name=name,
                        pid=pid,
                        tid=tid,
                        start_us=ts,
                        end_us=ts,
                        depth=len(stack),
                        parent=stack[-1].name if stack else None,
                        args=dict(event.get("args", {}) or {}),
                    )
                )
            elif stack and stack[-1].name == name:
                record = stack.pop()
                record.end_us = ts
                record.status = str(
                    (event.get("args", {}) or {}).get("status", "ok")
                )
                if stack:
                    stack[-1].child_us += record.duration_us
                spans.append(record)
            # else: unmatched end — dropped begin or truncated trace; skip.
        while stack:  # unclosed begins (crash / buffer overflow): best effort
            record = stack.pop()
            record.end_us = last_ts
            record.status = "unclosed"
            if stack:
                stack[-1].child_us += record.duration_us
            spans.append(record)
    spans.sort(key=lambda s: (s.start_us, s.pid, s.tid, -s.depth))
    return spans


def aggregate_names(spans: Sequence[SpanRecord]) -> Dict[str, NameProfile]:
    """Fold spans into per-name count / cumulative / self / max / errors."""
    names: Dict[str, NameProfile] = {}
    for record in spans:
        profile = names.get(record.name)
        if profile is None:
            profile = names[record.name] = NameProfile(name=record.name)
        profile.count += 1
        profile.total_us += record.duration_us
        profile.self_us += record.self_us
        profile.max_us = max(profile.max_us, record.duration_us)
        if record.status != "ok":
            profile.errors += 1
    return names


def critical_path(spans: Sequence[SpanRecord]) -> List[PathSegment]:
    """Tile the trace extent with latest-started-active-span segments.

    Walks backward from the latest end: each segment runs from the chosen
    span's start to the current frontier, then the frontier moves to that
    start. Segment durations therefore sum exactly to the trace extent,
    which (with a root span covering the run) is the run's wall time.
    """
    if not spans:
        return []
    start = min(record.start_us for record in spans)
    frontier = max(record.end_us for record in spans)
    segments: List[PathSegment] = []
    # Each iteration moves the frontier strictly left, by at least one
    # span start or end, so the loop is bounded by the span count.
    for _ in range(2 * len(spans) + 1):
        if frontier <= start + _EPSILON_US:
            break
        active = [
            record
            for record in spans
            if record.start_us < frontier - _EPSILON_US
            and record.end_us >= frontier - _EPSILON_US
        ]
        if not active:
            # Idle gap: jump to the latest end left of the frontier.
            ends = [
                record.end_us
                for record in spans
                if record.end_us < frontier - _EPSILON_US
            ]
            gap_start = max(ends) if ends else start
            segments.append(PathSegment(start_us=gap_start, end_us=frontier))
            frontier = gap_start
            continue
        chosen = max(active, key=lambda record: (record.start_us, record.depth))
        # The chosen span owns the timeline only back to the point where a
        # later-started span (necessarily ended by now, in any lane) was
        # still running — attribution hands over there on the next step.
        later_ends = [
            record.end_us
            for record in spans
            if record.end_us < frontier - _EPSILON_US
            and record.start_us > chosen.start_us + _EPSILON_US
        ]
        segment_start = max([chosen.start_us, start] + later_ends)
        segments.append(
            PathSegment(start_us=segment_start, end_us=frontier, span=chosen)
        )
        frontier = segment_start
    segments.reverse()
    return segments


def profile_spans(spans: Sequence[SpanRecord]) -> ProfileReport:
    """Build the full report (aggregates + critical path) from spans."""
    spans = list(spans)
    return ProfileReport(
        spans=spans,
        names=aggregate_names(spans),
        path=critical_path(spans),
        start_us=min((s.start_us for s in spans), default=0.0),
        end_us=max((s.end_us for s in spans), default=0.0),
    )


def profile_trace(path: str) -> ProfileReport:
    """Load a trace file and profile it (the ``repro profile`` backend)."""
    return profile_spans(pair_events(load_trace(path)))
