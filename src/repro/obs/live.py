"""Live run telemetry: progress gauges and the heartbeat thread.

Two halves, both cheap enough to leave permanently wired in:

* :func:`phase_progress` — the instrumentation side. Engines grab a
  :class:`PhaseProgress` handle for one of the phases declared in
  :data:`repro.obs.names.PROGRESS_PHASES` and report work done / work
  expected through the shared registry's ``repro_progress_done`` /
  ``repro_progress_total`` gauges. With no heartbeat running these are
  plain gauge writes — the instrumentation has no other cost.

* :class:`Heartbeat` — the sampling side. A daemon thread that, every
  ``interval`` seconds, snapshots the run's registry (via
  :meth:`~repro.obs.metrics.MetricsRegistry.flat_samples`), the progress
  gauges (adding per-phase rate and ETA computed against the previous
  snapshot), process RSS, and the currently open spans, and appends the
  snapshot to ``timeline.jsonl`` through a crash-durable
  :class:`~repro.obs.timeline.TimelineWriter`. ``stop()`` takes one final
  sample *before* the CLI writes ``metrics.prom``, so the last snapshot's
  samples equal the textfile by construction.

The process's active heartbeat (if any) is reachable via
:func:`get_heartbeat` so deeply nested code — e.g. the stream engine
noticing it resumed from a checkpoint — can drop a marker into the
timeline without threading a handle through every call.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, Iterator, List, Mapping, Optional

from contextlib import contextmanager

from repro.obs import names
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.timeline import TIMELINE_SCHEMA, TimelineWriter
from repro.obs.trace import open_spans

#: Open spans carried per snapshot (longest-open first) — enough to see
#: what a wedged run is stuck inside without bloating every line.
MAX_OPEN_SPANS = 8


# -- progress gauges ----------------------------------------------------------


class PhaseProgress:
    """Handle for one phase's done/total gauges.

    ``done`` is monotone by construction (:meth:`add` accumulates,
    :meth:`set_done` is a high-water mark), matching the timeline's
    monotonicity guarantee; ``total`` may be declared up front or refined
    as the phase discovers its size (0 = unknown).
    """

    def __init__(self, phase: str, registry: MetricsRegistry) -> None:
        self.phase = phase
        self._done = registry.gauge(
            names.PROGRESS_DONE, names.PROGRESS_DONE_HELP, labels=("phase",)
        )
        self._total = registry.gauge(
            names.PROGRESS_TOTAL, names.PROGRESS_TOTAL_HELP, labels=("phase",)
        )
        self._lock = threading.Lock()

    def add(self, amount: float = 1.0) -> None:
        """Accumulate *amount* units of completed work."""
        with self._lock:
            self._done.set(
                self._done.value(phase=self.phase) + amount, phase=self.phase
            )

    def set_done(self, done: float) -> None:
        """Set completed work to *done* (never moves backwards)."""
        self._done.set_max(float(done), phase=self.phase)

    def set_total(self, total: float) -> None:
        """Declare (or refine) the expected amount of work."""
        self._total.set(float(total), phase=self.phase)

    @property
    def done(self) -> float:
        return self._done.value(phase=self.phase)

    @property
    def total(self) -> float:
        return self._total.value(phase=self.phase)


def phase_progress(
    phase: str, registry: Optional[MetricsRegistry] = None
) -> PhaseProgress:
    """A :class:`PhaseProgress` for *phase* on the active registry.

    *phase* must be declared in :data:`repro.obs.names.PROGRESS_PHASES` —
    the runtime complement of lint rule RL302, so an undeclared phase
    fails loudly at the call site instead of silently forking the
    timeline.
    """
    if phase not in names.PROGRESS_PHASES:
        raise ValueError(
            f"undeclared progress phase {phase!r}; add it to "
            "repro.obs.names.PROGRESS_PHASES"
        )
    return PhaseProgress(phase, registry or get_registry())


def progress_from_registry(registry: MetricsRegistry) -> Dict[str, Dict[str, float]]:
    """``{phase: {"done": d, "total": t}}`` for every phase with samples."""
    phases: Dict[str, Dict[str, float]] = {}
    for family in registry.families():
        if family.name == names.PROGRESS_DONE:
            slot = "done"
        elif family.name == names.PROGRESS_TOTAL:
            slot = "total"
        else:
            continue
        for key, value in family.samples.items():
            phase = key[0] if key else ""
            phases.setdefault(phase, {"done": 0.0, "total": 0.0})[slot] = float(value)
    return phases


# -- RSS sampling -------------------------------------------------------------


def read_rss_bytes() -> Optional[int]:
    """Current resident set size, or ``None`` when unmeasurable.

    Reads ``/proc/self/status`` (Linux; current RSS) and falls back to
    ``resource.getrusage`` (peak RSS — close enough for a telemetry
    curve) elsewhere.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes; both are plausible curves.
        return int(peak) * (1 if peak > 1 << 32 else 1024)
    except (ImportError, OSError, ValueError):
        return None


# -- the heartbeat ------------------------------------------------------------


class Heartbeat:
    """Background sampler appending timeline snapshots on a fixed cadence.

    Takes its registry *explicitly*: :func:`~repro.obs.metrics.use_registry`
    scoping is thread-local, so the sampling thread would otherwise see
    the process default instead of the run's registry.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        path: str,
        interval: float = 1.0,
        command: Optional[str] = None,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"heartbeat interval must be > 0 (got {interval})")
        self.registry = registry
        self.path = path
        self.interval = float(interval)
        self.command = command
        self._meta_extra = dict(meta or {})
        self._writer: Optional[TimelineWriter] = None
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._sample_lock = threading.Lock()
        self._seq = 0
        self._started_at: Optional[float] = None
        self._previous: Dict[str, Any] = {}
        self._snapshots = self.registry.counter(
            names.HEARTBEAT_SNAPSHOTS, names.HEARTBEAT_SNAPSHOTS_HELP
        )
        self._rss_gauge = self.registry.gauge(
            names.PROCESS_RSS_BYTES, names.PROCESS_RSS_BYTES_HELP
        )

    @property
    def snapshots(self) -> int:
        return self._seq

    def start(self) -> "Heartbeat":
        if self._thread is not None:
            raise RuntimeError("heartbeat already started")
        self._writer = TimelineWriter(self.path)
        self._started_at = time.monotonic()
        meta_record = {
            "kind": "meta",
            "schema": TIMELINE_SCHEMA,
            "ts": time.time(),
            "pid": os.getpid(),
            "command": self.command,
            "heartbeat_seconds": self.interval,
        }
        meta_record.update(self._meta_extra)
        self._writer.append(meta_record)
        self._thread = threading.Thread(
            target=self._run, name="repro-heartbeat", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval):
            self.sample()

    def _phase_rows(self, elapsed: float) -> Dict[str, Dict[str, Any]]:
        rows: Dict[str, Dict[str, Any]] = {}
        for phase, progress in progress_from_registry(self.registry).items():
            done = progress["done"]
            total = progress["total"]
            rate: Optional[float] = None
            eta: Optional[float] = None
            previous = self._previous.get(phase)
            if previous is not None:
                prev_elapsed, prev_done = previous
                window = elapsed - prev_elapsed
                if window > 0:
                    rate = (done - prev_done) / window
            if rate and rate > 0 and total > done:
                eta = (total - done) / rate
            self._previous[phase] = (elapsed, done)
            rows[phase] = {
                "done": done,
                "total": total,
                "rate": round(rate, 3) if rate is not None else None,
                "eta_seconds": round(eta, 1) if eta is not None else None,
            }
        return rows

    def sample(self, final: bool = False) -> Optional[Dict[str, Any]]:
        """Append one snapshot; returns the record (``None`` if stopped).

        Bumps the snapshot counter and RSS gauge *before* flattening the
        registry, so the snapshot describes the registry state that the
        end-of-run ``metrics.prom`` will also contain.
        """
        with self._sample_lock:
            writer = self._writer
            if writer is None or self._started_at is None:
                return None
            elapsed = time.monotonic() - self._started_at
            self._seq += 1
            self._snapshots.inc()
            rss = read_rss_bytes()
            if rss is not None:
                self._rss_gauge.set_max(float(rss))
            record: Dict[str, Any] = {
                "kind": "snapshot",
                "seq": self._seq,
                "ts": time.time(),
                "elapsed": round(elapsed, 3),
                "rss_bytes": rss,
                "phases": self._phase_rows(elapsed),
                "samples": self.registry.flat_samples(),
                "open_spans": [
                    {
                        "name": span["name"],
                        "seconds": round(span["seconds"], 3),
                        "depth": span["depth"],
                        "parent": span["parent"],
                    }
                    for span in open_spans()[:MAX_OPEN_SPANS]
                ],
            }
            if final:
                record["final"] = True
            writer.append(record)
            return record

    def mark(self, **fields: Any) -> None:
        """Append a one-off ``marker`` record (e.g. ``resumed_from=...``)."""
        with self._sample_lock:
            if self._writer is None or self._started_at is None:
                return
            record = {
                "kind": "marker",
                "ts": time.time(),
                "elapsed": round(time.monotonic() - self._started_at, 3),
            }
            record.update(fields)
            self._writer.append(record)

    def stop(self) -> None:
        """Stop sampling, take the final snapshot, and close the timeline."""
        if self._thread is None:
            return
        self._stop_event.set()
        self._thread.join(timeout=max(5.0, self.interval * 3))
        self._thread = None
        self.sample(final=True)
        with self._sample_lock:
            if self._writer is not None:
                self._writer.close()
                self._writer = None

    def __enter__(self) -> "Heartbeat":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


# -- active-heartbeat registry ------------------------------------------------

# One heartbeat per process at a time (one CLI invocation = one run).
# Process-global on purpose: the stream engine's resume path reaches it
# through get_heartbeat() without a handle threaded through every layer.
_ACTIVE_HEARTBEAT: List[Optional[Heartbeat]] = [None]  # repro-lint: disable=RL201
_ACTIVE_LOCK = threading.Lock()


def get_heartbeat() -> Optional[Heartbeat]:
    """The process's active heartbeat, or ``None`` when telemetry is off."""
    with _ACTIVE_LOCK:
        return _ACTIVE_HEARTBEAT[0]


def set_heartbeat(heartbeat: Optional[Heartbeat]) -> Optional[Heartbeat]:
    """Install (or, with ``None``, clear) the active heartbeat; returns
    the previous one."""
    with _ACTIVE_LOCK:
        previous = _ACTIVE_HEARTBEAT[0]
        _ACTIVE_HEARTBEAT[0] = heartbeat
        return previous


@contextmanager
def use_heartbeat(heartbeat: Heartbeat) -> Iterator[Heartbeat]:
    """Start *heartbeat*, expose it via :func:`get_heartbeat`, and stop it
    (final snapshot included) on exit."""
    previous = set_heartbeat(heartbeat)
    heartbeat.start()
    try:
        yield heartbeat
    finally:
        heartbeat.stop()
        set_heartbeat(previous)
