"""Day-granularity time model.

A :data:`Day` is a proleptic-Gregorian ordinal (``datetime.date.toordinal``),
i.e. a plain ``int``. Integer days keep the event-driven simulator and the
interval joins fast (millions of comparisons) while remaining trivially
convertible to calendar dates for reporting.
"""

from __future__ import annotations

import datetime as _dt
from typing import Iterator, Tuple

#: A day expressed as a proleptic-Gregorian ordinal (``date.toordinal()``).
Day = int

#: Mean Gregorian year length; used only for approximate reporting.
DAYS_PER_YEAR = 365.2425  # repro-lint: disable=RL703  # unit constant kept for ad-hoc notebook arithmetic


def day(year: int, month: int, dom: int) -> Day:
    """Return the :data:`Day` ordinal for a calendar date."""
    return _dt.date(year, month, dom).toordinal()


def day_to_date(d: Day) -> _dt.date:
    """Convert a :data:`Day` ordinal back to a ``datetime.date``."""
    return _dt.date.fromordinal(d)


def day_to_iso(d: Day) -> str:
    """Render a :data:`Day` as ``YYYY-MM-DD``."""
    return day_to_date(d).isoformat()


# Short alias kept for interactive use.
iso = day_to_iso  # repro-lint: disable=RL703  # convenience alias of day_to_iso


def parse_day(text: str) -> Day:
    """Parse ``YYYY-MM-DD`` (or ``YYYY/MM/DD``) into a :data:`Day`.

    Slashes are normalized to dashes only when the input uses slashes
    consistently; mixed-separator input like ``2020-01/02`` is rejected.
    Raises ``ValueError`` for malformed input.
    """
    normalized = text.strip()
    if "/" in normalized:
        if "-" in normalized:
            raise ValueError(
                f"mixed date separators in {normalized!r} (want YYYY-MM-DD)"
            )
        normalized = normalized.replace("/", "-")
    return _dt.date.fromisoformat(normalized).toordinal()


def year_of(d: Day) -> int:
    """Return the calendar year containing *d*."""
    return day_to_date(d).year


def month_of(d: Day) -> Tuple[int, int]:
    """Return ``(year, month)`` for *d*."""
    date = day_to_date(d)
    return date.year, date.month


def month_key(d: Day) -> str:
    """Return a sortable ``YYYY-MM`` month label for *d*."""
    year, month = month_of(d)
    return f"{year:04d}-{month:02d}"


def first_of_month(d: Day) -> Day:
    """Return the first day of the month containing *d*."""
    date = day_to_date(d)
    return _dt.date(date.year, date.month, 1).toordinal()


def add_months(d: Day, months: int) -> Day:
    """Return *d* shifted by *months* calendar months (day-of-month clamped)."""
    date = day_to_date(d)
    total = date.year * 12 + (date.month - 1) + months
    year, month = divmod(total, 12)
    month += 1
    dom = min(date.day, _days_in_month(year, month))
    return _dt.date(year, month, dom).toordinal()


def months_between(start: Day, end: Day) -> Iterator[Day]:
    """Yield the first day of every month from *start*'s month through *end*'s.

    Useful for building monthly time series (Figures 4, 5a, 5b).
    """
    current = first_of_month(start)
    last = first_of_month(end)
    while current <= last:
        yield current
        current = add_months(current, 1)


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        nxt = _dt.date(year + 1, 1, 1)
    else:
        nxt = _dt.date(year, month + 1, 1)
    return (nxt - _dt.date(year, month, 1)).days
