"""Shared utilities: day-granularity time, intervals, RNG streams, statistics.

The whole reproduction operates at day granularity, matching the paper's
datasets (daily CRL downloads, daily DNS scans, WHOIS creation *dates*,
certificate notBefore/notAfter compared at day precision).
"""

from repro.util.dates import (
    Day,
    DAYS_PER_YEAR,
    day,
    day_to_date,
    day_to_iso,
    first_of_month,
    iso,
    month_of,
    month_key,
    months_between,
    parse_day,
    year_of,
)
from repro.util.intervals import Interval, intersect_intervals, interval_sweep_join
from repro.util.rng import RngStream, split_seed
from repro.util.stats import (
    Ecdf,
    SurvivalCurve,
    median,
    percentile,
    quantiles,
)
from repro.util.storage import JsonlStore, dump_jsonl, load_jsonl

__all__ = [
    "Day",
    "DAYS_PER_YEAR",
    "day",
    "day_to_date",
    "day_to_iso",
    "first_of_month",
    "iso",
    "month_of",
    "month_key",
    "months_between",
    "parse_day",
    "year_of",
    "Interval",
    "intersect_intervals",
    "interval_sweep_join",
    "RngStream",
    "split_seed",
    "Ecdf",
    "SurvivalCurve",
    "median",
    "percentile",
    "quantiles",
    "JsonlStore",
    "dump_jsonl",
    "load_jsonl",
]
