"""Closed integer intervals and interval joins.

Certificate validity windows and domain registration spans are modelled as
closed intervals of :data:`repro.util.dates.Day`. The central operation of
the paper's registrant-change pipeline (Section 4.2) is an interval join:
for each point event (a registry creation date), find every certificate whose
validity interval strictly contains it. ``interval_sweep_join`` implements
this as a sorted sweep, which an ablation bench compares against the naive
quadratic join.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
E = TypeVar("E")


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[start, end]`` over integer days.

    ``start`` must not exceed ``end``; degenerate single-day intervals are
    allowed because a certificate may be issued and expire on the same day in
    capped-lifetime simulations.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise ValueError(f"interval start {self.start} > end {self.end}")

    @property
    def length(self) -> int:
        """Number of days covered, inclusive of both endpoints' day count.

        A same-day interval has length 0 (zero elapsed days), matching how
        the paper computes lifetimes as ``notAfter - notBefore``.
        """
        return self.end - self.start

    def contains(self, point: int, strict: bool = False) -> bool:
        """Whether *point* lies inside the interval.

        With ``strict=True`` the endpoints are excluded, matching the paper's
        ``notBefore < registryCreationDate < notAfter`` criterion.
        """
        if strict:
            return self.start < point < self.end
        return self.start <= point <= self.end

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two closed intervals share at least one day."""
        return self.start <= other.end and other.start <= self.end

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """Return the overlapping sub-interval, or ``None`` when disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def clamp_end(self, new_end: int) -> "Interval":
        """Return a copy whose end is reduced to *new_end* if it is earlier.

        Used by the lifetime-capping simulation (Section 6): certificates
        longer than the hypothetical maximum get their expiration pulled in.
        """
        return Interval(self.start, min(self.end, new_end))


def intersect_intervals(intervals: Iterable[Interval]) -> Optional[Interval]:
    """Intersect many intervals; ``None`` if the running intersection empties."""
    result: Optional[Interval] = None
    for iv in intervals:
        if result is None:
            result = iv
        else:
            result = result.intersection(iv)
            if result is None:
                return None
    return result


def interval_sweep_join(
    intervals: Sequence[T],
    events: Sequence[E],
    interval_of: Callable[[T], Interval],
    event_day: Callable[[E], int],
    strict: bool = True,
) -> Iterator[Tuple[E, T]]:
    """Join point events against containing intervals via a sorted sweep.

    Yields ``(event, interval_item)`` for every pair where the event's day
    falls within the item's interval (strictly inside by default, per the
    paper's registrant-change criterion).

    Complexity is ``O((n + m) log (n + m) + k)`` for *n* intervals, *m*
    events, and *k* emitted pairs, versus ``O(n * m)`` for the brute-force
    join (see ``naive_join``). The sweep walks events in day order keeping a
    min-heap of active intervals ordered by end day.
    """
    order = sorted(range(len(intervals)), key=lambda i: interval_of(intervals[i]).start)
    sorted_events = sorted(events, key=event_day)

    active: List[Tuple[int, int]] = []  # (end, interval index) min-heap
    cursor = 0
    for event in sorted_events:
        point = event_day(event)
        # Admit every interval that has started by this point.
        while cursor < len(order):
            idx = order[cursor]
            iv = interval_of(intervals[idx])
            if iv.start < point or (not strict and iv.start == point):
                heapq.heappush(active, (iv.end, idx))
                cursor += 1
            elif iv.start == point and strict:
                # Starts exactly at the point: excluded under strict
                # containment for this event but may contain later events.
                heapq.heappush(active, (iv.end, idx))
                cursor += 1
            else:
                break
        # Retire intervals that have ended before this point.
        while active and active[0][0] < point:
            heapq.heappop(active)
        for end, idx in active:
            iv = interval_of(intervals[idx])
            if iv.contains(point, strict=strict):
                yield event, intervals[idx]


def naive_join(
    intervals: Sequence[T],
    events: Sequence[E],
    interval_of: Callable[[T], Interval],
    event_day: Callable[[E], int],
    strict: bool = True,
) -> Iterator[Tuple[E, T]]:
    """Quadratic reference join; kept for tests and the ablation bench."""
    for event in events:
        point = event_day(event)
        for item in intervals:
            if interval_of(item).contains(point, strict=strict):
                yield event, item
