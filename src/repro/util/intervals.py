"""Closed integer intervals and interval joins.

Certificate validity windows and domain registration spans are modelled as
closed intervals of :data:`repro.util.dates.Day`. The central operation of
the paper's registrant-change pipeline (Section 4.2) is an interval join:
for each point event (a registry creation date), find every certificate whose
validity interval strictly contains it. ``interval_sweep_join`` implements
this as a sorted sweep, which an ablation bench compares against the naive
quadratic join.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
E = TypeVar("E")


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[start, end]`` over integer days.

    ``start`` must not exceed ``end``; degenerate single-day intervals are
    allowed because a certificate may be issued and expire on the same day in
    capped-lifetime simulations.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise ValueError(f"interval start {self.start} > end {self.end}")

    @property
    def length(self) -> int:
        """Number of days covered, inclusive of both endpoints' day count.

        A same-day interval has length 0 (zero elapsed days), matching how
        the paper computes lifetimes as ``notAfter - notBefore``.
        """
        return self.end - self.start

    def contains(self, point: int, strict: bool = False) -> bool:
        """Whether *point* lies inside the interval.

        With ``strict=True`` the endpoints are excluded, matching the paper's
        ``notBefore < registryCreationDate < notAfter`` criterion.
        """
        if strict:
            return self.start < point < self.end
        return self.start <= point <= self.end

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two closed intervals share at least one day."""
        return self.start <= other.end and other.start <= self.end

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """Return the overlapping sub-interval, or ``None`` when disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def clamp_end(self, new_end: int) -> "Interval":
        """Return a copy whose end is reduced to *new_end* if it is earlier.

        Used by the lifetime-capping simulation (Section 6): certificates
        longer than the hypothetical maximum get their expiration pulled in.
        """
        return Interval(self.start, min(self.end, new_end))


def intersect_intervals(intervals: Iterable[Interval]) -> Optional[Interval]:
    """Intersect many intervals; ``None`` if the running intersection empties."""
    result: Optional[Interval] = None
    for iv in intervals:
        if result is None:
            result = iv
        else:
            result = result.intersection(iv)
            if result is None:
                return None
    return result


def interval_sweep_join(
    intervals: Sequence[T],
    events: Sequence[E],
    interval_of: Callable[[T], Interval],
    event_day: Callable[[E], int],
    strict: bool = True,
) -> Iterator[Tuple[E, T]]:
    """Join point events against containing intervals via a sorted sweep.

    Yields ``(event, interval_item)`` for every pair where the event's day
    falls within the item's interval (strictly inside by default, per the
    paper's registrant-change criterion).

    Complexity is ``O((n + m) log (n + m) + S)`` for *n* intervals and *m*
    events, where ``S`` is the total number of active intervals scanned
    across all events (``k <= S`` for *k* emitted pairs; ``S`` approaches
    *k* when few active intervals are excluded by endpoint strictness).
    That beats the brute-force ``O(n * m)`` join (see ``naive_join``)
    whenever intervals are short relative to the event span. The sweep
    walks events in day order keeping a min-heap of active intervals
    ordered by end day, and reports scan/pair totals to the shared obs
    registry (``repro_interval_sweep_*``) when the join runs to completion.
    """
    from repro.obs import get_registry, names

    order = sorted(range(len(intervals)), key=lambda i: interval_of(intervals[i]).start)
    sorted_events = sorted(events, key=event_day)

    active: List[Tuple[int, int]] = []  # (end, interval index) min-heap
    cursor = 0
    scanned = 0
    emitted = 0
    for event in sorted_events:
        point = event_day(event)
        # Admit every interval that has started by this point (a start
        # exactly at the point is excluded under strict containment for
        # this event, but may still contain later events).
        while cursor < len(order):
            idx = order[cursor]
            iv = interval_of(intervals[idx])
            if iv.start > point:
                break
            heapq.heappush(active, (iv.end, idx))
            cursor += 1
        # Retire intervals that can no longer contain this or any later
        # point: ends strictly before the point always; under strict
        # containment also ends exactly at the point (``end == point``
        # cannot strictly contain it, nor any later point).
        while active and (active[0][0] < point or (strict and active[0][0] == point)):
            heapq.heappop(active)
        scanned += len(active)
        for end, idx in active:
            iv = interval_of(intervals[idx])
            if iv.contains(point, strict=strict):
                emitted += 1
                yield event, intervals[idx]

    registry = get_registry()
    registry.counter(names.SWEEP_SCANS, names.SWEEP_SCANS_HELP).inc(scanned)
    registry.counter(names.SWEEP_PAIRS, names.SWEEP_PAIRS_HELP).inc(emitted)


def naive_join(
    intervals: Sequence[T],
    events: Sequence[E],
    interval_of: Callable[[T], Interval],
    event_day: Callable[[E], int],
    strict: bool = True,
) -> Iterator[Tuple[E, T]]:
    """Quadratic reference join; kept for tests and the ablation bench."""
    for event in events:
        point = event_day(event)
        for item in intervals:
            if interval_of(item).contains(point, strict=strict):
                yield event, item
