"""Deterministic random-number streams.

Every stochastic component of the reproduction draws from an :class:`RngStream`
derived from a master seed plus a label path (for example
``("ecosystem", "registrations")``). Labelled derivation means adding a new
subsystem or reordering draws in one subsystem never perturbs another, so
benchmark series stay stable across code changes.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


def split_seed(master_seed: int, *labels: str) -> int:
    """Derive a child seed from a master seed and a label path.

    Uses SHA-256 over the seed and labels so that derivation is stable across
    Python versions and platforms (``hash()`` is salted and unsuitable).
    """
    digest = hashlib.sha256()
    digest.update(str(master_seed).encode("utf-8"))
    for label in labels:
        digest.update(b"\x00")
        digest.update(label.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class RngStream:
    """A labelled, independently-seeded random stream.

    Thin wrapper over ``random.Random`` adding stream splitting and the
    handful of distributions the simulator needs (Zipf-like ranks, bounded
    Pareto day gaps).
    """

    def __init__(self, master_seed: int, *labels: str) -> None:
        self._master_seed = master_seed
        self._labels = labels
        self._rng = random.Random(split_seed(master_seed, *labels))

    def split(self, *labels: str) -> "RngStream":
        """Derive a child stream; draws on the child never affect the parent."""
        return RngStream(self._master_seed, *self._labels, *labels)

    # -- direct delegation -------------------------------------------------

    def random(self) -> float:
        return self._rng.random()

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def sample(self, population: Sequence[T], k: int) -> List[T]:
        return self._rng.sample(population, k)

    def shuffle(self, items: List[T]) -> None:
        self._rng.shuffle(items)

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        return self._rng.choices(items, weights=weights, k=1)[0]

    # -- domain-specific draws ---------------------------------------------

    def bernoulli(self, p: float) -> bool:
        """True with probability *p*."""
        return self._rng.random() < p

    def poisson(self, lam: float) -> int:
        """Poisson draw via inversion (lam expected to be modest, < ~700)."""
        if lam <= 0:
            return 0
        # Knuth's algorithm in log space to stay stable for larger lambda.
        if lam < 30:
            limit = 2.718281828459045 ** (-lam)
            k = 0
            product = self._rng.random()
            while product > limit:
                k += 1
                product *= self._rng.random()
            return k
        # Normal approximation with continuity correction for large lambda.
        draw = self._rng.gauss(lam, lam ** 0.5)
        return max(0, int(round(draw)))

    def zipf_rank(self, n: int, exponent: float = 1.0) -> int:
        """Draw a 1-based rank from a truncated Zipf distribution over ``1..n``.

        Used to assign popularity ranks to simulated domains so that top-list
        membership (Table 6) has a realistic long tail.
        """
        if n <= 0:
            raise ValueError("population must be positive")
        # Inverse-CDF on the harmonic weights; cached per (n, exponent).
        cdf = _zipf_cdf(n, exponent)
        target = self._rng.random()
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < target:
                lo = mid + 1
            else:
                hi = mid
        return lo + 1

    def bounded_pareto_days(self, minimum: int, maximum: int, alpha: float = 1.2) -> int:
        """Heavy-tailed day gap in ``[minimum, maximum]``.

        Models inter-event times like domain holding periods, where most
        domains turn over quickly but a long tail is held for years.
        """
        if minimum >= maximum:
            return minimum
        u = self._rng.random()
        lo = float(minimum) or 0.5
        hi = float(maximum)
        value = (lo ** -alpha - u * (lo ** -alpha - hi ** -alpha)) ** (-1.0 / alpha)
        return max(minimum, min(maximum, int(round(value))))


# Deterministic memo (same key -> identical recomputed value), so
# per-process divergence after fork is harmless.
_ZIPF_CACHE: dict = {}  # repro-lint: disable=RL201


def _zipf_cdf(n: int, exponent: float) -> List[float]:
    key = (n, exponent)
    cached = _ZIPF_CACHE.get(key)
    if cached is not None:
        return cached
    weights = [1.0 / (rank ** exponent) for rank in range(1, n + 1)]
    total = sum(weights)
    acc = 0.0
    cdf = []
    for w in weights:
        acc += w
        cdf.append(acc / total)
    if len(_ZIPF_CACHE) > 32:  # keep the cache tiny; configs are few
        _ZIPF_CACHE.clear()
    _ZIPF_CACHE[key] = cdf
    return cdf
