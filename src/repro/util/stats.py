"""Empirical distribution and survival-analysis helpers.

The paper's Figures 6 and 7 are empirical CDFs of staleness periods and
Figure 8 is a survival curve (proportion of certificates not yet stale after
*n* days). These classes provide exact, dependency-light implementations with
the evaluation operations the analysis layer needs (quantiles, evaluation at
a point, proportion exceeding a threshold).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


def median(values: Sequence[float]) -> float:
    """Exact median (mean of middle two for even counts)."""
    return percentile(values, 50.0)


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile, ``pct`` in ``[0, 100]``."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile {pct} outside [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = (pct / 100.0) * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return float(ordered[lower]) * (1 - fraction) + float(ordered[upper]) * fraction


def quantiles(values: Sequence[float], points: Iterable[float]) -> List[float]:
    """Evaluate several percentiles over the same sorted copy."""
    ordered = sorted(values)
    return [percentile(ordered, p) for p in points]


class Ecdf:
    """Empirical cumulative distribution function over numeric samples."""

    def __init__(self, samples: Iterable[float]) -> None:
        self._sorted: List[float] = sorted(samples)
        if not self._sorted:
            raise ValueError("ECDF requires at least one sample")

    def __len__(self) -> int:
        return len(self._sorted)

    def evaluate(self, x: float) -> float:
        """P(X <= x)."""
        return bisect_right(self._sorted, x) / len(self._sorted)

    def proportion_above(self, x: float) -> float:
        """P(X > x); the paper's 'over 50% exceed 90 days' style statements."""
        return 1.0 - self.evaluate(x)

    def quantile(self, q: float) -> float:
        """Inverse CDF for ``q`` in ``(0, 1]`` (left-continuous):
        the smallest sample x with F(x) >= q."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile {q} outside (0, 1]")
        index = max(0, math.ceil(q * len(self._sorted)) - 1)
        index = min(index, len(self._sorted) - 1)
        return self._sorted[index]

    @property
    def median_value(self) -> float:
        return median(self._sorted)

    def curve(self, points: int = 200) -> List[Tuple[float, float]]:
        """Sampled ``(x, F(x))`` pairs for plotting/reporting."""
        lo, hi = self._sorted[0], self._sorted[-1]
        if lo == hi:
            return [(lo, 1.0)]
        step = (hi - lo) / (points - 1)
        return [(lo + i * step, self.evaluate(lo + i * step)) for i in range(points)]


@dataclass(frozen=True)
class SurvivalPoint:
    """One step of a survival curve: fraction surviving past ``time``."""

    time: float
    survival: float


class SurvivalCurve:
    """Survival function S(t) = P(T > t) over observed event times.

    The paper's Figure 8 reads off S(90) and S(215) to estimate the share of
    stale certificates whose invalidation event happens more than 90/215 days
    after issuance (and would therefore be eliminated by a shorter lifetime).
    All observations here are uncensored: every sample is an observed
    time-to-invalidation.
    """

    def __init__(self, event_times: Iterable[float]) -> None:
        self._sorted: List[float] = sorted(event_times)
        if not self._sorted:
            raise ValueError("survival curve requires at least one event time")

    def __len__(self) -> int:
        return len(self._sorted)

    def survival_at(self, t: float) -> float:
        """S(t): proportion of events occurring strictly after *t*."""
        return 1.0 - bisect_right(self._sorted, t) / len(self._sorted)

    def reduction_if_capped(self, cap: float) -> float:
        """Fraction of events eliminated by a maximum lifetime of *cap* days.

        Events occurring after day *cap* of the certificate lifetime would be
        prevented outright (the certificate would already have expired), so
        this equals S(cap). The paper calls this an optimistic upper bound.
        """
        return self.survival_at(cap)

    def steps(self) -> List[SurvivalPoint]:
        """Distinct (time, survival) step points, time-ascending."""
        points: List[SurvivalPoint] = []
        n = len(self._sorted)
        seen_upto = 0
        last_time = None
        for i, t in enumerate(self._sorted):
            if t != last_time:
                if last_time is not None:
                    points.append(SurvivalPoint(last_time, 1.0 - seen_upto / n))
                last_time = t
            seen_upto = i + 1
        points.append(SurvivalPoint(last_time, 1.0 - seen_upto / n))
        return points


def histogram_by(keys: Iterable, values: Iterable[float] = None) -> Dict:
    """Count (or sum *values*) grouped by key; tiny helper for time series."""
    counts: Dict = {}
    if values is None:
        for key in keys:
            counts[key] = counts.get(key, 0) + 1
    else:
        for key, value in zip(keys, values):
            counts[key] = counts.get(key, 0.0) + value
    return counts
