"""JSON-lines persistence for simulated datasets.

Long-running measurement pipelines checkpoint their intermediate datasets
(certificates seen in CT, daily DNS snapshots, WHOIS records) so analyses can
re-run without re-simulating. Records are plain dicts; dataclass-backed
records expose ``to_record``/``from_record`` hooks.
"""

from __future__ import annotations

import gzip
import json
import os
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional


def dump_jsonl(path: str, records: Iterable[Dict[str, Any]]) -> int:
    """Write records to a (optionally gzipped) JSONL file; returns the count."""
    count = 0
    opener = gzip.open if path.endswith(".gz") else open
    tmp_path = path + ".tmp"
    with opener(tmp_path, "wt", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, separators=(",", ":"), sort_keys=True))
            handle.write("\n")
            count += 1
    os.replace(tmp_path, path)
    return count


def dump_json(path: str, obj: Any) -> str:
    """Atomically write one JSON document (gzip-aware); returns the path.

    Used for single-document state (stream checkpoints) where JSONL's
    record-per-line framing does not fit. The write goes through a ``.tmp``
    sibling plus :func:`os.replace` so a crash mid-write never leaves a
    truncated document behind.
    """
    opener = gzip.open if path.endswith(".gz") else open
    tmp_path = path + ".tmp"
    with opener(tmp_path, "wt", encoding="utf-8") as handle:
        json.dump(obj, handle, separators=(",", ":"), sort_keys=True)
    os.replace(tmp_path, path)
    return path


def load_json(path: str) -> Any:
    """Read one JSON document written by :func:`dump_json`."""
    opener = gzip.open if path.endswith(".gz") else open
    with opener(path, "rt", encoding="utf-8") as handle:
        try:
            return json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: malformed JSON document") from exc


def load_jsonl(path: str) -> Iterator[Dict[str, Any]]:
    """Stream records back from a JSONL file written by :func:`dump_jsonl`."""
    opener = gzip.open if path.endswith(".gz") else open
    with opener(path, "rt", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: malformed JSONL") from exc


class JsonlStore:
    """A small append-friendly store of homogeneous records on disk.

    Parameters
    ----------
    path:
        File path; a ``.gz`` suffix enables transparent compression.
    encode / decode:
        Optional converters between domain objects and plain dicts.
    """

    def __init__(
        self,
        path: str,
        encode: Optional[Callable[[Any], Dict[str, Any]]] = None,
        decode: Optional[Callable[[Dict[str, Any]], Any]] = None,
    ) -> None:
        self.path = path
        self._encode = encode or (lambda obj: obj)
        self._decode = decode or (lambda rec: rec)

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def write(self, objects: Iterable[Any]) -> int:
        return dump_jsonl(self.path, (self._encode(obj) for obj in objects))

    def read(self) -> Iterator[Any]:
        for record in load_jsonl(self.path):
            yield self._decode(record)

    def read_all(self) -> List[Any]:
        return list(self.read())
