"""Command-line interface.

Drives the full reproduction from a shell::

    python -m repro simulate  --scale 0.1
    python -m repro detect    --scale 0.1 --format json
    python -m repro detect    --scale 0.1 --workers 4 --bundle /tmp/bundle
    python -m repro lifetime  --scale 0.1 --caps 45,90,215
    python -m repro report    --scale 0.1 --experiment fig6
    python -m repro advise shinyforge1.com --acquired 2020-06-01 --scale 0.1
    python -m repro watch     --scale 0.1 --checkpoint-dir /tmp/ckpt --resume
    python -m repro detect    --scale 0.1 --metrics-out metrics.prom --log-json

Every command simulates (or reuses, within one invocation) a seeded world,
so results are reproducible given ``--seed``/``--scale``.

The pipeline-running subcommands (detect / lifetime / report / watch) share
two observability flags: ``--metrics-out FILE`` writes a Prometheus-style
text exposition of the run's :mod:`repro.obs` registry (per-operator CRL
fetch outcomes, per-detector duration histograms, finding counters by
staleness class, stream/shard counters), and ``--log-json`` emits
structured JSON log records to stderr. Each invocation records into a
fresh registry, so the textfile describes exactly one run.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import (
    LifetimePolicySimulator,
    MeasurementPipeline,
    StalenessClass,
    WorldConfig,
    simulate_world,
)
from repro.analysis.aggregate import build_table3, build_table4
from repro.analysis.crl_coverage import build_table7
from repro.analysis.figures import build_fig4, build_fig6, build_fig8
from repro.analysis.report import render_table
from repro.core.advisory import StaleCertificateAdvisor
from repro.util.dates import day_to_iso, parse_day

_EXPERIMENTS = (
    "summary", "table1", "table2", "table3", "table4", "table7",
    "fig4", "fig6", "fig8",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Stale TLS Certificates' (IMC 2023).",
    )
    parser.add_argument("--seed", type=int, default=20231024, help="world seed")
    parser.add_argument(
        "--scale", type=float, default=0.1, help="world size multiplier (default 0.1)"
    )
    # Accept --seed/--scale after the subcommand too (SUPPRESS keeps the
    # subparser from clobbering the top-level defaults when absent).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=argparse.SUPPRESS, help="world seed")
    common.add_argument(
        "--scale", type=float, default=argparse.SUPPRESS, help="world size multiplier"
    )
    # Dataset/engine options shared by the pipeline-running subcommands.
    data = argparse.ArgumentParser(add_help=False)
    data.add_argument(
        "--bundle", default=None, metavar="DIR",
        help="dataset bundle directory: loaded when it exists, otherwise the "
        "simulated world is saved there (repeat runs skip re-simulation)",
    )
    data.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run detection sharded across N worker processes (default 1)",
    )
    # Observability options shared by the pipeline-running subcommands.
    obsopts = argparse.ArgumentParser(add_help=False)
    obsopts.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write a Prometheus-style metrics textfile for this run",
    )
    obsopts.add_argument(
        "--log-json", action="store_true",
        help="emit structured JSON log records to stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "simulate", parents=[common], help="simulate a world and print dataset sizes"
    )

    detect = sub.add_parser(
        "detect", parents=[common, data, obsopts],
        help="run the three detectors; print Table 4",
    )
    detect.add_argument(
        "--save-findings", default=None, metavar="PATH",
        help="also write findings as JSONL (.gz supported)",
    )
    detect.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default text)",
    )

    save = sub.add_parser(
        "save", parents=[common], help="simulate a world and persist its dataset bundle"
    )
    save.add_argument("--dir", required=True, help="output directory")

    lifetime = sub.add_parser(
        "lifetime", parents=[common, data, obsopts],
        help="lifetime-cap policy analysis (Section 6)",
    )
    lifetime.add_argument(
        "--caps", default="45,90,215", help="comma-separated caps in days"
    )

    report = sub.add_parser(
        "report", parents=[common, data, obsopts],
        help="print one reproduced table/figure",
    )
    report.add_argument("--experiment", choices=_EXPERIMENTS, default="table4")
    report.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default text)",
    )

    advise = sub.add_parser(
        "advise", parents=[common], help="BygoneSSL-style pre-acquisition check against simulated CT"
    )
    advise.add_argument("domain", help="domain being acquired")
    advise.add_argument(
        "--acquired", required=True, help="acquisition date (YYYY-MM-DD)"
    )

    watch = sub.add_parser(
        "watch",
        parents=[common, obsopts],
        help="replay the world as a day-by-day event stream, emitting "
        "advisories live (streaming equivalent of 'detect')",
    )
    watch.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="persist periodic checkpoints to DIR (enables --resume)",
    )
    watch.add_argument(
        "--resume", action="store_true",
        help="resume from the checkpoint in --checkpoint-dir, if one exists",
    )
    watch.add_argument(
        "--checkpoint-every", type=int, default=30, metavar="DAYS",
        help="checkpoint cadence in processed event-days (default 30)",
    )
    watch.add_argument(
        "--days", type=int, default=None, metavar="N",
        help="stop after N event-days (partial run; combine with "
        "--checkpoint-dir to continue later)",
    )
    watch.add_argument(
        "--verify", action="store_true",
        help="after the replay, run the batch pipeline and check the "
        "findings sets are identical (exit 1 on divergence)",
    )
    watch.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default text); json suppresses the live feed",
    )
    return parser


def _world(args):
    print(f"simulating world (seed={args.seed}, scale={args.scale}) ...", file=sys.stderr)
    return simulate_world(WorldConfig(seed=args.seed).scaled(args.scale))


def _bundle_and_cutoff(args):
    """The one dataset loader every pipeline-running subcommand shares.

    With ``--bundle DIR``: load the bundle if one is saved there, otherwise
    simulate the world and save its bundle to DIR (so the next invocation
    skips re-simulation). Without it: simulate, as before.
    """
    import os

    bundle_dir = getattr(args, "bundle", None)
    if bundle_dir and os.path.exists(os.path.join(bundle_dir, "manifest.json")):
        from repro.ecosystem.persistence import load_bundle
        from repro.ecosystem.timeline import DEFAULT_TIMELINE

        print(f"loading bundle from {bundle_dir} ...", file=sys.stderr)
        return load_bundle(bundle_dir), DEFAULT_TIMELINE.revocation_cutoff
    world = _world(args)
    bundle = world.to_bundle()
    if bundle_dir:
        from repro.ecosystem.persistence import save_bundle

        save_bundle(bundle, bundle_dir)
        print(f"saved bundle to {bundle_dir}", file=sys.stderr)
    return bundle, world.config.timeline.revocation_cutoff


def _pipeline_result(args):
    """Run the measurement pipeline for *args* (honors --bundle/--workers)."""
    bundle, cutoff = _bundle_and_cutoff(args)
    return MeasurementPipeline.run_bundle(
        bundle,
        revocation_cutoff_day=cutoff,
        workers=getattr(args, "workers", 1),
    )


def _wants_json(args) -> bool:
    return getattr(args, "format", "text") == "json"


def _print_json(payload) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True, default=str))


def _print_rows(args, columns, rows, title) -> None:
    """Render a tabular result as text or as a JSON document."""
    if _wants_json(args):
        _print_json(
            {"title": title, "columns": list(columns), "rows": [list(r) for r in rows]}
        )
    else:
        print(render_table(columns, rows, title=title))


def cmd_simulate(args) -> int:
    world = _world(args)
    rows = [(key, value) for key, value in sorted(world.dataset_summary().items())]
    print(render_table(["Dataset quantity", "Count"], rows, title="Simulated world"))
    return 0


def cmd_detect(args) -> int:
    result = _pipeline_result(args)
    if getattr(args, "save_findings", None):
        from repro.util.storage import dump_jsonl

        written = dump_jsonl(
            args.save_findings,
            (finding.to_record() for finding in result.findings.all_findings()),
        )
        print(f"wrote {written} findings to {args.save_findings}", file=sys.stderr)
    rows = build_table4(result)
    columns = ["Method", "Date range", "Daily certs", "Total certs",
               "Daily e2LDs", "Total e2LDs"]
    table_rows = [
        (r.method, r.date_range, round(r.daily_certs, 2), r.total_certs,
         round(r.daily_e2lds, 2), r.total_e2lds)
        for r in rows
    ]
    title = "Stale certificate detection (Table 4)"
    if _wants_json(args):
        _print_json(
            {
                "title": title,
                "columns": columns,
                "rows": [list(r) for r in table_rows],
                "shard_stats": (
                    result.shard_stats.to_record()
                    if result.shard_stats is not None
                    else None
                ),
            }
        )
    else:
        print(render_table(columns, table_rows, title=title))
        if result.shard_stats is not None:
            print(render_table(
                ["Shard quantity", "Value"],
                result.shard_stats.summary_rows(),
                title="Parallel shard stats",
            ))
    return 0


def cmd_save(args) -> int:
    from repro.ecosystem.persistence import save_bundle

    world = _world(args)
    counts = save_bundle(world.to_bundle(), args.dir)
    rows = sorted(counts.items())
    print(render_table(["File", "Records"], rows, title=f"Bundle saved to {args.dir}"))
    return 0


def cmd_lifetime(args) -> int:
    caps = [int(part) for part in args.caps.split(",") if part.strip()]
    if not caps or any(cap <= 0 for cap in caps):
        print("error: --caps must be positive integers", file=sys.stderr)
        return 2
    result = _pipeline_result(args)
    simulator = LifetimePolicySimulator(result.findings)
    rows = []
    for cls in (
        StalenessClass.KEY_COMPROMISE,
        StalenessClass.REGISTRANT_CHANGE,
        StalenessClass.MANAGED_TLS_DEPARTURE,
    ):
        if not result.findings.of_class(cls):
            continue
        for cap_result in simulator.sweep(cls, caps):
            rows.append(
                (cls.value, cap_result.cap_days,
                 f"{100 * cap_result.staleness_days_reduction:.1f}%",
                 f"{100 * cap_result.certificate_reduction:.1f}%")
            )
    for cap in caps:
        rows.append(
            ("OVERALL", cap,
             f"{100 * simulator.overall_staleness_reduction(cap):.1f}%", "-")
        )
    print(
        render_table(
            ["Class", "Cap (days)", "Staleness-days reduction", "Certs eliminated"],
            rows,
            title="Lifetime-cap simulation (Section 6 / Figure 9)",
        )
    )
    return 0


def cmd_report(args) -> int:
    if args.experiment in ("table1", "table2"):
        return _print_taxonomy(args, args.experiment)
    # Tables 3 and 7 describe the collection itself, not the findings, so
    # they always need a simulated world (a bare bundle is not enough).
    if args.experiment == "table3":
        rows = build_table3(_world(args))
        _print_rows(args, ["Dataset", "Used for", "Date range", "Size"],
                    [(r.dataset, r.used_for, r.date_range, r.size) for r in rows],
                    "Table 3")
        return 0
    if args.experiment == "table7":
        rows = build_table7(_world(args).crl_fetcher)
        _print_rows(args, ["CA operator", "Coverage"],
                    [(r.ca_operator, r.coverage_text) for r in rows],
                    "Table 7")
        return 0
    result = _pipeline_result(args)
    if args.experiment == "summary":
        from repro.analysis.summary import render_summary

        if _wants_json(args):
            _print_json({"title": "summary", "text": render_summary(result)})
        else:
            print(render_summary(result))
        return 0
    if args.experiment == "table4":
        return cmd_detect_from(args, result)
    if args.experiment == "fig4":
        series = build_fig4(result.findings)
        issuers = sorted({i for counts in series.values() for i in counts})
        rows = [[m] + [series[m].get(i, 0) for i in issuers] for m in sorted(series)]
        _print_rows(args, ["Month"] + issuers, rows, "Figure 4")
        return 0
    if args.experiment == "fig6":
        rows = [
            (s.staleness_class.value, f"{s.median_days:.0f}", f"{s.proportion_over_90:.2f}")
            for s in build_fig6(result.findings)
        ]
        _print_rows(args, ["Class", "Median staleness (d)", "P(>90d)"], rows,
                    "Figure 6")
        return 0
    if args.experiment == "fig8":
        rows = [
            (s.staleness_class.value, f"{s.survival_at_90:.3f}", f"{s.survival_at_215:.3f}")
            for s in build_fig8(result.findings)
        ]
        _print_rows(args, ["Class", "S(90)", "S(215)"], rows, "Figure 8")
        return 0
    return 2


def _print_taxonomy(args, which: str) -> int:
    """Tables 1 and 2 are pure taxonomy — no simulation needed."""
    from repro.core.taxonomy import CERTIFICATE_INFORMATION_TAXONOMY, INVALIDATION_EVENTS

    if which == "table1":
        _print_rows(
            args,
            ["Category", "Description", "Related fields"],
            [
                (row.category.value, row.description, ", ".join(row.related_fields))
                for row in CERTIFICATE_INFORMATION_TAXONOMY
            ],
            "Table 1: Certificate Information Taxonomy",
        )
    else:
        _print_rows(
            args,
            ["Invalidation event", "Category", "Example", "Controlled by", "Implication"],
            [
                (
                    spec.event.value,
                    spec.category.value,
                    spec.example,
                    spec.controlled_by.value,
                    spec.implication.value,
                )
                for spec in INVALIDATION_EVENTS
            ],
            "Table 2: Certificate Invalidation Events",
        )
    return 0


def cmd_detect_from(args, result) -> int:
    rows = build_table4(result)
    _print_rows(
        args,
        ["Method", "Daily e2LDs", "Total e2LDs"],
        [(r.method, round(r.daily_e2lds, 2), r.total_e2lds) for r in rows],
        "Table 4",
    )
    return 0


def cmd_advise(args) -> int:
    try:
        acquired = parse_day(args.acquired)
    except ValueError:
        print(f"error: invalid date {args.acquired!r} (want YYYY-MM-DD)", file=sys.stderr)
        return 2
    world = _world(args)
    advisor = StaleCertificateAdvisor(world.corpus)
    report = advisor.check_acquisition(args.domain, acquired)
    print(report.summary())
    for exposure in report.exposures:
        print(f"  - {exposure.describe()}")
    if report.exposure_ends is not None:
        print(
            f"exposure fully ends {day_to_iso(report.exposure_ends)}; revocation "
            "helps only clients that check (see paper Section 2.4)."
        )
    return 0 if report.is_clean else 1


def cmd_watch(args) -> int:
    """Streaming replay: the always-on-monitor equivalent of ``detect``."""
    from repro.stream import (
        CheckpointError,
        CheckpointStore,
        StreamEngine,
        verify_equivalence,
    )

    world = _world(args)
    bundle = world.to_bundle()
    cutoff = world.config.timeline.revocation_cutoff
    store = CheckpointStore(args.checkpoint_dir) if args.checkpoint_dir else None
    if args.resume and store is None:
        print(
            "warning: --resume has no effect without --checkpoint-dir; "
            "running from the start",
            file=sys.stderr,
        )
    live = not _wants_json(args)
    advisor = StaleCertificateAdvisor(world.corpus) if live else None

    def on_finding(event):
        if not live:
            return
        finding = event.finding
        certificate = finding.certificate
        domain = finding.affected_domain or sorted(certificate.fqdns())[0]
        print(
            f"[{day_to_iso(event.day)}] {finding.staleness_class.value:<22} "
            f"{domain}  ({certificate.issuer_name} serial {certificate.serial}, "
            f"valid to {day_to_iso(certificate.not_after)}; {finding.detail})"
        )
        if finding.staleness_class is StalenessClass.REGISTRANT_CHANGE:
            # The live BygoneSSL-style advisory a registrant would receive
            # the day their newly acquired domain shows a stale certificate.
            report = advisor.check_acquisition(domain, finding.invalidation_day)
            if not report.is_clean:
                print(f"    advisory: {report.summary()}")

    engine = StreamEngine(
        bundle,
        revocation_cutoff_day=cutoff,
        checkpoint_store=store,
        checkpoint_every_days=args.checkpoint_every,
        on_finding=on_finding,
    )
    try:
        result = engine.replay(max_days=args.days, resume=args.resume)
    except CheckpointError as error:
        # Covers both a bundle-fingerprint mismatch and a truncated or
        # corrupt checkpoint file; the message names the path and the fix.
        print(f"error: {error}", file=sys.stderr)
        return 2

    equivalent = None
    if args.verify:
        if result.complete:
            equivalent, _ = verify_equivalence(
                bundle, result.findings, revocation_cutoff_day=cutoff
            )
        else:
            print(
                "warning: --verify skipped (partial replay; findings are "
                "provisional)",
                file=sys.stderr,
            )

    table4 = build_table4(result.to_pipeline_result())
    if _wants_json(args):
        _print_json(
            {
                "complete": result.complete,
                "cursor_day": day_to_iso(result.cursor_day)
                if result.cursor_day is not None
                else None,
                "checkpoint_dir": args.checkpoint_dir,
                "stats": result.stats.to_record(),
                "verified_equivalent": equivalent,
                "table4": [
                    {
                        "method": r.method,
                        "date_range": r.date_range,
                        "daily_certs": round(r.daily_certs, 2),
                        "total_certs": r.total_certs,
                        "daily_e2lds": round(r.daily_e2lds, 2),
                        "total_e2lds": r.total_e2lds,
                    }
                    for r in table4
                ],
            }
        )
    else:
        print(render_table(
            ["Stream quantity", "Value"], result.stats.summary_rows(),
            title="Stream metrics",
        ))
        print(render_table(
            ["Method", "Daily e2LDs", "Total e2LDs"],
            [(r.method, round(r.daily_e2lds, 2), r.total_e2lds) for r in table4],
            title="Converged findings (Table 4)"
            + ("" if result.complete else " — PARTIAL, provisional"),
        ))
        if equivalent is not None:
            print(
                "equivalence: streaming findings "
                + ("MATCH" if equivalent else "DIVERGE FROM")
                + " the batch pipeline"
            )
    return 0 if equivalent in (None, True) else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": cmd_simulate,
        "detect": cmd_detect,
        "save": cmd_save,
        "lifetime": cmd_lifetime,
        "report": cmd_report,
        "advise": cmd_advise,
        "watch": cmd_watch,
    }
    import logging

    from repro.obs import configure_json_logging, remove_json_logging, use_registry

    log_handler = None
    if getattr(args, "log_json", False):
        log_handler = configure_json_logging(stream=sys.stderr, level=logging.DEBUG)
    metrics_out = getattr(args, "metrics_out", None)
    try:
        # Each invocation records into a fresh registry so --metrics-out
        # describes exactly this run (and parallel invocations in one
        # process — e.g. tests — stay isolated).
        with use_registry() as registry:
            code = handlers[args.command](args)
            if metrics_out:
                registry.write_textfile(metrics_out)
                print(f"wrote metrics to {metrics_out}", file=sys.stderr)
        return code
    finally:
        if log_handler is not None:
            remove_json_logging(log_handler)


if __name__ == "__main__":
    raise SystemExit(main())
